"""Simulated source fleets that talk to the wire server over real UDP.

Two fleets, two fidelities:

* :class:`StepperFleet` runs *real* protocol endpoints -- one
  :class:`~repro.dkf.source.DKFSource` per stream, driven through the
  sans-IO :class:`~repro.dkf.stepper.SourceStepper` -- over a shared
  socket.  Every δ-suppression decision, pending-ack buffer and backoff
  schedule is the genuine article.  It scales to demo size (hundreds);
  at 100k sources the per-endpoint mirror filters alone would not fit a
  tick budget.
* :class:`LiteFleet` is the soak workhorse: per-source protocol state
  held in flat numpy arrays, traffic decisions vectorised per tick, and
  the *frames on the wire* still exactly PROTOCOL.md §5 -- seq 0 primes
  the server's filter, escaped updates arrive at a seeded survivor rate,
  lost acks trigger resync retransmission with exponential state carried
  per source, silence produces heartbeats.  The server cannot tell a
  LiteFleet from 100k real sources, which is the point.

Both fleets share one UDP socket for the whole fleet (a socket per
source would mean 100k file descriptors) and receive acks through the
same :class:`~repro.wire.datagram.BatchDatagramReceiver` the server
uses.  Every random draw -- priming spread, walk steps, send decisions,
the corrupt schedule -- derives from ``(seed, purpose, tick)`` seed
sequences, never from call order, so the *offered* workload for a given
config is reproducible (the ``repro chaos`` determinism contract).
"""

from __future__ import annotations

import asyncio
import socket
import struct
import zlib

import numpy as np

from repro.dkf.config import DKFConfig, TransportPolicy
from repro.dkf.protocol import (
    AckMessage,
    HeartbeatMessage,
    ResyncMessage,
    UpdateMessage,
    build_source_index,
    decode_message,
    encode_message,
)
from repro.dkf.source import DKFSource
from repro.dkf.stepper import SourceStepper
from repro.errors import ConfigurationError, CorruptMessageError
from repro.filters.models import constant_model
from repro.wire.config import WireConfig
from repro.wire.datagram import (
    BatchDatagramReceiver,
    WireCounters,
    corrupt_datagram,
    open_udp_socket,
)

__all__ = ["LiteFleet", "StepperFleet", "collision_free_ids"]

#: Datagrams sent between event-loop yields while a fleet transmits.
_SEND_CHUNK = 500

#: Random-walk step scale for simulated stream values.
_WALK_SIGMA = 0.5


def collision_free_ids(count: int, prefix: str = "s") -> list[str]:
    """``count`` source ids whose CRC-32 hashes are pairwise distinct.

    The wire header carries a 32-bit hash of the source id, so a fleet
    must not contain two ids that collide (at 100k ids the birthday bound
    makes a plain ``s0..sN`` collision *expected*, not rare).  Colliding
    ids are deterministically renamed by appending ``.1``, ``.2``, ...
    until their hash is fresh -- same count in, same list out, every run.
    """
    ids: list[str] = []
    taken: set[int] = set()
    for i in range(count):
        candidate = f"{prefix}{i}"
        bump = 0
        while zlib.crc32(candidate.encode()) in taken:
            bump += 1
            candidate = f"{prefix}{i}.{bump}"
        taken.add(zlib.crc32(candidate.encode()))
        ids.append(candidate)
    return ids


class _FleetSocket:
    """The shared UDP endpoint both fleet flavours transmit through."""

    def __init__(self, config: WireConfig) -> None:
        self._config = config
        self.counters = WireCounters()
        self._sock: socket.socket | None = None
        self._receiver: BatchDatagramReceiver | None = None
        self._server_addr: tuple[str, int] | None = None
        self._ack_buf: list[bytes] = []
        self._shaper = None

    def open(self, loop, server_addr: tuple[str, int]) -> tuple[str, int]:
        if self._sock is not None:
            raise ConfigurationError("fleet socket is already open")
        self._server_addr = server_addr
        self._sock = open_udp_socket(
            self._config.host, 0, self._config.socket_buffer_bytes
        )
        self._receiver = BatchDatagramReceiver(
            self._sock,
            lambda data, addr: self._ack_buf.append(data),
            counters=self.counters,
            chunk=self._config.recv_chunk,
        )
        self._receiver.install(loop)
        return self._sock.getsockname()

    def close(self) -> None:
        if self._receiver is not None:
            self._receiver.close()
            self._receiver = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def take_acks(self) -> list[bytes]:
        """Datagrams received since the last call (ack payloads)."""
        out = self._ack_buf
        self._ack_buf = []
        return out

    def install_shaper(self, shaper) -> None:
        """Route sends through ``shaper(payload, addr, raw_send)``.

        The chaos transport's fleet-side seam, mirroring
        :meth:`~repro.wire.server.WireServer.install_send_shaper`: the
        shaper calls ``raw_send`` for every datagram that genuinely hits
        the socket, so sent counters never count dropped shapes.
        ``None`` uninstalls.
        """
        self._shaper = shaper

    def _raw_send(self, payload: bytes, addr: tuple) -> None:
        """Socket-level send; tolerant of post-close delayed releases."""
        if self._sock is None:
            self.counters.send_failures += 1
            return
        try:
            self._sock.sendto(payload, addr)
        except (BlockingIOError, OSError):
            self.counters.send_failures += 1
            return
        self.counters.datagrams_sent += 1
        self.counters.bytes_sent += len(payload)

    def send(self, payload: bytes) -> bool:
        """Transmit one datagram to the server; False on send failure."""
        if self._sock is None or self._server_addr is None:
            raise ConfigurationError("fleet socket is not open")
        if self._shaper is not None:
            self._shaper(payload, self._server_addr, self._raw_send)
            return True
        before = self.counters.send_failures
        self._raw_send(payload, self._server_addr)
        return self.counters.send_failures == before


class LiteFleet:
    """100k-source simulated fleet with vectorised protocol state.

    Per-source transport state lives in flat numpy arrays; each tick the
    fleet draws its decisions from a ``(seed, purpose, tick)`` generator
    and materialises only the frames that actually transmit.  The
    reliability model matches the real source's pending-ack buffer:

    * ``pending`` tracks the oldest unacknowledged data sequence (-1
      when the window is clean); a cumulative ack at or past ``next_seq``
      clears it, a partial ack advances it.
    * A pending sequence past its deadline -- or a server ack carrying
      ``resync_requested`` -- triggers a :class:`ResyncMessage` snapshot
      (``x = [value]``, unit covariance) with per-source exponential
      backoff, exactly the heal path PROTOCOL.md §6 prescribes.
    * A source silent for ``heartbeat_interval_ticks`` emits a
      header-only heartbeat so liveness never reads suppression as death.

    Args:
        config: The wire runtime configuration (``state_dim`` must be 1;
            the vectorised snapshot fabricates scalar state).
    """

    def __init__(self, config: WireConfig) -> None:
        if config.state_dim != 1:
            raise ConfigurationError(
                "LiteFleet fabricates scalar resync snapshots; "
                f"state_dim must be 1, got {config.state_dim}"
            )
        self._config = config
        self.source_ids = collision_free_ids(config.sources)
        self._index = build_source_index(self.source_ids)
        self._slot = {sid: i for i, sid in enumerate(self.source_ids)}
        n = config.sources
        setup = np.random.default_rng([config.seed, 1])
        self.first_tick = setup.integers(
            0, config.ramp_ticks, n, dtype=np.int64
        )
        self.value = setup.normal(0.0, 5.0, n)
        self._value0 = self.value.copy()
        self.next_seq = np.zeros(n, dtype=np.int64)
        self.pending = np.full(n, -1, dtype=np.int64)
        self.pending_deadline = np.zeros(n, dtype=np.int64)
        self.pending_attempt = np.zeros(n, dtype=np.int64)
        self.last_send = np.full(n, -1, dtype=np.int64)
        self.needs_resync = np.zeros(n, dtype=bool)
        self.acked_seq = np.full(n, -1, dtype=np.int64)
        self.delta_scale = np.ones(n)
        self._transport = TransportPolicy(
            ack_timeout_ticks=config.ack_timeout_ticks,
            heartbeat_interval_ticks=config.heartbeat_interval_ticks,
            suspect_after_ticks=max(
                60, 2 * config.heartbeat_interval_ticks
            ),
        )
        self._net = _FleetSocket(config)
        self._frame_index = 0
        self.updates_sent = 0
        self.resyncs_sent = 0
        self.heartbeats_sent = 0
        self.corrupts_injected = 0
        self.acks_received = 0
        self.resyncs_requested = 0

    # Wiring ---------------------------------------------------------------

    @property
    def counters(self) -> WireCounters:
        """The fleet endpoint's traffic ledger."""
        return self._net.counters

    def dkf_config(self) -> DKFConfig:
        """The filter config the server installs for every fleet stream."""
        return DKFConfig(
            model=constant_model(dims=1), delta=self._config.delta
        )

    def transport_policy(self) -> TransportPolicy:
        """The transport policy both ends agree on."""
        return self._transport

    def open(self, loop, server_addr: tuple[str, int]) -> tuple[str, int]:
        """Bind the shared fleet socket; returns its local address."""
        return self._net.open(loop, server_addr)

    def close(self) -> None:
        """Close the shared socket and deregister the ack receiver."""
        self._net.close()

    def install_send_shaper(self, shaper) -> None:
        """Route fleet transmissions through a chaos shaper."""
        self._net.install_shaper(shaper)

    def acked_high(self) -> dict[str, int]:
        """Per-source highest cumulative ack the fleet has *received*.

        ``ack.seq`` carries the server's next expected sequence, so this
        is exactly the set of updates the fleet may consider durable --
        the zero-acked-loss drill compares it against the restored
        server's ``expected_seq`` per source.  Sources never acked are
        omitted.
        """
        return {
            self.source_ids[slot]: int(self.acked_seq[slot])
            for slot in np.flatnonzero(self.acked_seq >= 0)
        }

    def apply_scales(self, changes: dict[str, float]) -> None:
        """Backpressure actuator: δ-widening thins the update rate.

        A widened δ on a real source suppresses proportionally more
        updates; the lite model applies the same effect by dividing the
        escape probability by the scale.
        """
        for source_id, scale in changes.items():
            slot = self._slot.get(source_id)
            if slot is not None:
                self.delta_scale[slot] = max(1.0, float(scale))

    def settle(self, tick: int) -> None:
        """Drain late acks without offering new traffic (run teardown)."""
        self._drain_acks(tick)

    def workload_digest(self) -> int:
        """CRC-32 over the seeded workload arrays (pre-socket state).

        Two fleets built from the same config agree on this digest
        before any socket exists -- the determinism probe the soak
        summary's ``workload`` section carries.
        """
        digest = zlib.crc32(self.first_tick.tobytes())
        return zlib.crc32(self._value0.tobytes(), digest)

    # Per-tick traffic -----------------------------------------------------

    def _on_ack(self, ack: AckMessage, tick: int) -> None:
        slot = self._slot.get(ack.source_id)
        if slot is None:
            return
        self.acks_received += 1
        if ack.resync_requested:
            self.needs_resync[slot] = True
            self.resyncs_requested += 1
        if ack.seq > self.acked_seq[slot]:
            self.acked_seq[slot] = ack.seq
        acked = ack.seq  # cumulative: everything below this is settled
        if acked >= self.next_seq[slot]:
            self.pending[slot] = -1
            self.pending_attempt[slot] = 0
        elif self.pending[slot] != -1 and acked > self.pending[slot]:
            self.pending[slot] = acked
            self.pending_attempt[slot] = 0
            self.pending_deadline[slot] = (
                tick + self._transport.retry_timeout(0)
            )

    def _drain_acks(self, tick: int) -> None:
        for data in self._net.take_acks():
            try:
                message = decode_message(
                    data, self._index, state_dim=self._config.state_dim
                )
            except CorruptMessageError:
                self._net.counters.frames_corrupt += 1
                continue
            except (ConfigurationError, ValueError, struct.error):
                self._net.counters.frames_unknown += 1
                continue
            self._net.counters.frames_decoded += 1
            if isinstance(message, AckMessage):
                self._on_ack(message, tick)

    async def step_tick(self, tick: int) -> int:
        """Offer one tick of fleet traffic; returns datagrams offered."""
        config = self._config
        rng = np.random.default_rng([config.seed, 2, tick])
        # Fixed draw order per tick: walk steps, then send decisions.
        # Frame-level corruption draws follow once the frame count is
        # known.  Nothing downstream feeds back into the draws, so the
        # sequence is stable for a given (seed, tick).
        self.value += rng.normal(0.0, _WALK_SIGMA, config.sources)
        escape = rng.random(config.sources)
        self._drain_acks(tick)

        started = self.first_tick <= tick
        # A started source that has never cut a data message primes now
        # (ticks start at 1, so "first_tick == tick" alone would strand
        # every source whose ramp slot is 0).  next_seq advances on the
        # priming update, so this fires exactly once per source.
        priming = started & (self.next_seq == 0) & (self.pending == -1)
        resync_due = started & (
            self.needs_resync
            | ((self.pending != -1) & (self.pending_deadline <= tick))
        )
        update_due = (
            started
            & ~priming
            & ~resync_due
            & (escape * self.delta_scale < config.update_prob)
        )
        update_due |= priming
        heartbeat_due = (
            started
            & ~update_due
            & ~resync_due
            & (
                tick - self.last_send
                >= config.heartbeat_interval_ticks
            )
        )

        frames: list[bytes] = []
        for slot in np.flatnonzero(resync_due):
            seq = int(self.next_seq[slot])
            snapshot = np.array([self.value[slot]])
            frames.append(
                encode_message(
                    ResyncMessage(
                        source_id=self.source_ids[slot],
                        seq=seq,
                        k=tick,
                        x=snapshot,
                        p=np.eye(1),
                        value=snapshot,
                    )
                )
            )
            self.next_seq[slot] = seq + 1
            self.needs_resync[slot] = False
            attempt = int(self.pending_attempt[slot]) + 1
            self.pending[slot] = seq
            self.pending_attempt[slot] = attempt
            self.pending_deadline[slot] = (
                tick + self._transport.retry_timeout(attempt)
            )
            self.resyncs_sent += 1
        for slot in np.flatnonzero(update_due):
            seq = int(self.next_seq[slot])
            frames.append(
                encode_message(
                    UpdateMessage(
                        source_id=self.source_ids[slot],
                        seq=seq,
                        k=tick,
                        value=np.array([self.value[slot]]),
                    )
                )
            )
            self.next_seq[slot] = seq + 1
            if self.pending[slot] == -1:
                self.pending[slot] = seq
                self.pending_attempt[slot] = 0
                self.pending_deadline[slot] = (
                    tick + self._transport.retry_timeout(0)
                )
            self.updates_sent += 1
        for slot in np.flatnonzero(heartbeat_due):
            frames.append(
                encode_message(
                    HeartbeatMessage(
                        source_id=self.source_ids[slot],
                        seq=int(self.next_seq[slot]),
                        k=tick,
                    )
                )
            )
            self.heartbeats_sent += 1
        sent_any = resync_due | update_due | heartbeat_due
        self.last_send[sent_any] = tick

        await self._transmit(frames, rng)
        return len(frames)

    async def _transmit(self, frames: list[bytes], rng) -> None:
        corrupt_rate = self._config.corrupt_rate
        flips = (
            rng.random(len(frames)) < corrupt_rate
            if corrupt_rate > 0.0 and frames
            else None
        )
        for i, payload in enumerate(frames):
            if flips is not None and flips[i]:
                payload = corrupt_datagram(payload, self._frame_index)
                self.corrupts_injected += 1
            self._frame_index += 1
            self._net.send(payload)
            if (i + 1) % _SEND_CHUNK == 0:
                # Yield so the (co-located) server's reader drains the
                # burst instead of racing the kernel buffer.
                await asyncio.sleep(0)

    def summary(self) -> dict[str, object]:
        """Fleet-side totals for the soak summary's ``fleet`` section."""
        return {
            "sources": self._config.sources,
            "updates_sent": self.updates_sent,
            "resyncs_sent": self.resyncs_sent,
            "heartbeats_sent": self.heartbeats_sent,
            "corrupts_injected": self.corrupts_injected,
            "acks_received": self.acks_received,
            "resyncs_requested": self.resyncs_requested,
            "widened_sources": int((self.delta_scale > 1.0).sum()),
            "endpoint": self._net.counters.as_dict(),
        }


class StepperFleet:
    """Demo-scale fleet of *real* DKF endpoints over the shared socket.

    Each stream is a full :class:`~repro.dkf.source.DKFSource` driven by
    the sans-IO :class:`~repro.dkf.stepper.SourceStepper`: genuine
    δ-suppression against the mirror filter, genuine pending-ack buffer,
    genuine backoff.  Readings are a seeded random walk (same generator
    discipline as :class:`LiteFleet`).  Priming is spread over
    ``ramp_ticks`` exactly as in the lite fleet.

    Args:
        config: The wire runtime configuration.
    """

    def __init__(self, config: WireConfig) -> None:
        self._config = config
        self.source_ids = collision_free_ids(config.sources)
        self._index = build_source_index(self.source_ids)
        setup = np.random.default_rng([config.seed, 1])
        self.first_tick = setup.integers(
            0, config.ramp_ticks, config.sources, dtype=np.int64
        )
        self.value = setup.normal(0.0, 5.0, config.sources)
        self._transport = TransportPolicy(
            ack_timeout_ticks=config.ack_timeout_ticks,
            heartbeat_interval_ticks=config.heartbeat_interval_ticks,
        )
        dkf_config = self.dkf_config()
        self._steppers = [
            SourceStepper(
                DKFSource(source_id, dkf_config, self._transport)
            )
            for source_id in self.source_ids
        ]
        self._slot = {sid: i for i, sid in enumerate(self.source_ids)}
        self._net = _FleetSocket(config)
        self._frame_index = 0
        self.acked_seq = np.full(config.sources, -1, dtype=np.int64)
        self.corrupts_injected = 0
        self.acks_received = 0

    @property
    def counters(self) -> WireCounters:
        """The fleet endpoint's traffic ledger."""
        return self._net.counters

    def dkf_config(self) -> DKFConfig:
        """The filter config shared by every endpoint pair."""
        return DKFConfig(
            model=constant_model(dims=self._config.state_dim),
            delta=self._config.delta,
        )

    def transport_policy(self) -> TransportPolicy:
        """The transport policy both ends agree on."""
        return self._transport

    def open(self, loop, server_addr: tuple[str, int]) -> tuple[str, int]:
        """Bind the shared fleet socket; returns its local address."""
        return self._net.open(loop, server_addr)

    def close(self) -> None:
        """Close the shared socket and deregister the ack receiver."""
        self._net.close()

    def install_send_shaper(self, shaper) -> None:
        """Route fleet transmissions through a chaos shaper."""
        self._net.install_shaper(shaper)

    def acked_high(self) -> dict[str, int]:
        """Per-source highest cumulative ack received (see LiteFleet)."""
        return {
            self.source_ids[slot]: int(self.acked_seq[slot])
            for slot in np.flatnonzero(self.acked_seq >= 0)
        }

    def apply_scales(self, changes: dict[str, float]) -> None:
        """Backpressure actuator: real δ-widening on each endpoint."""
        for source_id, scale in changes.items():
            slot = self._slot.get(source_id)
            if slot is not None:
                self._steppers[slot].source.set_delta_scale(scale)

    def _drain_acks(self, tick: int) -> None:
        for data in self._net.take_acks():
            try:
                message = decode_message(
                    data, self._index, state_dim=self._config.state_dim
                )
            except CorruptMessageError:
                self._net.counters.frames_corrupt += 1
                continue
            except (ConfigurationError, ValueError, struct.error):
                self._net.counters.frames_unknown += 1
                continue
            self._net.counters.frames_decoded += 1
            if isinstance(message, AckMessage):
                slot = self._slot.get(message.source_id)
                if slot is not None:
                    self.acks_received += 1
                    if message.seq > self.acked_seq[slot]:
                        self.acked_seq[slot] = message.seq
                    self._steppers[slot].on_ack(message, tick)

    def settle(self, tick: int) -> None:
        """Drain late acks without offering new traffic (run teardown)."""
        self._drain_acks(tick)

    async def step_tick(self, tick: int) -> int:
        """Offer one tick of real-endpoint traffic; returns datagrams."""
        config = self._config
        rng = np.random.default_rng([config.seed, 2, tick])
        self.value += rng.normal(0.0, _WALK_SIGMA, config.sources)
        self._drain_acks(tick)
        frames: list[bytes] = []
        dims = config.state_dim
        for slot, stepper in enumerate(self._steppers):
            if tick < self.first_tick[slot]:
                continue
            reading = np.full(dims, self.value[slot])
            for message in stepper.step(tick, reading, now=tick):
                frames.append(encode_message(message))
        await self._transmit(frames, rng)
        return len(frames)

    async def _transmit(self, frames: list[bytes], rng) -> None:
        corrupt_rate = self._config.corrupt_rate
        flips = (
            rng.random(len(frames)) < corrupt_rate
            if corrupt_rate > 0.0 and frames
            else None
        )
        for i, payload in enumerate(frames):
            if flips is not None and flips[i]:
                payload = corrupt_datagram(payload, self._frame_index)
                self.corrupts_injected += 1
            self._frame_index += 1
            self._net.send(payload)
            if (i + 1) % _SEND_CHUNK == 0:
                await asyncio.sleep(0)

    def summary(self) -> dict[str, object]:
        """Fleet-side totals for the runtime report."""
        updates = sum(
            s.source.updates_sent for s in self._steppers
        )
        return {
            "sources": self._config.sources,
            "updates_sent": updates,
            "corrupts_injected": self.corrupts_injected,
            "acks_received": self.acks_received,
            "endpoint": self._net.counters.as_dict(),
        }
