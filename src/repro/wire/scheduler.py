"""The scheduler seam: one interface, two notions of time.

Everything above this seam -- the DKF protocol, the filters, the
resilience machinery, the observability stack -- is sans-IO and
tick-denominated.  A :class:`Scheduler` decides what a tick *is*:

* :class:`TickScheduler` is the seeded deterministic engine the repo has
  always run: ticks are loop iterations, time is a counter, and a run is
  bit-identical for a given seed.  It delegates to
  :class:`~repro.dsms.engine.StreamEngine` unchanged -- chaos drills and
  replay comparisons keep their byte-identity guarantees.
* :class:`~repro.wire.runtime.AsyncRuntime` maps ticks onto wall-clock
  time on an asyncio event loop, with sources and the server exchanging
  real UDP datagrams and queries arriving over real TCP.  Timeouts,
  heartbeats and liveness deadlines keep their tick denominations; the
  runtime's ``tick_seconds`` factor makes them real durations.

Both satisfy the same small contract: a ``backend`` label, a blocking
:meth:`Scheduler.run` that executes the configured horizon, and a
:meth:`Scheduler.report` summarising what happened, so harnesses and the
CLI can hold either without caring which clock is underneath.
"""

from __future__ import annotations

import abc

__all__ = ["Scheduler", "TickScheduler"]


class Scheduler(abc.ABC):
    """Executes a configured run horizon under some notion of time.

    Attributes:
        backend: Human-readable label for the time source
            (``"tick"`` or ``"wall-clock"``).
    """

    backend: str = "abstract"

    @abc.abstractmethod
    def run(self) -> int:
        """Execute the configured horizon; returns ticks executed."""

    @abc.abstractmethod
    def report(self) -> dict[str, object]:
        """JSON-ready summary of the completed run."""


class TickScheduler(Scheduler):
    """The deterministic backend: a thin shim over ``StreamEngine``.

    The engine is held, not wrapped -- no step logic is duplicated here,
    so the simulated-time semantics (and their byte-identity under a
    seed) are exactly the engine's own.

    Args:
        engine: A fully configured :class:`~repro.dsms.engine.
            StreamEngine` (sources added, faults scheduled).
        max_ticks: Horizon passed to :meth:`StreamEngine.run`; None runs
            until every stream is exhausted.
    """

    backend = "tick"

    def __init__(self, engine, max_ticks: int | None = None) -> None:
        self.engine = engine
        self.max_ticks = max_ticks
        self.ticks_run = 0

    def run(self) -> int:
        """Run the engine to its horizon; returns ticks executed."""
        self.ticks_run = self.engine.run(self.max_ticks)
        return self.ticks_run

    def report(self) -> dict[str, object]:
        """The engine's own report, tagged with the backend label."""
        out = dict(self.engine.report().to_dict())
        out["backend"] = self.backend
        return out
