"""Configuration for the asyncio real-wire runtime.

One :class:`WireConfig` parameterises everything the runtime touches:
socket endpoints, the tick-to-wall-clock mapping, the simulated fleet's
seeded workload and the overload/backpressure knobs.  The dataclass is
frozen and fully determined by its fields, so the deterministic parts of
a soak run -- the offered workload -- can be rebuilt bit-identically
from ``(config, seed)`` alone (the same contract ``repro chaos``
artifacts honour).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["WireConfig"]


@dataclass(frozen=True)
class WireConfig:
    """Knobs for one wire runtime (server + co-located simulated fleet).

    Attributes:
        host: Interface both sockets bind to.
        udp_port: Update-fabric datagram port (0 = ephemeral).
        tcp_port: Query-API port (0 = ephemeral).
        tick_seconds: Wall-clock seconds per runtime tick.  Retransmission
            timeouts, heartbeat intervals and liveness deadlines keep
            their tick denominations from :class:`~repro.dkf.config.
            TransportPolicy`; this factor maps them onto real time.
        ticks: Runtime ticks to execute before shutting down.
        sources: Simulated fleet size.
        seed: Root seed for every random draw the wire layer makes --
            per-source phases, send jitter, values, the corrupt schedule.
            Two runs with equal ``(config)`` offer identical traffic.
        update_prob: Per-source, per-tick probability of an escaped
            update once primed (the δ-suppression survivor rate).
        ramp_ticks: Ticks over which the fleet's priming updates are
            spread, so 100k filter builds do not land on one tick.
        heartbeat_interval_ticks: Fleet silence threshold before a
            heartbeat (kept in ticks; the runtime maps it to wall time).
        ack_timeout_ticks: Fleet ack deadline before a resync retransmit.
        corrupt_rate: Probability a fleet datagram is bit-flipped before
            transmission (seeded; exercises the CRC discard path).
        inbox_capacity: Server-side bounded-inbox depth; overflowing
            datagrams are tail-dropped and counted.
        drain_per_tick: Max frames the server decodes per runtime tick.
        recv_chunk: Max datagrams drained per reader wakeup.
        socket_buffer_bytes: Requested SO_RCVBUF/SO_SNDBUF size.
        query_rate: Self-generated query load (queries per second) the
            soak harness applies through the TCP API.
        query_p99_gate_ms: Soak gate -- the harness fails when the p99
            query latency exceeds this many milliseconds.
        query_idle_timeout_s: Per-connection idle deadline on the query
            port: a client that holds a connection open without
            completing a request line for this long is disconnected (the
            slow-loris guard).
        query_max_connections: Hard cap on concurrently open query
            connections; connections past the cap get one error line and
            an immediate close instead of a handler task.
        query_rate_limit_per_s: Per-peer token-bucket refill rate on the
            query port (requests per second).  0 disables rate limiting.
        query_rate_burst: Token-bucket capacity -- how many requests a
            peer may burst before the refill rate governs.
        max_future_ticks: Frames stamped more than this many ticks ahead
            of the server clock are rejected as ``future_epoch`` poison
            (a replayed-from-the-future or forged frame, not protocol).
        stall_budget_ms: Event-loop lag past which the stall watchdog
            emits ``wire.stall`` and escalates to the overload
            controller.  None derives the budget from ``tick_seconds``
            (one tick of lag is a missed tick).
        state_dim: Filter state dimension of the fleet's model.
        delta: Precision width installed on every simulated stream.
    """

    host: str = "127.0.0.1"
    udp_port: int = 0
    tcp_port: int = 0
    tick_seconds: float = 0.5
    ticks: int = 40
    sources: int = 100
    seed: int = 0
    update_prob: float = 0.05
    ramp_ticks: int = 10
    heartbeat_interval_ticks: int = 50
    ack_timeout_ticks: int = 8
    corrupt_rate: float = 0.0
    inbox_capacity: int = 65536
    drain_per_tick: int = 50000
    recv_chunk: int = 2000
    socket_buffer_bytes: int = 4 << 20
    query_rate: float = 50.0
    query_p99_gate_ms: float = 250.0
    query_idle_timeout_s: float = 30.0
    query_max_connections: int = 256
    query_rate_limit_per_s: float = 0.0
    query_rate_burst: float = 20.0
    max_future_ticks: int = 10000
    stall_budget_ms: float | None = None
    state_dim: int = 1
    delta: float = 2.0

    def __post_init__(self) -> None:
        if self.tick_seconds <= 0:
            raise ConfigurationError("tick_seconds must be positive")
        if self.ticks < 1:
            raise ConfigurationError("ticks must be at least 1")
        if self.sources < 1:
            raise ConfigurationError("sources must be at least 1")
        if not 0.0 <= self.update_prob <= 1.0:
            raise ConfigurationError("update_prob must be in [0, 1]")
        if not 0.0 <= self.corrupt_rate < 1.0:
            raise ConfigurationError("corrupt_rate must be in [0, 1)")
        if self.ramp_ticks < 1:
            raise ConfigurationError("ramp_ticks must be at least 1")
        if self.ramp_ticks >= self.ticks:
            raise ConfigurationError("ramp_ticks must be below ticks")
        if self.inbox_capacity < 1:
            raise ConfigurationError("inbox_capacity must be at least 1")
        if self.drain_per_tick < 1:
            raise ConfigurationError("drain_per_tick must be at least 1")
        if self.recv_chunk < 1:
            raise ConfigurationError("recv_chunk must be at least 1")
        if self.query_rate < 0:
            raise ConfigurationError("query_rate must not be negative")
        if self.query_p99_gate_ms <= 0:
            raise ConfigurationError("query_p99_gate_ms must be positive")
        if self.query_idle_timeout_s <= 0:
            raise ConfigurationError("query_idle_timeout_s must be positive")
        if self.query_max_connections < 1:
            raise ConfigurationError(
                "query_max_connections must be at least 1"
            )
        if self.query_rate_limit_per_s < 0:
            raise ConfigurationError(
                "query_rate_limit_per_s must not be negative"
            )
        if self.query_rate_burst < 1:
            raise ConfigurationError("query_rate_burst must be at least 1")
        if self.max_future_ticks < 1:
            raise ConfigurationError("max_future_ticks must be at least 1")
        if self.stall_budget_ms is not None and self.stall_budget_ms <= 0:
            raise ConfigurationError("stall_budget_ms must be positive")

    @property
    def tick_ms(self) -> float:
        """Milliseconds per runtime tick (staleness conversions)."""
        return self.tick_seconds * 1000.0

    def workload_fields(self) -> dict[str, object]:
        """The fields that determine the offered workload, for artifacts.

        Everything here is deterministic given the config -- no socket
        addresses, no measured timings -- so the soak summary's
        ``workload`` section is byte-identical across same-seed runs.
        """
        return {
            "seed": self.seed,
            "sources": self.sources,
            "ticks": self.ticks,
            "tick_seconds": self.tick_seconds,
            "update_prob": self.update_prob,
            "ramp_ticks": self.ramp_ticks,
            "heartbeat_interval_ticks": self.heartbeat_interval_ticks,
            "ack_timeout_ticks": self.ack_timeout_ticks,
            "corrupt_rate": self.corrupt_rate,
            "state_dim": self.state_dim,
            "delta": self.delta,
        }
