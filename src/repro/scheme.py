"""Common interface for update-suppression schemes.

Every scheme the paper evaluates -- the DKF in its several model variants
and the cached-approximation baseline -- answers the same question at each
sampling instant: *given this source reading, must the source transmit, and
what value does the server hold either way?*  This module fixes that
contract so the metrics layer (:mod:`repro.metrics.evaluation`) can score
any scheme, and benchmark code can sweep schemes uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.streams.base import StreamRecord

__all__ = ["SchemeDecision", "SuppressionScheme"]


@dataclass(frozen=True)
class SchemeDecision:
    """Outcome of offering one source reading to a scheme.

    Attributes:
        k: The record's sample index.
        sent: Whether the source transmitted this reading to the server.
        server_value: The value the server holds for this instant *after*
            any transmission was applied (cached value or filter estimate).
        source_value: The reading the scheme compared against -- the raw
            value, or the smoothed value when a smoothing filter is in
            the loop (the paper's precision guarantee is relative to the
            value the protocol actually operates on).
        raw_value: The unsmoothed sensor reading.
        payload_floats: Number of floats a transmission carried (0 when
            nothing was sent); the network model converts this to bytes.
        prediction_error: Max per-component error of the server's
            *prediction* for this instant, measured before any correction
            was applied (None on the priming step).  This is the innovation
            magnitude adaptive-sampling controllers consume; unlike the
            post-decision error it does not collapse to zero on update
            steps.
    """

    k: int
    sent: bool
    server_value: np.ndarray
    source_value: np.ndarray
    raw_value: np.ndarray
    payload_floats: int = 0
    prediction_error: float | None = None


class SuppressionScheme(ABC):
    """A stream update-suppression scheme with a per-reading decision rule.

    Implementations must be deterministic: scoring the same stream twice
    must produce identical decisions (the DKF mirror property depends on
    this, and the test suite enforces it for every scheme).
    """

    @property
    @abstractmethod
    def name(self) -> str:
        """Human-readable scheme name for tables and figures."""

    @abstractmethod
    def observe(self, record: StreamRecord) -> SchemeDecision:
        """Process one source reading and decide whether to transmit."""

    @abstractmethod
    def reset(self) -> None:
        """Forget all state so the scheme can score another stream."""

    def run(self, stream) -> list[SchemeDecision]:
        """Score an entire stream, returning the per-record decisions."""
        return [self.observe(record) for record in stream]
