"""repro: Dual Kalman Filter stream resource management.

A production-grade reproduction of Jain, Chang, Wang, *Adaptive Stream
Resource Management Using Kalman Filters* (SIGMOD 2004).  The library
treats stream resource management as a filtering problem: a Kalman filter
at the server predicts each source's values, an exact mirror at the source
suppresses every reading the server can already predict within the query's
precision constraint δ, and only prediction failures cost bandwidth.

Quickstart::

    from repro import DKFConfig, DKFSession, evaluate_scheme, linear_model
    from repro.datasets import moving_object_dataset

    stream = moving_object_dataset()
    config = DKFConfig(model=linear_model(dims=2, dt=0.1), delta=3.0)
    result = evaluate_scheme(DKFSession(config), stream)
    print(f"{result.update_percentage:.1f}% of readings transmitted")

Subpackages
-----------
``repro.filters``
    The filtering substrate: discrete KF, EKF, RLS, steady-state/Riccati
    filters, smoothing, innovation monitoring, adaptive noise estimation,
    model banks.
``repro.dkf``
    The paper's contribution: mirrored filter pairs, the update-suppression
    protocol, session drivers, adaptive sampling.
``repro.baselines``
    Comparators: static cached approximation (Olston et al.), adaptive
    bounds, moving averages.
``repro.streams`` / ``repro.datasets``
    Stream substrate and the paper's three experimental workloads.
``repro.dsms``
    DSMS substrate: continuous queries, source registry, simulated
    network, sensor energy model, multi-source engine, stream synopsis.
``repro.metrics``
    The paper's metrics (percentage of updates, average error) and traces.
``repro.experiments``
    One module per paper figure/table, regenerating its series.
"""

from repro.baselines import (
    AdaptiveBoundScheme,
    CachedValueScheme,
    ExponentialMovingAverage,
    MovingAverage,
)
from repro.dkf import (
    AdaptiveSamplingSession,
    DKFConfig,
    DKFServer,
    DKFSession,
    DKFSource,
)
from repro.errors import ReproError
from repro.filters import (
    ExtendedKalmanFilter,
    InformationFilter,
    KalmanFilter,
    ModelBank,
    OfflineKalmanSmoother,
    RecursiveLeastSquares,
    StateSpaceModel,
    SteadyStateKalmanFilter,
    StreamSmoother,
    VectorSmoother,
    constant_model,
    linear_model,
    sinusoidal_model,
)
from repro.filters.ukf import UnscentedKalmanFilter
from repro.metrics import (
    EvaluationResult,
    RunTrace,
    collect_trace,
    evaluate_scheme,
)
from repro.scheme import SchemeDecision, SuppressionScheme
from repro.streams import MaterializedStream, StreamRecord, stream_from_values

__version__ = "1.0.0"

__all__ = [
    "AdaptiveBoundScheme",
    "AdaptiveSamplingSession",
    "CachedValueScheme",
    "DKFConfig",
    "DKFServer",
    "DKFSession",
    "DKFSource",
    "EvaluationResult",
    "ExponentialMovingAverage",
    "ExtendedKalmanFilter",
    "InformationFilter",
    "KalmanFilter",
    "OfflineKalmanSmoother",
    "UnscentedKalmanFilter",
    "VectorSmoother",
    "MaterializedStream",
    "ModelBank",
    "MovingAverage",
    "RecursiveLeastSquares",
    "ReproError",
    "RunTrace",
    "SchemeDecision",
    "StateSpaceModel",
    "SteadyStateKalmanFilter",
    "StreamRecord",
    "StreamSmoother",
    "SuppressionScheme",
    "collect_trace",
    "constant_model",
    "evaluate_scheme",
    "linear_model",
    "sinusoidal_model",
    "stream_from_values",
    "__version__",
]
