"""Command-line interface: ``python -m repro <command>``.

Exposes the experiment harness and a configurable one-shot comparison so
the paper's results can be regenerated, and new streams scored, without
writing code::

    python -m repro example1             # Figures 3-5
    python -m repro example2             # Figures 6-8
    python -m repro example3             # Figures 9-12
    python -m repro table1               # Table 1 proxy matrix
    python -m repro compare --dataset moving-object --delta 3
    python -m repro compare --csv trace.csv --model linear --delta 1.5
    python -m repro obs --record snap.json --events run.jsonl
    python -m repro obs snap.json          # replay as ASCII dashboard
    python -m repro obs snap.json --check  # schema validation only
    python -m repro obs --record snap.json --watch --every 60
    python -m repro obs --events run.jsonl --trace s0/41   # causal tree
    python -m repro slo snap.json          # SLO alert + health report
    python -m repro slo --demo --strict
    python -m repro chaos                  # seeded kill-and-recover drill
    python -m repro chaos --out chaos-out --max-recovery-ticks 50
    python -m repro chaos --batch          # same drill on the batch engine
    python -m repro chaos --federation     # peer kill + partition drill
    python -m repro chaos --surge          # load x3 mid-run, autoscaler gated
    python -m repro scale                  # scalar vs batch engine race
    python -m repro scale --sources 64 1024 --min-speedup 5
    python -m repro wire --demo            # real sockets, real DKF endpoints
    python -m repro wire --soak --sources 5000 --out soak.json
    python -m repro benchdiff BENCH_engine_scale.json fresh.json
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.baselines.caching import CachedValueScheme
from repro.datasets import (
    http_traffic_dataset,
    moving_object_dataset,
    power_load_dataset,
)
from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.errors import ConfigurationError
from repro.experiments import example1, example2, example3, table1
from repro.filters.models import constant_model, linear_model, sinusoidal_model
from repro.metrics.compare import format_results
from repro.metrics.evaluation import evaluate_scheme
from repro.streams.base import MaterializedStream
from repro.streams.replay import load_stream_csv

__all__ = ["main", "build_parser"]

_DATASETS = {
    "moving-object": moving_object_dataset,
    "power-load": power_load_dataset,
    "http-traffic": http_traffic_dataset,
}

_EXPERIMENTS = {
    "example1": example1.main,
    "example2": example2.main,
    "example3": example3.main,
    "table1": table1.main,
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing and docs generation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dual Kalman Filter stream resource management "
        "(SIGMOD 2004 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in _EXPERIMENTS:
        sub.add_parser(name, help=f"regenerate the {name} figure series")

    compare = sub.add_parser(
        "compare", help="score DKF variants and caching on one stream"
    )
    source = compare.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--dataset", choices=sorted(_DATASETS), help="built-in dataset"
    )
    source.add_argument("--csv", help="CSV trace saved by save_stream_csv")
    compare.add_argument(
        "--delta", type=float, default=3.0, help="precision width (default 3)"
    )
    compare.add_argument(
        "--model",
        choices=["constant", "linear", "sinusoidal", "all"],
        default="all",
        help="which DKF model to run (default: all applicable)",
    )
    compare.add_argument(
        "--smoothing-f",
        type=float,
        default=None,
        help="optional smoothing factor F for KF_c",
    )
    compare.add_argument(
        "--limit", type=int, default=None, help="truncate the stream"
    )
    compare.add_argument(
        "--omega",
        type=float,
        default=example2.OMEGA,
        help="sinusoidal model angular frequency",
    )

    obs = sub.add_parser(
        "obs", help="record or replay a telemetry snapshot dashboard"
    )
    obs.add_argument(
        "snapshot",
        nargs="?",
        help="snapshot JSON to replay (omit with --record)",
    )
    obs.add_argument(
        "--record",
        metavar="PATH",
        help="run a seeded burst-loss demo with telemetry and write the "
        "snapshot here",
    )
    obs.add_argument(
        "--events",
        metavar="PATH",
        help="with --record: also write the JSONL event log here; with "
        "--trace: the JSONL event log to reconstruct the trace from",
    )
    obs.add_argument(
        "--check",
        action="store_true",
        help="validate the snapshot against the schema and exit",
    )
    obs.add_argument(
        "--ticks", type=int, default=300, help="demo run length (--record)"
    )
    obs.add_argument(
        "--watch",
        action="store_true",
        help="with --record: render live dashboard frames as the demo runs",
    )
    obs.add_argument(
        "--every",
        type=int,
        default=60,
        help="with --watch: ticks between dashboard frames (default 60)",
    )
    obs.add_argument(
        "--trace",
        metavar="ID",
        help="render one trace's causal tree from an --events JSONL log "
        "('all' lists the trace IDs present)",
    )

    slo = sub.add_parser(
        "slo",
        help="SLO alert and health-watcher report from a v2 snapshot",
    )
    slo.add_argument(
        "snapshot",
        nargs="?",
        help="snapshot JSON to report on (omit with --demo)",
    )
    slo.add_argument(
        "--demo",
        action="store_true",
        help="run the seeded burst-loss demo with the default SLO rules "
        "and health watchers installed, then report on it",
    )
    slo.add_argument(
        "--ticks", type=int, default=300, help="demo run length (--demo)"
    )
    slo.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any alert fired (or is still firing)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="seeded crash drill: burst loss, sensor faults, a server "
        "kill, checkpoint/WAL recovery, and a recovery report",
    )
    chaos.add_argument(
        "--ticks", type=int, default=400, help="total run length"
    )
    chaos.add_argument("--seed", type=int, default=7, help="scenario seed")
    chaos.add_argument(
        "--crash-at",
        type=int,
        default=225,
        help="tick the server dies (default mid-checkpoint-interval so "
        "recovery must replay a WAL tail)",
    )
    chaos.add_argument(
        "--recover-after",
        type=int,
        default=10,
        help="downtime ticks before recovery runs",
    )
    chaos.add_argument(
        "--checkpoint-every",
        type=int,
        default=50,
        help="checkpoint cadence in ticks",
    )
    chaos.add_argument(
        "--max-recovery-ticks",
        type=int,
        default=50,
        help="recovery bound: every stream must be back within its δ of "
        "the true value this many ticks after recover() (exit 1 "
        "otherwise)",
    )
    chaos.add_argument(
        "--out",
        default="chaos-out",
        help="artifact directory (checkpoint + WAL + snapshot + report)",
    )
    chaos.add_argument(
        "--batch",
        action="store_true",
        help="run the drill on the vectorized BatchStreamEngine (its "
        "synchronous transport has no server inbox, so overload "
        "shedding is skipped)",
    )
    chaos.add_argument(
        "--federation",
        action="store_true",
        help="run the federated drill instead: a peer cluster survives a "
        "server kill (failover re-homes every stream) and a network "
        "partition (both halves answer, deterministic reconcile on heal)",
    )
    chaos.add_argument(
        "--peers",
        type=int,
        default=3,
        help="peer count for --federation (default 3)",
    )
    chaos.add_argument(
        "--surge",
        action="store_true",
        help="run the load-surge drill instead: offered load triples "
        "mid-run; the predictive autoscaler must hold the latency SLO "
        "with a lower audited δ-shed error than the reactive-only "
        "baseline (same seed, exit 1 on any gate failure)",
    )
    chaos.add_argument(
        "--surge-start",
        type=int,
        default=80,
        help="first tick of the surge (--surge only)",
    )
    chaos.add_argument(
        "--surge-len",
        type=int,
        default=80,
        help="surge duration in ticks (--surge only)",
    )
    chaos.add_argument(
        "--load-factor",
        type=float,
        default=3.0,
        help="offered-load multiplier during the surge (--surge only)",
    )
    chaos.add_argument(
        "--settle-window",
        type=int,
        default=64,
        help="ticks after the surge by which the shed ledger must "
        "balance and the SLO must resolve (--surge only)",
    )

    scale = sub.add_parser(
        "scale",
        help="race the vectorized batch engine against the scalar engine "
        "over growing source counts",
    )
    scale.add_argument(
        "--sources",
        type=int,
        nargs="+",
        default=[64, 256, 1024],
        help="source counts to sweep (default: 64 256 1024)",
    )
    scale.add_argument(
        "--ticks", type=int, default=300, help="ticks per source"
    )
    scale.add_argument(
        "--workers",
        type=int,
        default=0,
        help="batch-engine worker processes (0 = inline)",
    )
    scale.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="exit 1 unless the batch engine beats the scalar engine by "
        "this factor at the largest sweep point",
    )
    scale.add_argument(
        "--out",
        default=None,
        help="write the sweep as a repro.obs/v2 snapshot JSON here",
    )

    wire = sub.add_parser(
        "wire",
        help="run the asyncio real-wire runtime: UDP update fabric, TCP "
        "query API, wall-clock ticks",
    )
    wire.add_argument(
        "--soak",
        action="store_true",
        help="soak-scale run with the vectorised lite fleet and the p99 "
        "query-latency gate armed",
    )
    wire.add_argument(
        "--demo",
        action="store_true",
        help="demo-scale run with real DKF endpoints (SourceStepper) "
        "instead of the lite fleet",
    )
    wire.add_argument(
        "--chaos",
        action="store_true",
        help="chaos-hardened run: seeded socket-level fault injection "
        "(loss, corruption, duplication, reorder, delay, partition), "
        "adversarial fuzz barrage, mid-run rebind, stall injection and "
        "a zero-loss drain/hot-restart drill",
    )
    wire.add_argument(
        "--sources", type=int, default=None,
        help="fleet size (default: 5000 for --soak, 64 for --demo, "
        "256 for --chaos)",
    )
    wire.add_argument(
        "--ticks", type=int, default=None,
        help="runtime ticks to execute (default: 120 soak, 40 demo)",
    )
    wire.add_argument(
        "--tick-seconds", type=float, default=None,
        help="wall-clock seconds per tick (default: 0.25 soak, 0.1 demo)",
    )
    wire.add_argument("--seed", type=int, default=0, help="workload seed")
    wire.add_argument(
        "--update-prob", type=float, default=0.05,
        help="per-source escaped-update probability per tick (lite fleet)",
    )
    wire.add_argument(
        "--corrupt-rate", type=float, default=0.0,
        help="seeded probability a fleet datagram is bit-flipped",
    )
    wire.add_argument(
        "--query-rate", type=float, default=200.0,
        help="TCP query load in queries per second",
    )
    wire.add_argument(
        "--p99-gate-ms", type=float, default=250.0,
        help="fail when p99 query latency exceeds this many ms",
    )
    wire.add_argument(
        "--out", default=None,
        help="write the soak summary JSON here",
    )
    wire.add_argument(
        "--bench-out", default=None,
        help="write a repro.obs bench snapshot (BENCH_wire.json) here",
    )
    wire.add_argument(
        "--chaos-report", default=None,
        help="(--chaos only) write the deterministic chaos report here; "
        "byte-identical across same-seed runs",
    )

    benchdiff = sub.add_parser(
        "benchdiff",
        help="compare two bench snapshots and gate on throughput "
        "regression (baseline may be a v1 artifact; it migrates on load)",
    )
    benchdiff.add_argument("baseline", help="committed baseline snapshot")
    benchdiff.add_argument("fresh", help="freshly produced snapshot")
    benchdiff.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="fail when any shared throughput gauge regresses by more "
        "than this fraction (default 0.25)",
    )
    return parser


def _load_stream(args: argparse.Namespace) -> MaterializedStream:
    if args.dataset:
        stream = _DATASETS[args.dataset]()
    else:
        stream = load_stream_csv(args.csv)
    if args.limit is not None:
        stream = stream.head(args.limit)
    return stream


def _models_for(args: argparse.Namespace, dims: int):
    choices = {
        "constant": lambda: constant_model(dims=dims),
        "linear": lambda: linear_model(dims=dims, dt=1.0),
    }
    if dims == 1:
        choices["sinusoidal"] = lambda: sinusoidal_model(
            omega=args.omega, theta=0.0
        )
    if args.model == "all":
        return [(name, build()) for name, build in choices.items()]
    if args.model not in choices:
        raise ConfigurationError(
            f"model {args.model!r} is not applicable to a {dims}-d stream"
        )
    return [(args.model, choices[args.model]())]


def _run_compare(args: argparse.Namespace) -> int:
    stream = _load_stream(args)
    if not len(stream):
        print("stream is empty", file=sys.stderr)
        return 1
    dims = stream.dim
    results = [
        evaluate_scheme(
            CachedValueScheme.from_precision(args.delta, dims=dims), stream
        )
    ]
    for name, model in _models_for(args, dims):
        config = DKFConfig(
            model=model,
            delta=args.delta,
            smoothing_f=args.smoothing_f,
            label=f"dkf-{name}",
        )
        results.append(evaluate_scheme(DKFSession(config), stream))
    print(format_results(results))
    return 0


def _build_demo_engine(ticks: int, telemetry):
    """The seeded burst-loss demo engine (shared by obs/slo demos).

    One linear stream, bursty loss plus rare corruption, with the
    default health watchers and SLO rules installed -- enough traffic
    for every v2 snapshot section to carry real data.
    """
    import numpy as np

    from repro.dkf.config import TransportPolicy
    from repro.dsms.engine import StreamEngine
    from repro.dsms.faults import FaultSchedule
    from repro.dsms.query import ContinuousQuery
    from repro.streams.base import stream_from_values

    telemetry.health.install_defaults()
    telemetry.slo.install_defaults()
    engine = StreamEngine(telemetry=telemetry)
    rng = np.random.default_rng(7)
    values = np.cumsum(rng.normal(0.0, 1.0, size=ticks))
    engine.add_source(
        "s0",
        linear_model(dims=1, dt=1.0),
        stream_from_values(values, name="demo"),
        transport=TransportPolicy(ack_timeout_ticks=4),
    )
    engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
    engine.inject_faults(
        FaultSchedule(seed=7)
        .burst_loss("s0", p_enter=0.05, p_exit=0.3)
        .corrupt("s0", rate=0.02)
    )
    return engine


def _record_demo(args: argparse.Namespace) -> dict:
    """Run the seeded burst-loss demo with telemetry and export artifacts."""
    from repro.obs import JsonlEventWriter, Telemetry, write_snapshot
    from repro.obs.dashboard import render_dashboard

    ticks = args.ticks
    telemetry = Telemetry()
    writer = None
    if args.events:
        writer = JsonlEventWriter(args.events)
        telemetry.bus.subscribe(writer)
    engine = _build_demo_engine(ticks, telemetry)
    meta = {"name": "obs-demo", "seed": 7, "demo_ticks": ticks}
    if getattr(args, "watch", False):
        frame_every = max(1, args.every)
        for _ in range(ticks):
            engine.step()
            if engine.ticks % frame_every == 0:
                print(render_dashboard(engine.obs_snapshot(meta)))
                print(f"\n[watch] tick {engine.ticks}/{ticks}\n")
    else:
        engine.run()
    engine.settle()
    snapshot = engine.obs_snapshot(meta)
    write_snapshot(args.record, snapshot)
    if writer is not None:
        writer.close()
        print(f"wrote {writer.lines_written} events to {args.events}")
    print(f"wrote snapshot to {args.record}")
    return snapshot


def _run_chaos(args: argparse.Namespace) -> int:
    """Seeded kill-and-recover drill with a pass/fail recovery bound."""
    import json
    from pathlib import Path

    import numpy as np

    from repro.dkf.config import TransportPolicy
    from repro.dsms.engine import StreamEngine
    from repro.dsms.faults import FaultSchedule
    from repro.dsms.query import ContinuousQuery
    from repro.obs import Telemetry, write_snapshot
    from repro.resilience import (
        OverloadPolicy,
        ResilienceConfig,
        RestartPolicy,
        WatchdogPolicy,
    )
    from repro.streams.base import stream_from_values

    ticks = args.ticks
    crash_at = args.crash_at
    recover_at = crash_at + args.recover_after
    if not 0 < crash_at < ticks or recover_at >= ticks:
        raise ConfigurationError(
            "need 0 < crash-at and crash-at + recover-after < ticks"
        )
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    rng = np.random.default_rng(args.seed)
    truth = {
        "hi": np.cumsum(rng.normal(0.4, 1.0, size=ticks)),
        "mid": np.cumsum(rng.normal(-0.2, 1.2, size=ticks)),
        "lo": np.cumsum(rng.normal(0.0, 0.8, size=ticks)),
    }
    deltas = {"hi": 1.0, "mid": 1.5, "lo": 2.0}
    priorities = {"hi": 2, "mid": 1, "lo": 0}

    telemetry = Telemetry()
    telemetry.health.install_defaults()
    telemetry.slo.install_defaults()
    if args.batch:
        from repro.scale.engine import BatchStreamEngine

        # The batch transport applies deliveries synchronously -- there
        # is no server inbox to shed from, so the drill runs without the
        # overload policy.
        engine = BatchStreamEngine(
            telemetry=telemetry,
            resilience=ResilienceConfig(
                checkpoint_dir=str(out / "checkpoint"),
                checkpoint_every=args.checkpoint_every,
                watchdog=WatchdogPolicy(),
                restart=RestartPolicy(),
            ),
        )
    else:
        engine = StreamEngine(
            telemetry=telemetry,
            resilience=ResilienceConfig(
                checkpoint_dir=str(out / "checkpoint"),
                checkpoint_every=args.checkpoint_every,
                watchdog=WatchdogPolicy(),
                restart=RestartPolicy(),
                overload=OverloadPolicy(inbox_capacity=32, drain_per_tick=4,
                                        cooldown_ticks=8),
            ),
        )
    for source_id in ("hi", "mid", "lo"):
        engine.add_source(
            source_id,
            linear_model(dims=1, dt=1.0),
            stream_from_values(truth[source_id], name=source_id),
            transport=TransportPolicy(ack_timeout_ticks=4),
            priority=priorities[source_id],
        )
        engine.submit_query(
            ContinuousQuery(
                source_id,
                delta=deltas[source_id],
                query_id=f"q-{source_id}",
            )
        )
    engine.inject_faults(
        FaultSchedule(seed=args.seed)
        .burst_loss("hi", p_enter=0.05, p_exit=0.3)
        .sensor("mid", "nan", start=80, duration=12)
        .sensor("lo", "spike", start=120, duration=6, magnitude=40.0)
        .crash("lo", at=150, restart_at=160)
    )

    recovery_summary = None
    recovered_within = None
    for _ in range(ticks):
        tick = engine.ticks
        if tick == crash_at:
            engine.crash_server()
            print(f"[tick {tick}] server crashed")
        if tick == recover_at:
            recovery_summary = engine.recover()
            print(
                f"[tick {tick}] server recovered: "
                f"{recovery_summary['restored_sources']} sources restored, "
                f"{recovery_summary['wal_replayed']} WAL records replayed, "
                f"{recovery_summary['resync_requests']} resyncs requested"
            )
        engine.step()
        if recovery_summary is not None and recovered_within is None:
            answers = {a.source_id: a for a in engine.answers()}
            if len(answers) == len(truth) and all(
                abs(a.value[0] - truth[sid][engine.ticks - 1])
                <= a.precision + 1e-9
                for sid, a in answers.items()
            ):
                recovered_within = engine.ticks - recover_at
    engine.settle()

    counters = {
        c.name: c.value
        for c in telemetry.metrics.counters()
        if not c.labels
    }
    for c in telemetry.metrics.counters():
        if c.labels:
            counters[c.name] = counters.get(c.name, 0) + c.value
    resilience = engine.resilience_report()
    report = {
        "seed": args.seed,
        "ticks": engine.ticks,
        "crash_at": crash_at,
        "recover_at": recover_at,
        "recovery": recovery_summary,
        "recovered_within_ticks": recovered_within,
        "max_recovery_ticks": args.max_recovery_ticks,
        "watchdog_trips": counters.get("watchdog_trips_total", 0),
        "checkpoint_writes": counters.get("checkpoint_writes_total", 0),
        "wal_records": counters.get("wal_records_total", 0),
        "resilience": resilience,
        "traffic": engine.report().to_dict(),
    }
    (out / "report.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    write_snapshot(
        str(out / "snapshot.json"),
        engine.obs_snapshot({"name": "chaos", "seed": args.seed}),
    )
    (out / "slo-report.json").write_text(
        json.dumps(
            {
                "slo": telemetry.slo.report(),
                "health": telemetry.health.report(),
                "faults": {"crash_at": crash_at, "recover_at": recover_at},
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )

    print("\n=== chaos recovery report ===")
    print(f"checkpoints written : {report['checkpoint_writes']}")
    print(f"WAL records logged  : {report['wal_records']}")
    print(f"watchdog trips      : {report['watchdog_trips']}")
    if recovery_summary is not None:
        print(f"WAL records replayed: {recovery_summary['wal_replayed']}")
        print(f"resyncs requested   : {recovery_summary['resync_requests']}")
        print(
            "dropped while down  : "
            f"{recovery_summary['dropped_while_down']}"
        )
    shed = resilience.get("overload", {})
    widened = {s: v for s, v in shed.items() if v["widened_ticks"]}
    if widened:
        for source_id, account in sorted(widened.items()):
            print(
                f"shed on {source_id:<12}: {account['widened_ticks']} ticks "
                f"widened, {account['shed_error']:.2f} bounded extra error"
            )
    print(f"artifacts           : {out}/")
    if recovered_within is None:
        print(
            f"FAIL: streams never re-converged within delta after recovery"
        )
        return 1
    verdict = "ok" if recovered_within <= args.max_recovery_ticks else "FAIL"
    print(
        f"recovered within    : {recovered_within} ticks "
        f"(bound {args.max_recovery_ticks}) -> {verdict}"
    )
    return 0 if verdict == "ok" else 1


def _run_chaos_federation(args: argparse.Namespace) -> int:
    """Federated chaos drill: peer kill + partition, zero stream loss.

    One seeded scenario, two hard gates:

    * **Crash**: the busiest peer dies mid-run.  Every stream it homed
      must be re-homed (failover visible in telemetry) and every final
      answer must sit within its advertised ``precision +
      consensus_error`` of the stream's true final value.
    * **Partition**: a later cut isolates one peer.  Both halves must
      keep answering their streams, and a second identical run must
      produce bit-identical final answers (deterministic reconcile).
    """
    import json
    from pathlib import Path

    import numpy as np

    from repro.dsms.faults import FaultSchedule
    from repro.dsms.query import ContinuousQuery
    from repro.federation import FederatedCluster, FederationConfig
    from repro.obs import Telemetry, build_snapshot, write_snapshot
    from repro.streams.base import stream_from_values

    ticks = args.ticks
    if args.peers < 3:
        raise ConfigurationError("the federated drill needs at least 3 peers")
    crash_at = ticks // 4
    restart_at = ticks // 2
    cut_at = (ticks * 5) // 8
    heal_at = (ticks * 7) // 8
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    n_streams = max(6, 2 * args.peers)
    rng = np.random.default_rng(args.seed)
    truth = {
        f"s{i}": np.cumsum(rng.normal(0.0, 0.4, size=ticks))
        for i in range(n_streams)
    }

    def build(telemetry=None, faults=True):
        cluster = FederatedCluster(
            FederationConfig(
                peers=args.peers, replication=1, consensus_every=8
            ),
            telemetry=telemetry,
        )
        for sid, values in truth.items():
            cluster.add_source(
                sid, constant_model(q=0.2, r=1.0),
                stream_from_values(values, name=sid),
            )
            cluster.submit_query(
                ContinuousQuery(sid, delta=1.0, query_id=f"q-{sid}")
            )
        homes = {sid: cluster.home_of(sid) for sid in truth}
        counts = {p: sum(1 for h in homes.values() if h == p)
                  for p in cluster.peers}
        victim = max(sorted(counts), key=lambda p: counts[p])
        # Isolate a *surviving* peer for the partition leg, its homed
        # sources on its side of the cut (split-brain, not starvation).
        others = [p for p in sorted(cluster.peers) if p != victim]
        island = others[0]
        island_side = {island} | {
            s for s, h in homes.items() if h == island
        }
        far_side = (set(cluster.peers) | set(truth)) - island_side
        if faults:
            cluster.inject_faults(
                FaultSchedule(seed=args.seed)
                .crash(victim, at=crash_at, restart_at=restart_at)
                .partition(island_side, far_side, at=cut_at, heal_at=heal_at)
            )
        return cluster, victim, island

    def drill(telemetry=None, faults=True):
        cluster, victim, island = build(telemetry, faults)
        mid_partition = None
        for _ in range(ticks):
            cluster.step()
            # Serve every query once per tick: answers feed the
            # staleness and consensus-error health series (a pure read
            # when telemetry is disabled, so bit-identity holds).
            cluster.answers()
            if cluster.ticks == (cut_at + heal_at) // 2:
                mid_partition = {
                    "island": sorted(
                        a.source_id for a in cluster.answers(island)
                    ),
                    # The mainland answers as a *side*: any alive peer
                    # over there may hold the serving bank (the restarted
                    # victim's healed replicas included).
                    "mainland": sorted(
                        {
                            a.source_id
                            for p, node in cluster.peers.items()
                            if p != island and node.alive
                            for a in cluster.answers(p)
                        }
                    ),
                }
        cluster.run()
        cluster.settle()
        finals = sorted(
            (a.source_id, a.value, a.precision, a.consensus_error)
            for a in cluster.answers()
        )
        return cluster, victim, island, mid_partition, finals

    telemetry = Telemetry()
    telemetry.health.install_defaults(federation=True)
    telemetry.slo.install_defaults(federation=True)
    cluster, victim, island, mid_partition, finals = drill(telemetry)
    report = cluster.report()
    orphans = sorted(
        s for s in truth
        if cluster._home_epoch[s] > 0
    )
    failures: list[str] = []

    answered = {row[0] for row in finals}
    missing = sorted(set(truth) - answered)
    if missing:
        failures.append(f"streams lost (no final answer): {missing}")
    if report.failovers == 0:
        failures.append("peer kill produced no failovers")
    for sid, value, precision, consensus_error in finals:
        err = abs(value[0] - truth[sid][-1])
        bound = precision + consensus_error + 1e-9
        if err > bound:
            failures.append(
                f"{sid}: final error {err:.4f} exceeds advertised "
                f"bound {bound:.4f}"
            )
    if mid_partition is None:
        failures.append("drill never sampled the partition window")
    else:
        island_homes = {
            s for s in truth if cluster.home_of(s) == island
        }
        if not island_homes <= set(mid_partition["island"]):
            failures.append(
                "isolated half stopped answering its own streams: "
                f"{sorted(island_homes - set(mid_partition['island']))}"
            )
        if set(mid_partition["mainland"]) != set(truth):
            failures.append(
                "mainland half lost streams mid-partition: "
                f"{sorted(set(truth) - set(mid_partition['mainland']))}"
            )
    counters: dict[str, int] = {}
    for c in telemetry.metrics.counters():
        counters[c.name] = counters.get(c.name, 0) + c.value
    if not counters.get("fed_failovers_total"):
        failures.append("failovers invisible in telemetry counters")

    # SLO lifecycle gates: the partition must push at least one alert
    # through pending -> firing inside the fault window, and the heal
    # must resolve it before the run ends.
    slo_alerts = telemetry.slo.alerts
    fired_in_partition = sorted(
        name
        for name, alert in slo_alerts.items()
        if alert.fired_between(cut_at, heal_at)
    )
    if not fired_in_partition:
        failures.append(
            "no SLO alert fired during the partition window "
            f"[{cut_at}, {heal_at}]"
        )
    resolved_after_heal = sorted(
        name
        for name in fired_in_partition
        if slo_alerts[name].resolved_after(heal_at)
    )
    if fired_in_partition and not resolved_after_heal:
        failures.append(
            "no partition-window alert resolved after the heal at "
            f"{heal_at}"
        )
    # Health gate: a Kalman watcher must flag an injected fault within
    # 50 ticks of its onset.
    anomaly_ticks = sorted(
        e.tick for e in telemetry.bus.events("health.anomaly")
    )
    detection_window = 50
    flagged_fast = any(
        start <= t <= start + detection_window
        for start in (crash_at, cut_at)
        for t in anomaly_ticks
    )
    if not flagged_fast:
        failures.append(
            "no health watcher flagged the crash or the partition within "
            f"{detection_window} ticks (anomalies at {anomaly_ticks})"
        )

    _, _, _, _, finals_again = drill()
    if finals != finals_again:
        failures.append("re-run after heal was not bit-identical")

    # Clean-run gate: the same cluster without injected faults must stay
    # silent -- zero anomaly events, zero alerts fired.
    clean_tel = Telemetry()
    clean_tel.health.install_defaults(federation=True)
    clean_tel.slo.install_defaults(federation=True)
    drill(clean_tel, faults=False)
    clean_anomalies = clean_tel.health.total_anomalies
    clean_fired = sorted(
        name
        for name, alert in clean_tel.slo.alerts.items()
        if alert.fired_between(0, ticks)
    )
    if clean_anomalies:
        failures.append(
            f"clean run produced {clean_anomalies} health anomalies "
            "(watchers must stay silent without faults)"
        )
    if clean_fired:
        failures.append(f"clean run fired SLO alerts: {clean_fired}")

    drill_report = {
        "seed": args.seed,
        "ticks": cluster.ticks,
        "peers": args.peers,
        "victim": victim,
        "island": island,
        "crash_at": crash_at,
        "restart_at": restart_at,
        "cut_at": cut_at,
        "heal_at": heal_at,
        "streams": sorted(truth),
        "re_homed": orphans,
        "mid_partition": mid_partition,
        "failures": failures,
        "federation": report.to_dict(),
    }
    (out / "federation-report.json").write_text(
        json.dumps(drill_report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    write_snapshot(
        str(out / "federation-snapshot.json"),
        build_snapshot(
            telemetry,
            meta={"name": "chaos-federation", "seed": args.seed,
                  "peers": args.peers},
        ),
    )
    slo_report = {
        "windows": {
            "crash_at": crash_at,
            "restart_at": restart_at,
            "cut_at": cut_at,
            "heal_at": heal_at,
            "detection_window": detection_window,
        },
        "slo": telemetry.slo.report(),
        "health": telemetry.health.report(),
        "anomaly_ticks": anomaly_ticks,
        "fired_during_partition": fired_in_partition,
        "resolved_after_heal": resolved_after_heal,
        "clean_run": {
            "anomalies": clean_anomalies,
            "alerts_fired": clean_fired,
        },
    }
    (out / "slo-report.json").write_text(
        json.dumps(slo_report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    print("\n=== federated chaos report ===")
    print(f"peers               : {args.peers} (killed {victim}, "
          f"isolated {island})")
    print(f"failovers           : {report.failovers} "
          f"(re-homed: {', '.join(orphans) or 'none'})")
    print(f"re-home latencies   : {list(report.rehome_latency_ticks)}")
    print(f"consensus rounds    : {report.consensus_rounds}")
    print(f"split-brain ticks   : {report.split_brain_ticks}")
    print(f"dropped at dead peer: {report.dropped_at_dead_peer}")
    print(f"alerts fired in cut : {', '.join(fired_in_partition) or 'none'}")
    print(
        f"resolved after heal : {', '.join(resolved_after_heal) or 'none'}"
    )
    print(f"anomaly ticks       : {anomaly_ticks or 'none'}")
    print(
        f"clean run           : {clean_anomalies} anomalies, "
        f"{len(clean_fired)} alerts fired"
    )
    print(f"artifacts           : {out}/")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"ok: {len(truth)} streams survived the kill and the partition")
    return 0


def _run_chaos_surge(args: argparse.Namespace) -> int:
    """Load-surge drill: predictive vs reactive δ-shedding, gated.

    Runs :func:`repro.autoscale.drill.compare_surge_drill` -- the same
    seeded scenario twice, once with the predictive autoscaler armed and
    once with reactive overload control only -- and writes three
    artifacts into ``--out``:

    * ``report.json`` -- both runs plus the acceptance gates;
    * ``slo-report.json`` -- the enabled run's SLO/alert state (pure
      tick-indexed control flow, so two runs with the same ``--seed``
      produce byte-identical files);
    * ``autoscale-trace.json`` -- every control-interval decision the
      planner made, with the forecast inputs that produced it.

    Exit 1 when any gate fails.
    """
    import json
    from pathlib import Path

    from repro.autoscale.drill import compare_surge_drill

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    comparison = compare_surge_drill(
        args.seed,
        ticks=args.ticks,
        surge_start=args.surge_start,
        surge_len=args.surge_len,
        load_factor=args.load_factor,
        settle_window=args.settle_window,
    )
    enabled = comparison["enabled"]
    disabled = comparison["disabled"]
    gates = comparison["gates"]

    (out / "report.json").write_text(
        json.dumps(comparison, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    (out / "slo-report.json").write_text(
        json.dumps(
            {
                "seed": comparison["seed"],
                "slo": enabled["slo"],
                "gates": gates,
                "surge": {
                    "start": enabled["surge_start"],
                    "end": enabled["surge_end"],
                    "load_factor": comparison["load_factor"],
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    (out / "autoscale-trace.json").write_text(
        json.dumps(
            (enabled["autoscale"] or {}).get("trace", []),
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )

    print("=== surge drill (predictive vs reactive) ===")
    print(
        f"offered rate        : calm {enabled['calm_rate']:.2f}/tick -> "
        f"surge {enabled['surge_rate']:.2f}/tick "
        f"(x{enabled['surge_rate'] / max(enabled['calm_rate'], 1e-9):.1f})"
    )
    for label, run in (("predictive", enabled), ("reactive  ", disabled)):
        ledger = run["ledger"]
        print(
            f"{label}          : shed error {run['shed_error_total']:8.1f}, "
            f"drops {run['inbox_dropped']:4d}, "
            f"widen steps {ledger['widen_steps']:3d}, "
            f"settle {run['settle_ticks']} ticks"
        )
    saved = disabled["shed_error_total"] - enabled["shed_error_total"]
    print(
        f"prediction saved    : {saved:.1f} bounded error "
        f"({saved / max(disabled['shed_error_total'], 1e-9):.0%} of the "
        "reactive total)"
    )
    print(f"artifacts           : {out}/")
    for gate, passed in sorted(gates.items()):
        print(f"gate {gate:<20}: {'ok' if passed else 'FAIL'}")
    return 0 if comparison["passed"] else 1


def _run_scale(args: argparse.Namespace) -> int:
    """Race the scalar engine against the batch engine, gate on speedup."""
    import time

    import numpy as np

    from repro.dsms.engine import StreamEngine
    from repro.dsms.query import ContinuousQuery
    from repro.scale.engine import BatchStreamEngine
    from repro.streams.base import stream_from_values

    counts = sorted(set(args.sources))
    if any(n < 1 for n in counts):
        raise ConfigurationError("source counts must be positive")
    if args.ticks < 1:
        raise ConfigurationError("ticks must be positive")

    def run(cls, n, **kw):
        rng = np.random.default_rng(42)
        engine = cls(**kw)
        model = linear_model(dims=1, dt=1.0)
        for i in range(n):
            values = np.cumsum(rng.normal(0.0, 1.0, size=args.ticks))
            engine.add_source(
                f"s{i}", model, stream_from_values(values, name=f"s{i}")
            )
            engine.submit_query(
                ContinuousQuery(f"s{i}", delta=2.0, query_id=f"q{i}")
            )
        start = time.perf_counter()
        engine.run()
        elapsed = time.perf_counter() - start
        return elapsed, engine.report()

    results = []
    for n in counts:
        scalar_s, scalar_report = run(StreamEngine, n)
        batch_s, batch_report = run(
            BatchStreamEngine, n, workers=args.workers
        )
        if batch_report.updates_sent != scalar_report.updates_sent:
            print(
                f"error: at {n} sources the batch engine sent "
                f"{batch_report.updates_sent} updates but the scalar "
                f"engine sent {scalar_report.updates_sent}",
                file=sys.stderr,
            )
            return 1
        results.append((n, scalar_s, batch_s, scalar_s / batch_s))
        n_, ss, bs, sp = results[-1]
        print(
            f"{n_:6d} sources: scalar {ss * 1e3:9.1f} ms  "
            f"batch {bs * 1e3:8.1f} ms  "
            f"({bs / (n_ * args.ticks) * 1e6:5.2f} us/reading)  "
            f"speedup {sp:5.1f}x"
        )

    if args.out:
        from repro.obs import MetricsRegistry, build_snapshot, write_snapshot

        registry = MetricsRegistry()
        for n, scalar_s, batch_s, speedup in results:
            for variant, seconds in (("scalar", scalar_s), ("batch", batch_s)):
                labels = {"sources": str(n), "variant": variant}
                registry.gauge("engine_run_seconds", labels).set(seconds)
                registry.gauge("engine_us_per_reading", labels).set(
                    seconds / (n * args.ticks) * 1e6
                )
            registry.gauge("batch_speedup_x", {"sources": str(n)}).set(
                speedup
            )
        write_snapshot(
            args.out,
            build_snapshot(
                registry,
                meta={
                    "bench": "cli_scale",
                    "ticks_per_source": args.ticks,
                    "source_counts": counts,
                    "workers": args.workers,
                    "min_speedup": args.min_speedup,
                },
            ),
        )
        print(f"wrote snapshot to {args.out}")

    largest, _, _, speedup = results[-1]
    if speedup < args.min_speedup:
        print(
            f"FAIL: batch speedup {speedup:.1f}x at {largest} sources is "
            f"below the {args.min_speedup:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: batch speedup {speedup:.1f}x at {largest} sources "
        f"(floor {args.min_speedup:.1f}x)"
    )
    return 0


def _run_obs(args: argparse.Namespace) -> int:
    from repro.obs import load_snapshot, render_dashboard, validate_snapshot

    if args.trace is not None and args.record is None:
        # Post-mortem trace view: rebuild one update's causal tree from
        # an exported JSONL event log.
        from repro.obs import read_jsonl_events, render_trace, trace_ids

        if args.events is None:
            print("error: --trace needs --events <run.jsonl>", file=sys.stderr)
            return 1
        events = read_jsonl_events(args.events)
        if args.trace == "all":
            ids = trace_ids(events)
            for tid in ids:
                print(tid)
            print(f"({len(ids)} traces in {args.events})")
            return 0
        print(render_trace(events, args.trace))
        return 0
    if args.record is None and args.snapshot is None:
        print("error: need a snapshot path or --record", file=sys.stderr)
        return 1
    if args.record is not None:
        snapshot = _record_demo(args)
    else:
        snapshot = load_snapshot(args.snapshot)
    validate_snapshot(snapshot)
    if args.check:
        print("snapshot ok")
        return 0
    if args.trace is not None:
        # --record --events --trace: trace from the just-written log.
        from repro.obs import read_jsonl_events, render_trace

        if args.events is None:
            print("error: --trace needs --events <run.jsonl>", file=sys.stderr)
            return 1
        print(render_trace(read_jsonl_events(args.events), args.trace))
        return 0
    print(render_dashboard(snapshot))
    return 0


def _format_slo_report(snapshot: dict) -> tuple[str, bool]:
    """Render the alerts/health sections; returns (text, any_fired)."""
    lines: list[str] = []
    rules = snapshot.get("alerts", {}).get("rules", [])
    watchers = snapshot.get("health", {}).get("watchers", [])
    any_fired = False
    lines.append("=== SLO report ===")
    if not rules:
        lines.append("(no SLO rules installed)")
    for rule in rules:
        fired = [t for t in rule["transitions"] if t["to"] == "firing"]
        resolved = [t for t in rule["transitions"] if t["to"] == "resolved"]
        if fired or rule["state"] == "firing":
            any_fired = True
        status = rule["state"].upper() if rule["state"] != "ok" else "ok"
        lines.append(
            f"{rule['name']} ({rule['kind']}, objective "
            f"{rule['objective']:g}): {status}"
        )
        if fired:
            ticks = ", ".join(str(t["tick"]) for t in fired)
            lines.append(f"  fired at tick(s): {ticks}")
        if resolved:
            ticks = ", ".join(str(t["tick"]) for t in resolved)
            lines.append(f"  resolved at tick(s): {ticks}")
        last = rule.get("last")
        if last:
            pairs = " ".join(f"{k}={v:g}" for k, v in sorted(last.items()))
            lines.append(f"  last evaluation: {pairs}")
    lines.append("")
    lines.append("=== health watchers ===")
    if not watchers:
        lines.append("(no health watchers installed)")
    for w in watchers:
        if w["anomalies"]:
            lines.append(
                f"{w['name']} <- {w['metric']} ({w['signal']}): "
                f"{w['anomalies']} anomalies, first @tick "
                f"{w['first_anomaly_tick']}, last @tick "
                f"{w['last_anomaly_tick']}"
            )
        else:
            lines.append(
                f"{w['name']} <- {w['metric']} ({w['signal']}): clean"
            )
    return "\n".join(lines), any_fired


def _run_slo(args: argparse.Namespace) -> int:
    from repro.obs import Telemetry, load_snapshot

    if args.demo:
        telemetry = Telemetry()
        engine = _build_demo_engine(args.ticks, telemetry)
        engine.run()
        engine.settle()
        snapshot = engine.obs_snapshot(
            {"name": "slo-demo", "seed": 7, "demo_ticks": args.ticks}
        )
    elif args.snapshot is None:
        print("error: need a snapshot path or --demo", file=sys.stderr)
        return 1
    else:
        snapshot = load_snapshot(args.snapshot)
    text, any_fired = _format_slo_report(snapshot)
    print(text)
    if args.strict and any_fired:
        print("strict: at least one alert fired", file=sys.stderr)
        return 1
    return 0


def _run_wire(args: argparse.Namespace) -> int:
    from repro.wire import WireConfig, run_chaos, run_soak

    demo = args.demo and not args.soak and not args.chaos
    chaos = args.chaos
    sources = args.sources if args.sources is not None else (
        256 if chaos else 64 if demo else 5000
    )
    ticks = args.ticks if args.ticks is not None else (
        30 if chaos else 40 if demo else 120
    )
    tick_seconds = args.tick_seconds if args.tick_seconds is not None else (
        0.2 if chaos else 0.1 if demo else 0.25
    )
    config = WireConfig(
        sources=sources,
        ticks=ticks,
        tick_seconds=tick_seconds,
        seed=args.seed,
        update_prob=args.update_prob,
        ramp_ticks=max(1, min(ticks - 1, ticks // 4)),
        corrupt_rate=args.corrupt_rate,
        query_rate=args.query_rate,
        query_p99_gate_ms=args.p99_gate_ms,
        heartbeat_interval_ticks=min(50, max(2, ticks // 2)),
        # The chaos run's slow-loris drill must see the idle deadline
        # expire inside the run's teardown window.
        query_idle_timeout_s=(
            max(1.0, 4 * tick_seconds) if chaos else 30.0
        ),
    )
    if chaos:
        return _run_wire_chaos(args, config, run_chaos)
    summary = run_soak(
        config,
        fleet_kind="stepper" if demo else "lite",
        out=args.out,
        bench_out=args.bench_out,
    )
    measured = summary["measured"]
    wire = summary["wire"]
    gates = summary["gates"]
    print(
        f"wire {'demo' if demo else 'soak'}: {sources} sources, "
        f"{measured['ticks']} ticks x {tick_seconds:g}s "
        f"({measured['wall_seconds']:.1f}s wall, "
        f"{measured['overruns']} overruns)"
    )
    print(
        f"  fleet -> server: {wire['fleet']['datagrams_sent']} datagrams "
        f"({wire['server']['frames_decoded']} decoded, "
        f"{wire['server']['frames_corrupt']} corrupt, "
        f"{wire['server']['inbox_dropped']} inbox-dropped, "
        f"{wire['conservation']['kernel_dropped_data']} kernel-dropped)"
    )
    print(
        f"  primed {measured['primed']}/{sources}, "
        f"suspects {measured['suspects']}, "
        f"acks {wire['server']['datagrams_sent']}"
    )
    p50 = measured["query_p50_ms"]
    p99 = measured["query_p99_ms"]
    print(
        f"  queries: {measured['queries']} at "
        f"{measured['query_qps']:g}/s, "
        f"p50 {p50 if p50 is not None else '-'} ms, "
        f"p99 {p99 if p99 is not None else '-'} ms "
        f"(gate {config.query_p99_gate_ms:g} ms)"
    )
    for name in ("query_p99_ok", "conservation_ok", "primed_ok"):
        print(f"  gate {name}: {'pass' if gates[name] else 'FAIL'}")
    if args.out:
        print(f"summary written to {args.out}")
    if args.bench_out:
        print(f"bench snapshot written to {args.bench_out}")
    return 0 if gates["ok"] else 1


def _run_wire_chaos(
    args: argparse.Namespace, config, run_chaos
) -> int:
    """The ``repro wire --chaos`` branch: seeded hostility, hard gates."""
    summary = run_chaos(
        config,
        out=args.out,
        report_out=args.chaos_report,
        bench_out=args.bench_out,
    )
    measured = summary["measured"]
    wire = summary["wire"]
    chaos = summary["chaos"]
    gates = summary["gates"]
    print(
        f"wire chaos: {config.sources} sources, "
        f"{measured['ticks']} ticks x {config.tick_seconds:g}s "
        f"({measured['wall_seconds']:.1f}s wall, seed {config.seed})"
    )
    data = chaos["data_shaper"]
    print(
        f"  data shaper: {data.get('offered', 0)} offered, "
        f"{data.get('dropped', 0)} dropped, "
        f"{data.get('partition_dropped', 0)} partitioned, "
        f"{data.get('corrupted', 0)} corrupted, "
        f"{data.get('duplicated', 0)} duplicated, "
        f"{data.get('reordered', 0)} reordered, "
        f"{data.get('delayed', 0)} delayed"
    )
    rejections = wire["rejections"]
    rejected = ", ".join(
        f"{reason}={count}" for reason, count in rejections.items()
    )
    print(
        f"  fuzz: {chaos['fuzz_datagrams']} datagrams + "
        f"{chaos['fuzz_lines']} lines; poison ledger: "
        f"{rejected if rejected else 'empty'}"
    )
    drill = chaos["drill"]
    if drill:
        print(
            f"  drill: drained at tick {drill.get('drain_tick')}, "
            f"restarted, bit_identical={drill.get('bit_identical')}, "
            f"acked_updates_lost={drill.get('acked_updates_lost')}"
        )
    p99 = measured["query_p99_ms"]
    print(
        f"  primed {measured['primed']}/{config.sources}, "
        f"queries {measured['queries']}, "
        f"p99 {p99 if p99 is not None else '-'} ms "
        f"(gate {config.query_p99_gate_ms:g} ms)"
    )
    for name in sorted(gates):
        if name == "ok":
            continue
        print(f"  gate {name}: {'pass' if gates[name] else 'FAIL'}")
    if args.out:
        print(f"summary written to {args.out}")
    if args.chaos_report:
        print(f"chaos report written to {args.chaos_report}")
    if args.bench_out:
        print(f"bench snapshot written to {args.bench_out}")
    return 0 if gates["ok"] else 1


#: Bench gauges gated by ``repro benchdiff``; regression direction per name.
_BENCH_LOWER_IS_BETTER = (
    "engine_run_seconds",
    "engine_us_per_reading",
    "fed_run_seconds",
    "fed_answer_us",
    "surge_shed_error",
    "surge_inbox_drops",
    "surge_settle_ticks",
    "wire_query_p99_ms",
    "wire_query_p50_ms",
    "wire_tick_overruns",
    "wire_chaos_query_p99_ms",
)
_BENCH_HIGHER_IS_BETTER = ("batch_speedup_x", "wire_chaos_primed_pct")


def _run_benchdiff(args: argparse.Namespace) -> int:
    """Gate a fresh bench snapshot against a committed baseline."""
    from repro.obs import load_snapshot

    if not 0.0 < args.max_regression:
        raise ConfigurationError("--max-regression must be positive")

    def throughput_gauges(path: str) -> dict[tuple, float]:
        snapshot = load_snapshot(path)
        gauges: dict[tuple, float] = {}
        for row in snapshot["gauges"]:
            name = row["name"]
            if (
                name in _BENCH_LOWER_IS_BETTER
                or name in _BENCH_HIGHER_IS_BETTER
            ):
                key = (name, tuple(sorted(row["labels"].items())))
                gauges[key] = float(row["value"])
        return gauges

    baseline = throughput_gauges(args.baseline)
    fresh = throughput_gauges(args.fresh)
    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        print(
            "error: the snapshots share no throughput gauges "
            f"({args.baseline} has {len(baseline)}, "
            f"{args.fresh} has {len(fresh)})",
            file=sys.stderr,
        )
        return 1
    only_baseline = sorted(set(baseline) - set(fresh))
    for name, labels in only_baseline:
        label_text = ",".join(f"{k}={v}" for k, v in labels)
        print(f"note: {name}{{{label_text}}} absent from the fresh run")

    regressions: list[str] = []
    for key in shared:
        name, labels = key
        base, new = baseline[key], fresh[key]
        if base <= 0:
            continue
        if name in _BENCH_LOWER_IS_BETTER:
            change = (new - base) / base
        else:
            change = (base - new) / base
        label_text = ",".join(f"{k}={v}" for k, v in labels)
        verdict = "REGRESSED" if change > args.max_regression else "ok"
        print(
            f"{name}{{{label_text}}}: baseline {base:.4g} -> {new:.4g} "
            f"({change:+.1%} worse) {verdict}"
        )
        if change > args.max_regression:
            regressions.append(f"{name}{{{label_text}}}")
    if regressions:
        print(
            f"FAIL: {len(regressions)} gauge(s) regressed beyond "
            f"{args.max_regression:.0%}: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: {len(shared)} shared throughput gauges within "
        f"{args.max_regression:.0%} of baseline"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command in _EXPERIMENTS:
        _EXPERIMENTS[args.command]()
        return 0
    try:
        if args.command == "obs":
            return _run_obs(args)
        if args.command == "slo":
            return _run_slo(args)
        if args.command == "benchdiff":
            return _run_benchdiff(args)
        if args.command == "chaos":
            if args.surge:
                return _run_chaos_surge(args)
            if args.federation:
                return _run_chaos_federation(args)
            return _run_chaos(args)
        if args.command == "scale":
            return _run_scale(args)
        if args.command == "wire":
            return _run_wire(args)
        return _run_compare(args)
    except (ConfigurationError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
