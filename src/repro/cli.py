"""Command-line interface: ``python -m repro <command>``.

Exposes the experiment harness and a configurable one-shot comparison so
the paper's results can be regenerated, and new streams scored, without
writing code::

    python -m repro example1             # Figures 3-5
    python -m repro example2             # Figures 6-8
    python -m repro example3             # Figures 9-12
    python -m repro table1               # Table 1 proxy matrix
    python -m repro compare --dataset moving-object --delta 3
    python -m repro compare --csv trace.csv --model linear --delta 1.5
    python -m repro obs --record snap.json --events run.jsonl
    python -m repro obs snap.json          # replay as ASCII dashboard
    python -m repro obs snap.json --check  # schema validation only
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.baselines.caching import CachedValueScheme
from repro.datasets import (
    http_traffic_dataset,
    moving_object_dataset,
    power_load_dataset,
)
from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.errors import ConfigurationError
from repro.experiments import example1, example2, example3, table1
from repro.filters.models import constant_model, linear_model, sinusoidal_model
from repro.metrics.compare import format_results
from repro.metrics.evaluation import evaluate_scheme
from repro.streams.base import MaterializedStream
from repro.streams.replay import load_stream_csv

__all__ = ["main", "build_parser"]

_DATASETS = {
    "moving-object": moving_object_dataset,
    "power-load": power_load_dataset,
    "http-traffic": http_traffic_dataset,
}

_EXPERIMENTS = {
    "example1": example1.main,
    "example2": example2.main,
    "example3": example3.main,
    "table1": table1.main,
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing and docs generation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dual Kalman Filter stream resource management "
        "(SIGMOD 2004 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in _EXPERIMENTS:
        sub.add_parser(name, help=f"regenerate the {name} figure series")

    compare = sub.add_parser(
        "compare", help="score DKF variants and caching on one stream"
    )
    source = compare.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--dataset", choices=sorted(_DATASETS), help="built-in dataset"
    )
    source.add_argument("--csv", help="CSV trace saved by save_stream_csv")
    compare.add_argument(
        "--delta", type=float, default=3.0, help="precision width (default 3)"
    )
    compare.add_argument(
        "--model",
        choices=["constant", "linear", "sinusoidal", "all"],
        default="all",
        help="which DKF model to run (default: all applicable)",
    )
    compare.add_argument(
        "--smoothing-f",
        type=float,
        default=None,
        help="optional smoothing factor F for KF_c",
    )
    compare.add_argument(
        "--limit", type=int, default=None, help="truncate the stream"
    )
    compare.add_argument(
        "--omega",
        type=float,
        default=example2.OMEGA,
        help="sinusoidal model angular frequency",
    )

    obs = sub.add_parser(
        "obs", help="record or replay a telemetry snapshot dashboard"
    )
    obs.add_argument(
        "snapshot",
        nargs="?",
        help="snapshot JSON to replay (omit with --record)",
    )
    obs.add_argument(
        "--record",
        metavar="PATH",
        help="run a seeded burst-loss demo with telemetry and write the "
        "snapshot here",
    )
    obs.add_argument(
        "--events",
        metavar="PATH",
        help="with --record: also write the JSONL event log here",
    )
    obs.add_argument(
        "--check",
        action="store_true",
        help="validate the snapshot against the schema and exit",
    )
    obs.add_argument(
        "--ticks", type=int, default=300, help="demo run length (--record)"
    )
    return parser


def _load_stream(args: argparse.Namespace) -> MaterializedStream:
    if args.dataset:
        stream = _DATASETS[args.dataset]()
    else:
        stream = load_stream_csv(args.csv)
    if args.limit is not None:
        stream = stream.head(args.limit)
    return stream


def _models_for(args: argparse.Namespace, dims: int):
    choices = {
        "constant": lambda: constant_model(dims=dims),
        "linear": lambda: linear_model(dims=dims, dt=1.0),
    }
    if dims == 1:
        choices["sinusoidal"] = lambda: sinusoidal_model(
            omega=args.omega, theta=0.0
        )
    if args.model == "all":
        return [(name, build()) for name, build in choices.items()]
    if args.model not in choices:
        raise ConfigurationError(
            f"model {args.model!r} is not applicable to a {dims}-d stream"
        )
    return [(args.model, choices[args.model]())]


def _run_compare(args: argparse.Namespace) -> int:
    stream = _load_stream(args)
    if not len(stream):
        print("stream is empty", file=sys.stderr)
        return 1
    dims = stream.dim
    results = [
        evaluate_scheme(
            CachedValueScheme.from_precision(args.delta, dims=dims), stream
        )
    ]
    for name, model in _models_for(args, dims):
        config = DKFConfig(
            model=model,
            delta=args.delta,
            smoothing_f=args.smoothing_f,
            label=f"dkf-{name}",
        )
        results.append(evaluate_scheme(DKFSession(config), stream))
    print(format_results(results))
    return 0


def _record_demo(args: argparse.Namespace) -> dict:
    """Run the seeded burst-loss demo with telemetry and export artifacts."""
    import numpy as np

    from repro.dkf.config import TransportPolicy
    from repro.dsms.engine import StreamEngine
    from repro.dsms.faults import FaultSchedule
    from repro.dsms.query import ContinuousQuery
    from repro.obs import JsonlEventWriter, Telemetry, write_snapshot
    from repro.streams.base import stream_from_values

    ticks = args.ticks
    telemetry = Telemetry()
    writer = None
    if args.events:
        writer = JsonlEventWriter(args.events)
        telemetry.bus.subscribe(writer)
    engine = StreamEngine(telemetry=telemetry)
    rng = np.random.default_rng(7)
    values = np.cumsum(rng.normal(0.0, 1.0, size=ticks))
    engine.add_source(
        "s0",
        linear_model(dims=1, dt=1.0),
        stream_from_values(values, name="demo"),
        transport=TransportPolicy(ack_timeout_ticks=4),
    )
    engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
    engine.inject_faults(
        FaultSchedule(seed=7)
        .burst_loss("s0", p_enter=0.05, p_exit=0.3)
        .corrupt("s0", rate=0.02)
    )
    engine.run()
    engine.settle()
    snapshot = engine.obs_snapshot(
        {"name": "obs-demo", "seed": 7, "demo_ticks": ticks}
    )
    write_snapshot(args.record, snapshot)
    if writer is not None:
        writer.close()
        print(f"wrote {writer.lines_written} events to {args.events}")
    print(f"wrote snapshot to {args.record}")
    return snapshot


def _run_obs(args: argparse.Namespace) -> int:
    from repro.obs import load_snapshot, render_dashboard, validate_snapshot

    if args.record is None and args.snapshot is None:
        print("error: need a snapshot path or --record", file=sys.stderr)
        return 1
    if args.record is not None:
        snapshot = _record_demo(args)
    else:
        snapshot = load_snapshot(args.snapshot)
    validate_snapshot(snapshot)
    if args.check:
        print("snapshot ok")
        return 0
    print(render_dashboard(snapshot))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command in _EXPERIMENTS:
        _EXPERIMENTS[args.command]()
        return 0
    try:
        if args.command == "obs":
            return _run_obs(args)
        return _run_compare(args)
    except (ConfigurationError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
