"""Shared sweep machinery for the experiment modules.

Each figure in the paper's evaluation is a sweep of one parameter
(precision width δ, smoothing factor F) over a fixed set of schemes on a
fixed dataset.  :func:`sweep` runs the cross product and fills a
:class:`~repro.metrics.compare.SweepTable` whose columns are scheme names
and whose rows are sweep values -- exactly the series the paper plots.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.metrics.compare import SweepTable
from repro.metrics.evaluation import evaluate_scheme
from repro.scheme import SuppressionScheme
from repro.streams.base import MaterializedStream

__all__ = ["SchemeFactory", "sweep"]

#: Builds a fresh scheme for one sweep value.
SchemeFactory = Callable[[float], SuppressionScheme]


def sweep(
    stream: MaterializedStream,
    factories: Sequence[tuple[str, SchemeFactory]],
    values: Sequence[float],
    parameter: str,
    metric: str = "update_percentage",
) -> SweepTable:
    """Run every scheme at every sweep value and collect one metric.

    Args:
        stream: The dataset to replay.
        factories: ``(column_name, factory)`` pairs; the factory receives
            the sweep value and returns a fresh scheme.
        values: The sweep values, in row order.
        parameter: Display name of the swept parameter.
        metric: :class:`~repro.metrics.evaluation.EvaluationResult`
            attribute to tabulate.

    Returns:
        A filled sweep table (column order matches ``factories``).
    """
    table = SweepTable(parameter=parameter, values=[], metric=metric)
    for value in values:
        row = []
        for name, factory in factories:
            scheme = factory(value)
            result = evaluate_scheme(scheme, stream)
            # Rename to the stable column label so rows always align even
            # though scheme display names embed the sweep value.
            row.append(
                type(result)(
                    scheme=name,
                    stream=result.stream,
                    readings=result.readings,
                    updates=result.updates,
                    update_fraction=result.update_fraction,
                    average_error=result.average_error,
                    max_error=result.max_error,
                    average_raw_error=result.average_raw_error,
                    payload_floats=result.payload_floats,
                )
            )
        table.add_row(value, row)
    return table
