"""Experiment harness: one module per paper example, each exposing
functions that regenerate the corresponding figures' data series, plus the
Table 1 quantitative proxy matrix.

Run any module directly for a text report::

    python -m repro.experiments.example1
    python -m repro.experiments.example2
    python -m repro.experiments.example3
    python -m repro.experiments.table1
"""

from repro.experiments import example1, example2, example3, table1
from repro.experiments.runner import sweep

__all__ = ["example1", "example2", "example3", "sweep", "table1"]
