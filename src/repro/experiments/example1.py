"""Example 1: tracking a moving object (paper Section 5.1, Figures 3-5).

Three schemes over the synthetic piecewise-linear trajectory:

* the cached-approximation baseline;
* the DKF with the *constant* model (Eq. 15) -- the paper's worst case,
  expected to match caching;
* the DKF with the *linear* (constant-velocity) model (Eq. 13/14) --
  expected to cut updates by roughly 75% at a moderate precision width
  (δ = 3) and to converge toward the others as δ grows.
"""

from __future__ import annotations

from repro.baselines.caching import CachedValueScheme
from repro.datasets.moving_object import SAMPLING_DT, moving_object_dataset
from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.experiments.runner import sweep
from repro.filters.models import constant_model, linear_model
from repro.metrics.compare import SweepTable, format_table
from repro.streams.base import MaterializedStream

__all__ = [
    "DELTAS",
    "dataset",
    "scheme_factories",
    "figure3_dataset",
    "figure4_updates",
    "figure5_error",
    "main",
]

#: Precision widths swept in Figures 4-5 (units of position).
DELTAS = [0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 30.0, 50.0]


def dataset(n: int = 4000, seed: int | None = None) -> MaterializedStream:
    """The Example 1 trajectory (Figure 3)."""
    kwargs = {"n": n}
    if seed is not None:
        kwargs["seed"] = seed
    return moving_object_dataset(**kwargs)


def scheme_factories():
    """The three schemes compared, keyed by figure legend name."""
    return [
        (
            "caching",
            lambda delta: CachedValueScheme.from_precision(delta, dims=2),
        ),
        (
            "dkf-constant",
            lambda delta: DKFSession(
                DKFConfig(model=constant_model(dims=2), delta=delta)
            ),
        ),
        (
            "dkf-linear",
            lambda delta: DKFSession(
                DKFConfig(
                    model=linear_model(dims=2, dt=SAMPLING_DT), delta=delta
                )
            ),
        ),
    ]


def figure3_dataset(n: int = 4000) -> dict[str, float | int | str]:
    """Summary statistics of the Figure 3 dataset."""
    return dataset(n).summary()


def figure4_updates(n: int = 4000, deltas=None) -> SweepTable:
    """Figure 4: percentage of updates received at the server vs δ."""
    return sweep(
        dataset(n),
        scheme_factories(),
        deltas or DELTAS,
        parameter="delta",
        metric="update_percentage",
    )


def figure5_error(n: int = 4000, deltas=None) -> SweepTable:
    """Figure 5: average error value vs δ (error = |dx| + |dy|)."""
    return sweep(
        dataset(n),
        scheme_factories(),
        deltas or DELTAS,
        parameter="delta",
        metric="average_error",
    )


def main() -> None:
    """Print the Example 1 figure series (tables + ASCII charts)."""
    from repro.metrics.ascii_plot import render_sweep_table, sparkline

    stream = dataset()
    print("Figure 3 (dataset):", figure3_dataset())
    print("  x:", sparkline(stream.component(0)))
    print("  y:", sparkline(stream.component(1)))
    print()
    fig4 = figure4_updates()
    print("Figure 4: % updates vs precision width")
    print(format_table(fig4))
    print(render_sweep_table(fig4))
    print()
    fig5 = figure5_error()
    print("Figure 5: average error vs precision width")
    print(format_table(fig5))
    print(render_sweep_table(fig5))


if __name__ == "__main__":
    main()
