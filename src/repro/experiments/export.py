"""Export regenerated figure data to CSV.

Downstream users comparing against the paper (or against another
reproduction) want the raw series, not console text.  This module writes
one CSV per figure into an output directory, plus the three datasets as
traces loadable with :func:`repro.streams.replay.load_stream_csv`::

    python -m repro.experiments.export out/figures/
"""

from __future__ import annotations

import csv
import sys
from pathlib import Path

from repro.datasets import (
    http_traffic_dataset,
    moving_object_dataset,
    power_load_dataset,
)
from repro.experiments import example1, example2, example3, table1
from repro.metrics.compare import SweepTable
from repro.metrics.evaluation import EvaluationResult
from repro.streams.replay import save_stream_csv

__all__ = ["export_table", "export_results", "export_all"]


def export_table(table: SweepTable, path: str | Path) -> None:
    """Write a sweep table to CSV: parameter column + one column/scheme."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([table.parameter] + table.columns)
        for value, cells in zip(table.values, table.cells):
            writer.writerow([repr(float(value))] + [repr(float(c)) for c in cells])


def export_results(results: list[EvaluationResult], path: str | Path) -> None:
    """Write a flat result list (the Table 1 matrix) to CSV."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            [
                "scheme",
                "stream",
                "readings",
                "updates",
                "update_percentage",
                "average_error",
                "max_error",
            ]
        )
        for r in results:
            writer.writerow(
                [
                    r.scheme,
                    r.stream,
                    r.readings,
                    r.updates,
                    repr(r.update_percentage),
                    repr(r.average_error),
                    repr(r.max_error),
                ]
            )


def export_all(out_dir: str | Path, sizes: dict[str, int] | None = None) -> list[Path]:
    """Regenerate every figure/table and write its data under ``out_dir``.

    Args:
        out_dir: Output directory (created if missing).
        sizes: Optional per-dataset record-count overrides (tests shrink
            them; full sizes by default).

    Returns:
        The list of files written.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    sizes = sizes or {}
    n1 = sizes.get("moving-object", 4000)
    n2 = sizes.get("power-load", 5831)
    n3 = sizes.get("http-traffic", 4000)
    written: list[Path] = []

    def _write_table(table: SweepTable, name: str) -> None:
        path = out / name
        export_table(table, path)
        written.append(path)

    save_stream_csv(moving_object_dataset(n=n1), out / "fig03_dataset.csv")
    written.append(out / "fig03_dataset.csv")
    _write_table(example1.figure4_updates(n=n1), "fig04_updates.csv")
    _write_table(example1.figure5_error(n=n1), "fig05_error.csv")

    save_stream_csv(power_load_dataset(n=n2), out / "fig06_dataset.csv")
    written.append(out / "fig06_dataset.csv")
    _write_table(example2.figure7_updates(n=n2), "fig07_updates.csv")
    _write_table(example2.figure8_error(n=n2), "fig08_error.csv")

    save_stream_csv(http_traffic_dataset(n=n3), out / "fig09_dataset.csv")
    written.append(out / "fig09_dataset.csv")
    _write_table(example3.figure11_updates(n=n3), "fig11_updates.csv")
    _write_table(example3.figure12_smoothing_sweep(n=n3), "fig12_smoothing.csv")

    matrix_path = out / "table1_matrix.csv"
    export_results(
        table1.matrix(
            sizes={"moving-object": n1, "power-load": n2, "http-traffic": n3}
        ),
        matrix_path,
    )
    written.append(matrix_path)
    return written


def main(argv: list[str] | None = None) -> int:
    """CLI entry: export all figure data to the directory in argv[0]."""
    argv = sys.argv[1:] if argv is None else argv
    out_dir = argv[0] if argv else "figures-out"
    files = export_all(out_dir)
    for path in files:
        print(path)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
