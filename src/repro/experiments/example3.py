"""Example 3: network monitoring (paper Section 5.3, Figures 9-12).

The HTTP-traffic series is too noisy for raw prediction to help, so the
source smooths it with ``KF_c`` (smoothing factor ``F``) before the DKF
protocol runs.  Experiments:

* Figure 10 -- with a small ``F`` (1e-9) the KF-smoothed series matches the
  moving average, demonstrating that the KF subsumes the moving-average
  approach while remaining truly online (no window buffer).
* Figure 11 -- update percentage vs δ at ``F = 1e-7`` for caching,
  constant-model DKF and linear-model DKF, all operating on the smoothed
  stream; the linear model wins once smoothing exposes the local trend.
* Figure 12 -- update percentage vs ``F`` at fixed δ = 10: lowering ``F``
  reduces variation and thus updates.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.caching import CachedValueScheme
from repro.baselines.moving_average import moving_average_series
from repro.datasets.http_traffic import http_traffic_dataset
from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.filters.models import constant_model, linear_model
from repro.filters.smoothing import smooth_series
from repro.metrics.compare import SweepTable, format_table
from repro.metrics.evaluation import evaluate_scheme
from repro.streams.base import MaterializedStream, stream_from_values

__all__ = [
    "DELTAS",
    "SMOOTHING_FACTORS",
    "FIG11_F",
    "FIG12_DELTA",
    "MA_WINDOW",
    "dataset",
    "figure9_dataset",
    "figure10_smoothing",
    "figure11_updates",
    "figure12_smoothing_sweep",
    "main",
]

#: Precision widths swept in Figure 11 (packet-count units).  With
#: F = 1e-7 the smoothed stream drifts slowly, so the interesting regime
#: -- where the linear model's trend-following beats constant/caching --
#: sits at tight precisions.
DELTAS = [0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0]
#: Smoothing factors swept in Figure 12.
SMOOTHING_FACTORS = [1e-9, 1e-7, 1e-5, 1e-3, 1e-1]
#: Figure 11 runs at this smoothing factor (paper: F = 1e-7).
FIG11_F = 1e-7
#: Figure 12 runs at this precision width (paper: delta = 10).
FIG12_DELTA = 10.0
#: Window of the moving-average comparator in Figure 10.  A long window
#: matches the paper's description of the MA as nearly insensitive to
#: short spike runs; with it, KF smoothing at F <= 1e-7 coincides with the
#: MA while large F tracks the raw data.
MA_WINDOW = 1000


def dataset(n: int = 4000, seed: int | None = None) -> MaterializedStream:
    """The Example 3 HTTP packet-count series (Figure 9 stand-in)."""
    kwargs = {"n": n}
    if seed is not None:
        kwargs["seed"] = seed
    return http_traffic_dataset(**kwargs)


def figure9_dataset(n: int = 4000) -> dict[str, float | int | str]:
    """Summary statistics of the Figure 9 dataset."""
    return dataset(n).summary()


def figure10_smoothing(
    n: int = 4000, f: float = 1e-9, window: int = MA_WINDOW
) -> dict[str, np.ndarray | float]:
    """Figure 10: KF smoothing vs the moving-average approach.

    Returns the raw series, the KF-smoothed series, the moving average,
    and their root-mean-square distance over the post-warm-up region
    (both smoothers need ``window`` samples to settle).
    """
    raw = dataset(n).component(0)
    kf = smooth_series(raw, f=f)
    ma = moving_average_series(raw, window=window)
    settled = slice(window, None)
    rms = float(np.sqrt(np.mean((kf[settled] - ma[settled]) ** 2)))
    scale = float(raw.std())
    return {
        "raw": raw,
        "kf_smoothed": kf,
        "moving_average": ma,
        "rms_distance": rms,
        "rms_distance_relative": rms / scale if scale else 0.0,
    }


def _fig11_factories(f: float):
    return [
        ("caching", lambda delta: CachedValueScheme.from_precision(delta, dims=1)),
        (
            "dkf-constant",
            lambda delta: DKFSession(
                DKFConfig(model=constant_model(dims=1), delta=delta, smoothing_f=f)
            ),
        ),
        (
            "dkf-linear",
            lambda delta: DKFSession(
                DKFConfig(
                    model=linear_model(dims=1, dt=1.0), delta=delta, smoothing_f=f
                )
            ),
        ),
    ]


def smoothed_dataset(n: int = 4000, f: float = FIG11_F) -> MaterializedStream:
    """The Example 3 stream after ``KF_c`` smoothing (for the caching
    comparator, which has no smoothing filter of its own)."""
    raw = dataset(n)
    smoothed = smooth_series(raw.component(0), f=f)
    return stream_from_values(
        smoothed,
        name=f"{raw.name}[F={f:g}]",
        sampling_interval=raw.sampling_interval,
    )


def figure11_updates(n: int = 4000, f: float = FIG11_F, deltas=None) -> SweepTable:
    """Figure 11: update percentage vs δ on smoothed data (F = 1e-7).

    The caching baseline replays the pre-smoothed stream; the DKF sessions
    smooth at the source via ``KF_c`` -- both therefore operate on the
    identical value sequence, and only the prediction mechanism differs.
    """
    deltas = deltas or DELTAS
    raw = dataset(n)
    smoothed = smoothed_dataset(n, f)
    table = SweepTable(parameter="delta", values=[], metric="update_percentage")
    for delta in deltas:
        row = []
        caching = CachedValueScheme.from_precision(delta, dims=1)
        caching_result = evaluate_scheme(caching, smoothed)
        row.append(_relabel(caching_result, "caching"))
        for name, factory in _fig11_factories(f)[1:]:
            result = evaluate_scheme(factory(delta), raw)
            row.append(_relabel(result, name))
        table.add_row(delta, row)
    return table


def figure12_smoothing_sweep(
    n: int = 4000, delta: float = FIG12_DELTA, factors=None
) -> SweepTable:
    """Figure 12: update percentage vs F at fixed δ = 10."""
    factors = factors or SMOOTHING_FACTORS
    raw = dataset(n)
    table = SweepTable(parameter="F", values=[], metric="update_percentage")
    for f in factors:
        row = []
        for name, factory in _fig11_factories(f):
            if name == "caching":
                result = evaluate_scheme(
                    CachedValueScheme.from_precision(delta, dims=1),
                    smoothed_dataset(n, f),
                )
            else:
                result = evaluate_scheme(factory(delta), raw)
            row.append(_relabel(result, name))
        table.add_row(f, row)
    return table


def _relabel(result, name):
    return type(result)(
        scheme=name,
        stream=result.stream,
        readings=result.readings,
        updates=result.updates,
        update_fraction=result.update_fraction,
        average_error=result.average_error,
        max_error=result.max_error,
        average_raw_error=result.average_raw_error,
        payload_floats=result.payload_floats,
    )


def main() -> None:
    """Print the Example 3 figure series (tables + ASCII charts)."""
    from repro.metrics.ascii_plot import render_sweep_table, sparkline

    print("Figure 9 (dataset):", figure9_dataset())
    print("  counts:", sparkline(dataset().component(0)))
    print()
    fig10 = figure10_smoothing()
    print(
        "Figure 10: KF(F=1e-9) vs moving average -- relative RMS distance "
        f"{fig10['rms_distance_relative']:.4f}"
    )
    print("  raw     :", sparkline(fig10["raw"]))
    print("  KF      :", sparkline(fig10["kf_smoothed"]))
    print("  mov.avg :", sparkline(fig10["moving_average"]))
    print()
    fig11 = figure11_updates()
    print("Figure 11: % updates vs precision width (F = 1e-7)")
    print(format_table(fig11))
    print(render_sweep_table(fig11))
    print()
    fig12 = figure12_smoothing_sweep()
    print("Figure 12: % updates vs smoothing factor (delta = 10)")
    print(format_table(fig12))
    print(render_sweep_table(fig12, log_x=True))


if __name__ == "__main__":
    main()
