"""Table 1 quantitative proxy: the full scheme x dataset matrix.

The paper's Table 1 is a qualitative comparison against STREAM (cached
approximation), AURORA (load shedding) and COUGAR (in-network
aggregation).  As a quantitative stand-in we run every implemented
suppression scheme -- static caching (the STREAM-style comparator),
adaptive-bound caching, constant/linear/sinusoidal DKF, and smoothed DKF --
over all three datasets at each dataset's reference precision, reporting
update percentage and average error.  The matrix substantiates the table's
central claim: the prediction-based scheme transmits the least on every
workload, and degrades gracefully on the noisy one.
"""

from __future__ import annotations

from repro.baselines.adaptive_bounds import AdaptiveBoundScheme
from repro.baselines.caching import CachedValueScheme
from repro.datasets.http_traffic import http_traffic_dataset
from repro.datasets.moving_object import SAMPLING_DT, moving_object_dataset
from repro.datasets.power_load import power_load_dataset
from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.experiments.example2 import OMEGA, THETA
from repro.filters.models import constant_model, linear_model, sinusoidal_model
from repro.metrics.compare import format_results
from repro.metrics.evaluation import EvaluationResult, evaluate_scheme

__all__ = ["REFERENCE_DELTAS", "matrix", "main"]

#: Reference precision width per dataset (moderate regime of each figure).
REFERENCE_DELTAS = {
    "moving-object": 3.0,
    "power-load": 50.0,
    "http-traffic": 10.0,
}


def _schemes_for(dataset_name: str, delta: float):
    """All schemes applicable to one dataset, in presentation order."""
    if dataset_name == "moving-object":
        dims = 2
        models = [
            ("dkf-constant", constant_model(dims=2)),
            ("dkf-linear", linear_model(dims=2, dt=SAMPLING_DT)),
        ]
        smoothing = None
    elif dataset_name == "power-load":
        dims = 1
        models = [
            ("dkf-constant", constant_model(dims=1)),
            ("dkf-linear", linear_model(dims=1, dt=1.0)),
            ("dkf-sinusoidal", sinusoidal_model(omega=OMEGA, theta=THETA)),
        ]
        smoothing = None
    else:  # http-traffic
        dims = 1
        models = [
            ("dkf-constant", constant_model(dims=1)),
            ("dkf-linear", linear_model(dims=1, dt=1.0)),
        ]
        smoothing = 1e-7

    schemes = [
        ("caching", CachedValueScheme.from_precision(delta, dims=dims)),
        (
            "adaptive-caching",
            AdaptiveBoundScheme.from_precision(delta, dims=dims),
        ),
    ]
    for name, model in models:
        schemes.append(
            (name, DKFSession(DKFConfig(model=model, delta=delta)))
        )
    if smoothing is not None:
        schemes.append(
            (
                "dkf-linear+smoothing",
                DKFSession(
                    DKFConfig(
                        model=linear_model(dims=1, dt=1.0),
                        delta=delta,
                        smoothing_f=smoothing,
                    )
                ),
            )
        )
    return schemes


def matrix(sizes: dict[str, int] | None = None) -> list[EvaluationResult]:
    """Run the full scheme x dataset matrix.

    Args:
        sizes: Optional per-dataset record-count overrides (tests shrink
            them for speed).
    """
    sizes = sizes or {}
    datasets = [
        moving_object_dataset(n=sizes.get("moving-object", 4000)),
        power_load_dataset(n=sizes.get("power-load", 5831)),
        http_traffic_dataset(n=sizes.get("http-traffic", 4000)),
    ]
    results = []
    for stream in datasets:
        delta = REFERENCE_DELTAS[stream.name]
        for name, scheme in _schemes_for(stream.name, delta):
            result = evaluate_scheme(scheme, stream)
            results.append(
                EvaluationResult(
                    scheme=name,
                    stream=result.stream,
                    readings=result.readings,
                    updates=result.updates,
                    update_fraction=result.update_fraction,
                    average_error=result.average_error,
                    max_error=result.max_error,
                    average_raw_error=result.average_raw_error,
                    payload_floats=result.payload_floats,
                )
            )
    return results


def main() -> None:
    """Print the Table 1 proxy matrix."""
    print("Table 1 proxy: scheme x dataset update/error matrix")
    print(format_results(matrix()))


if __name__ == "__main__":
    main()
