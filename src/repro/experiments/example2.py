"""Example 2: monitoring average zonal electric load (paper Section 5.2,
Figures 6-8).

Three schemes over the (synthetic stand-in for the) hourly power-load
series:

* the cached-approximation baseline;
* the DKF with a 1-D *linear* model -- the generic choice when the
  stream's periodicity has not been analysed;
* the DKF with the *sinusoidal* model of Eq. 17, whose time-varying
  ``phi_k`` encodes the diurnal cycle.

The paper reports the sinusoidal model beating the linear one by roughly
10% and both beating caching, with robustness to imperfect parameters.
"""

from __future__ import annotations

import math

from repro.baselines.caching import CachedValueScheme
from repro.datasets.power_load import power_load_dataset
from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.experiments.runner import sweep
from repro.filters.models import linear_model, sinusoidal_model
from repro.metrics.compare import SweepTable, format_table
from repro.streams.base import MaterializedStream

__all__ = [
    "DELTAS",
    "OMEGA",
    "THETA",
    "dataset",
    "scheme_factories",
    "figure6_dataset",
    "figure7_updates",
    "figure8_error",
    "main",
]

#: Precision widths swept in Figures 7-8 (load units).
DELTAS = [10.0, 20.0, 30.0, 50.0, 75.0, 100.0, 150.0, 200.0]

#: Diurnal angular frequency on hourly samples (2π / 24 h).  The paper
#: reports ``omega = 18/pi``; on hourly data a diurnal cycle is 2π/24, and
#: our synthetic stand-in is built with that period, so we install the
#: matching value (the paper's robustness claim -- parameters need not be
#: exact -- is exercised separately in the ablation bench).
OMEGA = 2.0 * math.pi / 24.0
#: Phase aligning the model with the dataset's afternoon peak.
THETA = -8.0 * OMEGA


def dataset(n: int = 5831, seed: int | None = None) -> MaterializedStream:
    """The Example 2 hourly load series (Figure 6 stand-in)."""
    kwargs = {"n": n}
    if seed is not None:
        kwargs["seed"] = seed
    return power_load_dataset(**kwargs)


def scheme_factories(omega: float = OMEGA, theta: float = THETA):
    """The three schemes compared, keyed by figure legend name."""
    return [
        (
            "caching",
            lambda delta: CachedValueScheme.from_precision(delta, dims=1),
        ),
        (
            "dkf-linear",
            lambda delta: DKFSession(
                DKFConfig(model=linear_model(dims=1, dt=1.0), delta=delta)
            ),
        ),
        (
            "dkf-sinusoidal",
            lambda delta: DKFSession(
                DKFConfig(
                    model=sinusoidal_model(omega=omega, theta=theta),
                    delta=delta,
                )
            ),
        ),
    ]


def figure6_dataset(n: int = 5831) -> dict[str, float | int | str]:
    """Summary statistics of the Figure 6 dataset."""
    return dataset(n).summary()


def figure7_updates(n: int = 5831, deltas=None) -> SweepTable:
    """Figure 7: percentage of updates received at the server vs δ."""
    return sweep(
        dataset(n),
        scheme_factories(),
        deltas or DELTAS,
        parameter="delta",
        metric="update_percentage",
    )


def figure8_error(n: int = 5831, deltas=None) -> SweepTable:
    """Figure 8: average error value vs δ."""
    return sweep(
        dataset(n),
        scheme_factories(),
        deltas or DELTAS,
        parameter="delta",
        metric="average_error",
    )


def main() -> None:
    """Print the Example 2 figure series (tables + ASCII charts)."""
    from repro.metrics.ascii_plot import render_sweep_table, sparkline

    print("Figure 6 (dataset):", figure6_dataset())
    print("  load:", sparkline(dataset().component(0)))
    print()
    fig7 = figure7_updates()
    print("Figure 7: % updates vs precision width")
    print(format_table(fig7))
    print(render_sweep_table(fig7))
    print()
    fig8 = figure8_error()
    print("Figure 8: average error vs precision width")
    print(format_table(fig8))
    print(render_sweep_table(fig8))


if __name__ == "__main__":
    main()
