"""General-purpose synthetic stream generators.

The dataset modules in :mod:`repro.datasets` compose these primitives into
the paper's three experimental workloads.  Each generator is deterministic
given a seed, returns a :class:`~repro.streams.base.MaterializedStream`, and
documents which stream characteristic it exercises (trend, periodicity,
noise, burstiness).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.streams.base import MaterializedStream, stream_from_values

__all__ = [
    "piecewise_linear_trajectory",
    "sinusoidal_series",
    "random_walk_series",
    "bursty_count_series",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def piecewise_linear_trajectory(
    n: int,
    max_speed: float = 500.0,
    min_segment: int = 20,
    max_segment: int = 200,
    dt: float = 0.1,
    seed: int | np.random.Generator | None = None,
    start: tuple[float, float] = (0.0, 0.0),
) -> MaterializedStream:
    """2-D trajectory of an object moving along random line segments.

    This is the paper's Example 1 generator (Section 5.1): the object picks
    a random heading (uniform over the circle -- "the slope could
    arbitrarily change by any amount") and a random speed (uniform up to
    ``max_speed``), keeps them for a random number of samples, then picks
    again.  The stream exercises *strong local linear trends with abrupt
    changes* -- the regime where a constant-velocity KF should shine.

    Args:
        n: Number of samples.
        max_speed: Speed cap in units per second (paper: 500).
        min_segment: Minimum samples per linear segment.
        max_segment: Maximum samples per linear segment.
        dt: Sampling interval in seconds (paper: 100 ms).
        seed: Random seed or generator.
        start: Initial (x, y) position.

    Returns:
        Stream of 2-D positions.
    """
    if n < 1:
        raise ConfigurationError("n must be positive")
    if not 1 <= min_segment <= max_segment:
        raise ConfigurationError("need 1 <= min_segment <= max_segment")
    if max_speed <= 0:
        raise ConfigurationError("max_speed must be positive")
    rng = _rng(seed)
    pos = np.array(start, dtype=float)
    values = np.empty((n, 2))
    produced = 0
    while produced < n:
        heading = rng.uniform(0.0, 2.0 * np.pi)
        speed = rng.uniform(0.0, max_speed)
        seg_len = int(rng.integers(min_segment, max_segment + 1))
        velocity = speed * np.array([np.cos(heading), np.sin(heading)])
        for _ in range(min(seg_len, n - produced)):
            pos = pos + velocity * dt
            values[produced] = pos
            produced += 1
    return stream_from_values(
        values, name="piecewise-linear-trajectory", sampling_interval=dt
    )


def sinusoidal_series(
    n: int,
    period: float,
    amplitude: float = 1.0,
    mean: float = 0.0,
    phase: float = 0.0,
    noise_std: float = 0.0,
    drift_per_step: float = 0.0,
    sampling_interval: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> MaterializedStream:
    """Scalar series with a sinusoidal trend (the Example 2 shape).

    ``value_k = mean + drift*k + amplitude * sin(2 pi k / period + phase)
    + noise``.  Exercises *periodic trends* that a sinusoidal-model KF can
    exploit but a linear one cannot.

    Args:
        n: Number of samples.
        period: Period of the sinusoid, in samples.
        amplitude: Peak deviation from the mean.
        mean: Baseline level.
        phase: Phase offset in radians.
        noise_std: Additive Gaussian noise standard deviation.
        drift_per_step: Slow linear drift added per sample.
        sampling_interval: Seconds between samples.
        seed: Random seed or generator.
    """
    if n < 1:
        raise ConfigurationError("n must be positive")
    if period <= 0:
        raise ConfigurationError("period must be positive")
    rng = _rng(seed)
    k = np.arange(n)
    values = (
        mean
        + drift_per_step * k
        + amplitude * np.sin(2.0 * np.pi * k / period + phase)
    )
    if noise_std > 0:
        values = values + rng.normal(0.0, noise_std, size=n)
    return stream_from_values(
        values, name="sinusoidal-series", sampling_interval=sampling_interval
    )


def random_walk_series(
    n: int,
    step_std: float = 1.0,
    start: float = 0.0,
    sampling_interval: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> MaterializedStream:
    """Scalar Gaussian random walk -- the textbook constant-model process.

    Exercises the case where the constant KF model is *correct*, used by
    tests to verify the constant model matches caching behaviour.
    """
    if n < 1:
        raise ConfigurationError("n must be positive")
    if step_std < 0:
        raise ConfigurationError("step_std must be non-negative")
    rng = _rng(seed)
    steps = rng.normal(0.0, step_std, size=n)
    values = start + np.cumsum(steps)
    return stream_from_values(
        values, name="random-walk", sampling_interval=sampling_interval
    )


def bursty_count_series(
    n: int,
    base_rate: float = 50.0,
    burst_rate: float = 400.0,
    burst_probability: float = 0.02,
    burst_min: int = 3,
    burst_max: int = 20,
    spike_probability: float = 0.005,
    spike_scale: float = 5.0,
    sampling_interval: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> MaterializedStream:
    """Bursty non-negative count series (the Example 3 / HTTP-traffic shape).

    A Poisson base process whose rate jumps to ``burst_rate`` during random
    bursts, with occasional multiplicative spikes on top.  Exercises *noisy
    data with no visually identifiable trend* -- the regime where smoothing
    (``KF_c``) is needed before prediction helps at all.

    Args:
        n: Number of samples.
        base_rate: Poisson rate outside bursts.
        burst_rate: Poisson rate during bursts.
        burst_probability: Per-sample probability of starting a burst.
        burst_min: Minimum burst length in samples.
        burst_max: Maximum burst length in samples.
        spike_probability: Per-sample probability of a multiplicative spike.
        spike_scale: Spike multiplier.
        sampling_interval: Seconds between samples.
        seed: Random seed or generator.
    """
    if n < 1:
        raise ConfigurationError("n must be positive")
    if base_rate <= 0 or burst_rate <= 0:
        raise ConfigurationError("rates must be positive")
    if not 1 <= burst_min <= burst_max:
        raise ConfigurationError("need 1 <= burst_min <= burst_max")
    rng = _rng(seed)
    values = np.empty(n)
    burst_remaining = 0
    for i in range(n):
        if burst_remaining == 0 and rng.random() < burst_probability:
            burst_remaining = int(rng.integers(burst_min, burst_max + 1))
        rate = burst_rate if burst_remaining > 0 else base_rate
        if burst_remaining > 0:
            burst_remaining -= 1
        count = float(rng.poisson(rate))
        if rng.random() < spike_probability:
            count *= spike_scale
        values[i] = count
    return stream_from_values(
        values, name="bursty-counts", sampling_interval=sampling_interval
    )
