"""Noise and fault injection for streams.

The paper stresses that streams are "possibly noisy" and that the DKF
degrades gracefully where caching schemes do not.  These helpers corrupt a
clean stream in controlled ways so tests and benchmarks can quantify that
claim: white Gaussian noise, sporadic spikes (sensor glitches), dropouts
(missing readings) and value freezes (stuck sensors).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.streams.base import MaterializedStream, StreamRecord

__all__ = [
    "add_gaussian_noise",
    "add_spikes",
    "drop_records",
    "freeze_sensor",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def add_gaussian_noise(
    stream: MaterializedStream,
    std: float,
    seed: int | np.random.Generator | None = None,
) -> MaterializedStream:
    """White Gaussian measurement noise of standard deviation ``std``.

    Models the ``v_k`` term of Eq. 4 on top of an otherwise clean stream.
    """
    if std < 0:
        raise ConfigurationError("std must be non-negative")
    rng = _rng(seed)
    values = stream.values()
    noisy = values + rng.normal(0.0, std, size=values.shape)
    records = [
        StreamRecord(k=r.k, timestamp=r.timestamp, value=noisy[i])
        for i, r in enumerate(stream)
    ]
    return MaterializedStream(
        records,
        name=f"{stream.name}+noise({std:g})",
        sampling_interval=stream.sampling_interval,
    )


def add_spikes(
    stream: MaterializedStream,
    rate: float,
    magnitude: float,
    seed: int | np.random.Generator | None = None,
) -> MaterializedStream:
    """Sporadic additive spikes: each record is hit with probability
    ``rate`` and shifted by ``+-magnitude`` on every component.

    Models transient sensor glitches -- the outliers the innovation monitor
    (Section 3.1, advantage 5) is supposed to flag.
    """
    if not 0 <= rate <= 1:
        raise ConfigurationError("rate must be in [0, 1]")
    rng = _rng(seed)
    records = []
    for r in stream:
        value = r.value
        if rng.random() < rate:
            signs = rng.choice([-1.0, 1.0], size=value.shape)
            value = value + signs * magnitude
        records.append(StreamRecord(k=r.k, timestamp=r.timestamp, value=value))
    return MaterializedStream(
        records,
        name=f"{stream.name}+spikes({rate:g},{magnitude:g})",
        sampling_interval=stream.sampling_interval,
    )


def drop_records(
    stream: MaterializedStream,
    rate: float,
    seed: int | np.random.Generator | None = None,
) -> MaterializedStream:
    """Remove each record independently with probability ``rate``.

    Models sensor dropouts / missed sampling instants.  Record indices and
    timestamps are preserved, so downstream code sees the gaps.
    """
    if not 0 <= rate < 1:
        raise ConfigurationError("rate must be in [0, 1)")
    rng = _rng(seed)
    kept = [r for r in stream if rng.random() >= rate]
    return MaterializedStream(
        kept,
        name=f"{stream.name}+drop({rate:g})",
        sampling_interval=stream.sampling_interval,
    )


def freeze_sensor(
    stream: MaterializedStream,
    start: int,
    length: int,
) -> MaterializedStream:
    """Stuck-at fault: records in ``[start, start+length)`` repeat the value
    at ``start``.

    Models a sensor that keeps reporting its last reading -- a failure mode
    that silently satisfies a caching scheme's precision bound while the
    real value walks away.
    """
    if start < 0 or length < 0:
        raise ConfigurationError("start and length must be non-negative")
    records = list(stream)
    if start < len(records) and length > 0:
        frozen_value = records[start].value
        end = min(len(records), start + length)
        for i in range(start, end):
            records[i] = StreamRecord(
                k=records[i].k,
                timestamp=records[i].timestamp,
                value=frozen_value,
            )
    return MaterializedStream(
        records,
        name=f"{stream.name}+freeze({start},{length})",
        sampling_interval=stream.sampling_interval,
    )
