"""Stream abstractions shared across the library.

A *stream* is an ordered sequence of :class:`StreamRecord` objects, each a
timestamped vector reading from one source.  Streams are plain iterables so
generators, lists and replayers all interoperate; :class:`MaterializedStream`
adds array views and slicing for the dataset and experiment code.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import DimensionError, StreamExhaustedError

__all__ = ["StreamRecord", "MaterializedStream", "stream_from_values"]


@dataclass(frozen=True)
class StreamRecord:
    """One timestamped reading from a streaming source.

    Attributes:
        k: Discrete sample index (0-based).
        timestamp: Wall-clock time of the reading, in seconds.
        value: Measurement vector (1-D float array; scalars stored as
            shape-(1,) arrays).
    """

    k: int
    timestamp: float
    value: np.ndarray

    def __post_init__(self) -> None:
        value = np.atleast_1d(np.asarray(self.value, dtype=float))
        if value.ndim != 1:
            raise DimensionError(f"record value must be 1-D, got {value.shape}")
        object.__setattr__(self, "value", value)

    @property
    def dim(self) -> int:
        """Dimensionality of the measurement vector."""
        return self.value.shape[0]

    def scalar(self) -> float:
        """The value as a scalar; raises for multi-dimensional records."""
        if self.value.shape != (1,):
            raise DimensionError(
                f"record is {self.value.shape[0]}-dimensional, not scalar"
            )
        return float(self.value[0])


class MaterializedStream(Sequence[StreamRecord]):
    """An in-memory stream with array views for analysis.

    Args:
        records: The full ordered record list.
        name: Human-readable identifier (shows up in experiment tables).
        sampling_interval: Nominal spacing between samples, in seconds.
    """

    def __init__(
        self,
        records: Iterable[StreamRecord],
        name: str = "stream",
        sampling_interval: float = 1.0,
    ) -> None:
        self._records = list(records)
        self._name = name
        self._interval = float(sampling_interval)
        if self._records:
            dims = {r.dim for r in self._records}
            if len(dims) != 1:
                raise DimensionError(
                    f"all records must share a dimension, got {dims}"
                )
            self._dim = dims.pop()
        else:
            self._dim = 0

    @property
    def name(self) -> str:
        """Human-readable stream identifier."""
        return self._name

    @property
    def dim(self) -> int:
        """Measurement dimensionality (0 for an empty stream)."""
        return self._dim

    @property
    def sampling_interval(self) -> float:
        """Nominal seconds between consecutive samples."""
        return self._interval

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[StreamRecord]:
        return iter(self._records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return MaterializedStream(
                self._records[index],
                name=self._name,
                sampling_interval=self._interval,
            )
        return self._records[index]

    def values(self) -> np.ndarray:
        """All measurement vectors stacked into shape ``(len, dim)``."""
        if not self._records:
            return np.empty((0, 0))
        return np.stack([r.value for r in self._records])

    def timestamps(self) -> np.ndarray:
        """All timestamps as a 1-D array."""
        return np.array([r.timestamp for r in self._records])

    def component(self, index: int) -> np.ndarray:
        """One measurement component across the whole stream."""
        if not 0 <= index < self._dim:
            raise DimensionError(
                f"component {index} out of range for dim {self._dim}"
            )
        return self.values()[:, index]

    def head(self, n: int) -> "MaterializedStream":
        """The first ``n`` records as a new stream."""
        return self[:n]

    def summary(self) -> dict[str, float | int | str]:
        """Quick descriptive statistics, used by dataset figure benches."""
        vals = self.values()
        out: dict[str, float | int | str] = {
            "name": self._name,
            "length": len(self),
            "dim": self._dim,
            "sampling_interval": self._interval,
        }
        if len(self):
            out["min"] = float(vals.min())
            out["max"] = float(vals.max())
            out["mean"] = float(vals.mean())
            out["std"] = float(vals.std())
        return out


def stream_from_values(
    values: np.ndarray,
    name: str = "stream",
    sampling_interval: float = 1.0,
    start_time: float = 0.0,
) -> MaterializedStream:
    """Build a :class:`MaterializedStream` from a value array.

    Args:
        values: Shape ``(n,)`` for scalar streams or ``(n, dim)``.
        name: Stream name.
        sampling_interval: Seconds between samples; timestamps are
            ``start_time + k * sampling_interval``.
        start_time: Timestamp of the first record.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim == 1:
        values = values[:, None]
    if values.ndim != 2:
        raise DimensionError(f"values must be 1-D or 2-D, got {values.shape}")
    records = [
        StreamRecord(k=k, timestamp=start_time + k * sampling_interval, value=row)
        for k, row in enumerate(values)
    ]
    return MaterializedStream(
        records, name=name, sampling_interval=sampling_interval
    )


class StreamCursor:
    """Single-pass cursor over a stream with explicit exhaustion errors.

    Useful where code wants pull-based access (the DSMS engine) rather than
    iteration.
    """

    def __init__(self, stream: Iterable[StreamRecord]) -> None:
        self._it = iter(stream)
        self._exhausted = False

    @property
    def exhausted(self) -> bool:
        """Whether the cursor has read past the final record."""
        return self._exhausted

    def next(self) -> StreamRecord:
        """The next record; raises :class:`StreamExhaustedError` at the end."""
        try:
            return next(self._it)
        except StopIteration:
            self._exhausted = True
            raise StreamExhaustedError("stream has no more records") from None


__all__.append("StreamCursor")
