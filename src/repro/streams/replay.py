"""Trace replay: feed a materialized stream through time-ordered delivery.

The DSMS engine consumes streams through a :class:`StreamReplayer`, which
supports subsampling (every ``stride``-th record, the "sampled at an
interval of 10 time-stamp units" preprocessing of Example 3), bounded
replay, and CSV round-tripping so externally captured traces can be used
in place of the synthetic stand-ins.
"""

from __future__ import annotations

import csv
from collections.abc import Iterator
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.streams.base import MaterializedStream, StreamRecord

__all__ = ["StreamReplayer", "subsample", "save_stream_csv", "load_stream_csv"]


def subsample(stream: MaterializedStream, stride: int) -> MaterializedStream:
    """Keep every ``stride``-th record, re-indexing ``k`` densely.

    This reproduces the paper's Example 3 preprocessing, where the raw DEC
    HTTP trace was aggregated and "sampled at an interval of 10 time-stamp
    units".
    """
    if stride < 1:
        raise ConfigurationError("stride must be >= 1")
    records = [
        StreamRecord(k=i, timestamp=r.timestamp, value=r.value)
        for i, r in enumerate(list(stream)[::stride])
    ]
    return MaterializedStream(
        records,
        name=f"{stream.name}/{stride}",
        sampling_interval=stream.sampling_interval * stride,
    )


class StreamReplayer:
    """Iterate a stream with optional offset, limit and stride.

    Args:
        stream: The source stream.
        offset: Records skipped at the start.
        limit: Maximum records yielded (None for all).
        stride: Yield every ``stride``-th record.
    """

    def __init__(
        self,
        stream: MaterializedStream,
        offset: int = 0,
        limit: int | None = None,
        stride: int = 1,
    ) -> None:
        if offset < 0:
            raise ConfigurationError("offset must be non-negative")
        if limit is not None and limit < 0:
            raise ConfigurationError("limit must be non-negative")
        if stride < 1:
            raise ConfigurationError("stride must be >= 1")
        self._stream = stream
        self._offset = offset
        self._limit = limit
        self._stride = stride

    def __iter__(self) -> Iterator[StreamRecord]:
        count = 0
        records = list(self._stream)[self._offset :: self._stride]
        for record in records:
            if self._limit is not None and count >= self._limit:
                return
            yield record
            count += 1

    def materialize(self) -> MaterializedStream:
        """Run the replay eagerly into a new stream."""
        return MaterializedStream(
            list(self),
            name=f"{self._stream.name}[replay]",
            sampling_interval=self._stream.sampling_interval * self._stride,
        )


def save_stream_csv(stream: MaterializedStream, path: str | Path) -> None:
    """Write a stream to CSV with columns ``k, timestamp, v0, v1, ...``."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["k", "timestamp"] + [f"v{i}" for i in range(stream.dim)]
        )
        for r in stream:
            writer.writerow(
                [r.k, repr(float(r.timestamp))]
                + [repr(float(v)) for v in r.value]
            )


def load_stream_csv(
    path: str | Path,
    name: str | None = None,
    sampling_interval: float = 1.0,
) -> MaterializedStream:
    """Load a stream saved by :func:`save_stream_csv`.

    Args:
        path: CSV file path.
        name: Stream name; defaults to the file stem.
        sampling_interval: Nominal sampling interval to attach.
    """
    path = Path(path)
    records = []
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        value_cols = len(header) - 2
        if value_cols < 1:
            raise ConfigurationError(f"{path} has no value columns")
        for row in reader:
            records.append(
                StreamRecord(
                    k=int(row[0]),
                    timestamp=float(row[1]),
                    value=np.array([float(v) for v in row[2:]]),
                )
            )
    return MaterializedStream(
        records,
        name=name or path.stem,
        sampling_interval=sampling_interval,
    )
