"""Stream substrate: typed records, materialized streams, synthetic
generators, noise/fault injection, and trace replay."""

from repro.streams.base import (
    MaterializedStream,
    StreamCursor,
    StreamRecord,
    stream_from_values,
)
from repro.streams.noise import (
    add_gaussian_noise,
    add_spikes,
    drop_records,
    freeze_sensor,
)
from repro.streams.replay import (
    StreamReplayer,
    load_stream_csv,
    save_stream_csv,
    subsample,
)
from repro.streams.synthetic import (
    bursty_count_series,
    piecewise_linear_trajectory,
    random_walk_series,
    sinusoidal_series,
)

__all__ = [
    "MaterializedStream",
    "StreamCursor",
    "StreamRecord",
    "StreamReplayer",
    "add_gaussian_noise",
    "add_spikes",
    "bursty_count_series",
    "drop_records",
    "freeze_sensor",
    "load_stream_csv",
    "piecewise_linear_trajectory",
    "random_walk_series",
    "save_stream_csv",
    "sinusoidal_series",
    "stream_from_values",
    "subsample",
]
