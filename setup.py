"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so the legacy editable
install path (``pip install -e . --no-use-pep517``) works in offline
environments that lack the ``wheel`` package required by PEP 660.
"""

from setuptools import setup

setup()
