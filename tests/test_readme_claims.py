"""Documentation regression: the README's quickstart numbers must hold.

The README promises "~95% of readings sent" for caching and "~24%" for
the linear DKF on the quickstart configuration; if a code change moves
those numbers materially, the docs must be updated -- this test makes the
drift loud.
"""

from repro import (
    CachedValueScheme,
    DKFConfig,
    DKFSession,
    evaluate_scheme,
    linear_model,
)
from repro.datasets import moving_object_dataset


def test_readme_quickstart_numbers():
    stream = moving_object_dataset()
    delta = 3.0
    caching = evaluate_scheme(
        CachedValueScheme.from_precision(delta, dims=2), stream
    )
    dkf = evaluate_scheme(
        DKFSession(DKFConfig(model=linear_model(dims=2, dt=0.1), delta=delta)),
        stream,
    )
    assert 90.0 <= caching.update_percentage <= 100.0  # "~95%"
    assert 18.0 <= dkf.update_percentage <= 30.0  # "~24%"
    saving = 1.0 - dkf.updates / caching.updates
    assert saving >= 0.70  # "~75% bandwidth saved"
