"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.streams.base import stream_from_values
from repro.streams.replay import save_stream_csv


class TestParser:
    def test_experiment_commands_exist(self):
        parser = build_parser()
        for name in ("example1", "example2", "example3", "table1"):
            args = parser.parse_args([name])
            assert args.command == name

    def test_compare_requires_a_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare"])

    def test_compare_dataset_and_csv_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compare", "--dataset", "power-load", "--csv", "x.csv"]
            )

    def test_compare_defaults(self):
        args = build_parser().parse_args(
            ["compare", "--dataset", "moving-object"]
        )
        assert args.delta == 3.0
        assert args.model == "all"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCompareCommand:
    def test_builtin_dataset(self, capsys):
        code = main(
            [
                "compare",
                "--dataset",
                "moving-object",
                "--delta",
                "3",
                "--limit",
                "300",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "caching" in out
        assert "dkf-linear" in out
        # 2-D stream: sinusoidal is skipped automatically under "all".
        assert "dkf-sinusoidal" not in out

    def test_scalar_dataset_includes_sinusoidal(self, capsys):
        code = main(
            [
                "compare",
                "--dataset",
                "power-load",
                "--delta",
                "50",
                "--limit",
                "400",
            ]
        )
        assert code == 0
        assert "dkf-sinusoidal" in capsys.readouterr().out

    def test_csv_trace(self, tmp_path, capsys):
        stream = stream_from_values(
            np.arange(100, dtype=float) * 2.0, name="ramp"
        )
        path = tmp_path / "trace.csv"
        save_stream_csv(stream, path)
        code = main(
            ["compare", "--csv", str(path), "--model", "linear", "--delta", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dkf-linear" in out

    def test_single_model_selection(self, capsys):
        code = main(
            [
                "compare",
                "--dataset",
                "http-traffic",
                "--model",
                "constant",
                "--limit",
                "300",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dkf-constant" in out
        assert "dkf-linear" not in out

    def test_smoothing_flag(self, capsys):
        code = main(
            [
                "compare",
                "--dataset",
                "http-traffic",
                "--model",
                "linear",
                "--smoothing-f",
                "1e-7",
                "--delta",
                "10",
                "--limit",
                "300",
            ]
        )
        assert code == 0

    def test_inapplicable_model_fails_cleanly(self, capsys):
        code = main(
            [
                "compare",
                "--dataset",
                "moving-object",
                "--model",
                "sinusoidal",
                "--limit",
                "100",
            ]
        )
        assert code == 1
        assert "not applicable" in capsys.readouterr().err

    def test_missing_csv_fails_cleanly(self, capsys):
        code = main(["compare", "--csv", "/nonexistent/trace.csv"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestObsCommand:
    def test_record_then_replay(self, tmp_path, capsys):
        snap = tmp_path / "snap.json"
        events = tmp_path / "run.jsonl"
        code = main(
            [
                "obs",
                "--record",
                str(snap),
                "--events",
                str(events),
                "--ticks",
                "120",
            ]
        )
        assert code == 0
        assert snap.exists() and events.exists()
        capsys.readouterr()
        code = main(["obs", str(snap)])
        assert code == 0
        out = capsys.readouterr().out
        assert "obs-demo" in out
        assert "-- counters --" in out
        assert "-- spans (by total wall-clock) --" in out

    def test_check_mode(self, tmp_path, capsys):
        snap = tmp_path / "snap.json"
        assert main(["obs", "--record", str(snap), "--ticks", "80"]) == 0
        capsys.readouterr()
        assert main(["obs", str(snap), "--check"]) == 0
        assert "snapshot ok" in capsys.readouterr().out

    def test_invalid_snapshot_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "wrong"}')
        code = main(["obs", str(bad), "--check"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_arguments_fail_cleanly(self, capsys):
        code = main(["obs"])
        assert code == 1
        assert "need a snapshot path" in capsys.readouterr().err


class TestModuleEntrypoints:
    def test_python_dash_m_repro(self):
        import subprocess
        import sys

        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "compare",
                "--dataset",
                "moving-object",
                "--model",
                "constant",
                "--limit",
                "100",
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "dkf-constant" in result.stdout

    def test_export_main_prints_files(self, tmp_path, capsys, monkeypatch):
        from repro.experiments import export

        original = export.export_all
        monkeypatch.setattr(
            export,
            "export_all",
            lambda out_dir: original(
                out_dir,
                sizes={
                    "moving-object": 150,
                    "power-load": 150,
                    "http-traffic": 150,
                },
            ),
        )
        code = export.main([str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig04_updates.csv" in out


class TestExperimentCommands:
    def test_table1_runs(self, capsys, monkeypatch):
        # Shrink the matrix for test speed.
        from repro.experiments import table1 as t1

        original = t1.matrix
        monkeypatch.setattr(
            t1,
            "matrix",
            lambda sizes=None: original(
                sizes={
                    "moving-object": 200,
                    "power-load": 200,
                    "http-traffic": 200,
                }
            ),
        )
        code = main(["table1"])
        assert code == 0
        assert "caching" in capsys.readouterr().out


class TestChaosCommand:
    def test_chaos_defaults_parse(self):
        args = build_parser().parse_args(["chaos"])
        assert args.ticks == 400
        assert args.crash_at == 225
        assert args.checkpoint_every == 50

    def test_chaos_drill_recovers_and_writes_artifacts(
        self, tmp_path, capsys
    ):
        import json

        out = tmp_path / "chaos"
        code = main(
            [
                "chaos",
                "--ticks", "160",
                "--crash-at", "70",
                "--recover-after", "5",
                "--checkpoint-every", "30",
                "--out", str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "recovered within" in printed
        report = json.loads((out / "report.json").read_text())
        assert report["recovery"]["restored_sources"] >= 1
        assert report["recovered_within_ticks"] is not None
        assert (out / "snapshot.json").exists()
        assert (out / "checkpoint" / "checkpoint.ckpt").exists()
        assert (out / "checkpoint" / "wal.jsonl").exists()

    def test_chaos_rejects_bad_crash_timing(self, tmp_path, capsys):
        code = main(
            [
                "chaos",
                "--ticks", "50",
                "--crash-at", "60",
                "--out", str(tmp_path / "x"),
            ]
        )
        assert code != 0
        assert "crash-at" in capsys.readouterr().err


class TestSloCommand:
    def test_demo_prints_report(self, capsys):
        code = main(["slo", "--demo", "--ticks", "150"])
        assert code == 0
        out = capsys.readouterr().out
        assert "=== SLO report ===" in out
        assert "delivery-ratio" in out
        assert "=== health watchers ===" in out

    def test_replay_from_snapshot(self, tmp_path, capsys):
        snap = tmp_path / "snap.json"
        assert main(["obs", "--record", str(snap), "--ticks", "120"]) == 0
        capsys.readouterr()
        code = main(["slo", str(snap)])
        assert code == 0
        assert "staleness-p99" in capsys.readouterr().out

    def test_strict_fails_when_an_alert_fired(self, capsys):
        # The burst-loss demo reliably trips the delivery-ratio alert.
        code = main(["slo", "--demo", "--ticks", "300", "--strict"])
        assert code == 1
        assert "at least one alert fired" in capsys.readouterr().err

    def test_missing_arguments_fail_cleanly(self, capsys):
        code = main(["slo"])
        assert code == 1
        assert "need a snapshot path" in capsys.readouterr().err


class TestTraceView:
    def test_trace_tree_from_recorded_events(self, tmp_path, capsys):
        snap = tmp_path / "snap.json"
        events = tmp_path / "run.jsonl"
        assert (
            main(
                [
                    "obs", "--record", str(snap),
                    "--events", str(events), "--ticks", "100",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["obs", "--events", str(events), "--trace", "all"]) == 0
        listing = capsys.readouterr().out
        first = listing.strip().splitlines()[0]
        assert "/" in first
        assert main(["obs", "--events", str(events), "--trace", first]) == 0
        tree = capsys.readouterr().out
        assert f"trace {first}" in tree
        assert "source.update" in tree

    def test_trace_without_events_fails_cleanly(self, capsys):
        code = main(["obs", "--trace", "s0/1"])
        assert code == 1
        assert "--events" in capsys.readouterr().err


class TestBenchdiffCommand:
    def write_bench(self, path, us_per_reading, speedup=10.0):
        import json

        from repro.obs import MetricsRegistry, build_snapshot

        reg = MetricsRegistry()
        reg.gauge(
            "engine_us_per_reading", {"sources": "64"}
        ).set(us_per_reading)
        reg.gauge("batch_speedup_x", {"sources": "64"}).set(speedup)
        path.write_text(json.dumps(build_snapshot(reg, meta={})))

    def test_within_budget_passes(self, tmp_path, capsys):
        base, fresh = tmp_path / "base.json", tmp_path / "fresh.json"
        self.write_bench(base, 100.0)
        self.write_bench(fresh, 110.0)
        code = main(["benchdiff", str(base), str(fresh)])
        assert code == 0
        assert "ok:" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path, capsys):
        base, fresh = tmp_path / "base.json", tmp_path / "fresh.json"
        self.write_bench(base, 100.0)
        self.write_bench(fresh, 160.0)
        code = main(["benchdiff", str(base), str(fresh)])
        assert code == 1
        err = capsys.readouterr().err
        assert "FAIL" in err and "engine_us_per_reading" in err

    def test_higher_is_better_direction(self, tmp_path, capsys):
        base, fresh = tmp_path / "base.json", tmp_path / "fresh.json"
        self.write_bench(base, 100.0, speedup=10.0)
        self.write_bench(fresh, 100.0, speedup=5.0)  # speedup halved
        code = main(["benchdiff", str(base), str(fresh)])
        assert code == 1
        assert "batch_speedup_x" in capsys.readouterr().err

    def test_no_shared_gauges_fails_cleanly(self, tmp_path, capsys):
        import json

        from repro.obs import MetricsRegistry, build_snapshot

        base, fresh = tmp_path / "base.json", tmp_path / "fresh.json"
        self.write_bench(base, 100.0)
        fresh.write_text(
            json.dumps(build_snapshot(MetricsRegistry(), meta={}))
        )
        code = main(["benchdiff", str(base), str(fresh)])
        assert code == 1
        assert "share no throughput gauges" in capsys.readouterr().err

    def test_committed_baselines_self_compare(self, capsys):
        from pathlib import Path

        baseline = str(
            Path(__file__).resolve().parents[1] / "BENCH_engine_scale.json"
        )
        code = main(["benchdiff", baseline, baseline])
        assert code == 0
        assert "within 25%" in capsys.readouterr().out
