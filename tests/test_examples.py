"""Smoke tests: every shipped example runs to completion.

The examples are documentation that executes; breaking one silently would
break the README's promises.  Each is run in-process via runpy with its
dataset sizes left at the defaults (they are all laptop-fast).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_all_expected_examples_present():
    assert {
        "quickstart.py",
        "vehicle_tracking.py",
        "power_grid_monitoring.py",
        "network_monitoring.py",
        "multi_source_dsms.py",
        "adaptive_sampling.py",
    } <= set(EXAMPLES)


def test_quickstart_reports_the_headline_saving(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "bandwidth saved" in out
