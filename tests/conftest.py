"""Shared fixtures: small deterministic datasets and common configs.

Dataset fixtures are session-scoped and deliberately smaller than the
paper's full sizes so the suite stays fast; the full-size runs live in
``benchmarks/``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.datasets import (
    http_traffic_dataset,
    moving_object_dataset,
    power_load_dataset,
)
from repro.dkf.config import DKFConfig
from repro.filters.models import constant_model, linear_model, sinusoidal_model
from repro.streams.base import stream_from_values


@pytest.fixture(scope="session")
def trajectory_small():
    """1000-point Example 1 trajectory."""
    return moving_object_dataset(n=1000)


@pytest.fixture(scope="session")
def power_load_small():
    """1500-point Example 2 load series."""
    return power_load_dataset(n=1500)


@pytest.fixture(scope="session")
def http_traffic_small():
    """1000-point Example 3 traffic series."""
    return http_traffic_dataset(n=1000)


@pytest.fixture
def linear_2d_config():
    """Linear 2-D DKF config at the paper's reference precision."""
    return DKFConfig(model=linear_model(dims=2, dt=0.1), delta=3.0)


@pytest.fixture
def constant_2d_config():
    return DKFConfig(model=constant_model(dims=2), delta=3.0)


@pytest.fixture
def sinusoidal_config():
    omega = 2 * math.pi / 24
    return DKFConfig(
        model=sinusoidal_model(omega=omega, theta=-8 * omega), delta=50.0
    )


@pytest.fixture
def ramp_stream():
    """A perfectly linear scalar ramp: the linear model's best case."""
    return stream_from_values(np.arange(200, dtype=float) * 2.0, name="ramp")


@pytest.fixture
def constant_stream():
    """A constant scalar stream: every scheme's best case."""
    return stream_from_values(np.full(200, 42.0), name="flat")
