"""Unit tests for the shared suppression-scheme interface."""

import numpy as np
import pytest

from repro.scheme import SchemeDecision, SuppressionScheme
from repro.streams.base import StreamRecord, stream_from_values


class CountingScheme(SuppressionScheme):
    """Minimal scheme used to exercise the ABC's concrete pieces."""

    def __init__(self):
        self.observed = 0

    @property
    def name(self):
        return "counting"

    def observe(self, record):
        self.observed += 1
        return SchemeDecision(
            k=record.k,
            sent=record.k == 0,
            server_value=record.value.copy(),
            source_value=record.value.copy(),
            raw_value=record.value.copy(),
        )

    def reset(self):
        self.observed = 0


class TestSchemeDecision:
    def test_defaults(self):
        decision = SchemeDecision(
            k=3,
            sent=False,
            server_value=np.array([1.0]),
            source_value=np.array([1.0]),
            raw_value=np.array([1.0]),
        )
        assert decision.payload_floats == 0
        assert decision.prediction_error is None

    def test_frozen(self):
        decision = SchemeDecision(
            k=0,
            sent=True,
            server_value=np.array([1.0]),
            source_value=np.array([1.0]),
            raw_value=np.array([1.0]),
        )
        with pytest.raises(AttributeError):
            decision.sent = False


class TestSuppressionScheme:
    def test_run_visits_every_record_in_order(self):
        scheme = CountingScheme()
        stream = stream_from_values(np.arange(7, dtype=float))
        decisions = scheme.run(stream)
        assert scheme.observed == 7
        assert [d.k for d in decisions] == list(range(7))

    def test_abstract_methods_required(self):
        with pytest.raises(TypeError):
            SuppressionScheme()  # abstract

    def test_run_on_iterables(self):
        """run() accepts any record iterable, not just streams."""
        scheme = CountingScheme()
        records = [
            StreamRecord(k=i, timestamp=float(i), value=float(i))
            for i in range(3)
        ]
        assert len(scheme.run(records)) == 3
