"""Unit tests for restart budgets, the bounded inbox and load shedding."""

import pytest

from repro.errors import ConfigurationError
from repro.resilience.supervisor import (
    BoundedInbox,
    OverloadController,
    OverloadPolicy,
    RestartPolicy,
    StreamSupervisor,
)


class TestRestartPolicy:
    def test_defaults_valid(self):
        RestartPolicy().validate()

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            RestartPolicy(max_restarts=0).validate()
        with pytest.raises(ConfigurationError):
            RestartPolicy(backoff_factor=0.5).validate()


class TestStreamSupervisor:
    def test_first_restart_granted_immediately(self):
        sup = StreamSupervisor(RestartPolicy())
        assert sup.request_restart("s0", tick=5) is True

    def test_backoff_defers_then_grants(self):
        sup = StreamSupervisor(
            RestartPolicy(base_backoff_ticks=4, backoff_factor=2.0)
        )
        assert sup.request_restart("s0", 0) is True
        # First grant charges the base backoff: 4 ticks of deferral.
        for tick in range(1, 4):
            assert sup.request_restart("s0", tick) is False
        assert sup.request_restart("s0", 4) is True

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RestartPolicy(
            max_restarts=10,
            window_ticks=10_000,
            base_backoff_ticks=4,
            backoff_factor=2.0,
            max_backoff_ticks=16,
        )
        sup = StreamSupervisor(policy)
        tick = 0
        gaps = []
        for _ in range(5):
            while not sup.request_restart("s0", tick):
                tick += 1
            gaps.append(tick)
            tick += 1
        deltas = [b - a for a, b in zip(gaps, gaps[1:])]
        # base=4: successive backoffs are 4, 8, 16, then capped at 16.
        assert deltas == [4, 8, 16, 16]

    def test_window_budget_denies_then_slides_open(self):
        policy = RestartPolicy(
            max_restarts=2,
            window_ticks=50,
            base_backoff_ticks=0,
            max_backoff_ticks=0,
        )
        sup = StreamSupervisor(policy)
        assert sup.request_restart("s0", 0)
        assert sup.request_restart("s0", 1)
        assert not sup.request_restart("s0", 2)  # budget exhausted
        assert not sup.request_restart("s0", 49)
        # Tick 50: the restart at tick 0 ages out of the window.
        assert sup.request_restart("s0", 50)

    def test_streams_metered_independently(self):
        policy = RestartPolicy(max_restarts=1, window_ticks=100)
        sup = StreamSupervisor(policy)
        assert sup.request_restart("a", 0)
        assert sup.request_restart("b", 0)
        assert not sup.request_restart("a", 10)

    def test_report_counts_grants_and_denials(self):
        sup = StreamSupervisor(RestartPolicy(base_backoff_ticks=8))
        sup.request_restart("s0", 0)
        sup.request_restart("s0", 1)
        report = sup.report()["s0"]
        assert report["granted"] == 1
        assert report["denied"] == 1


class TestBoundedInbox:
    def test_tail_drops_over_capacity(self):
        inbox = BoundedInbox(capacity=2)
        assert inbox.offer("a") and inbox.offer("b")
        assert inbox.offer("c") is False
        assert inbox.depth == 2
        assert inbox.dropped == 1
        assert inbox.accepted == 2

    def test_drain_preserves_fifo_order(self):
        inbox = BoundedInbox(capacity=8)
        for item in "abcd":
            inbox.offer(item)
        assert inbox.drain(3) == ["a", "b", "c"]
        assert inbox.drain(3) == ["d"]
        assert inbox.drain(3) == []

    def test_clear_counts_the_loss(self):
        inbox = BoundedInbox(capacity=8)
        inbox.offer("a")
        inbox.offer("b")
        assert inbox.clear() == 2
        assert inbox.depth == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            BoundedInbox(0)


class TestOverloadController:
    def make(self, **overrides):
        base = dict(
            inbox_capacity=100,
            drain_per_tick=10,
            high_watermark=0.5,
            low_watermark=0.1,
            widen_factor=2.0,
            max_widen=8.0,
            cooldown_ticks=1,
        )
        base.update(overrides)
        ctl = OverloadController(OverloadPolicy(**base))
        ctl.register("hi", priority=2, base_min_delta=1.0)
        ctl.register("mid", priority=1, base_min_delta=1.0)
        ctl.register("lo", priority=0, base_min_delta=2.0)
        return ctl

    def test_widens_lowest_priority_first(self):
        ctl = self.make()
        changes = ctl.step(tick=0, depth=80)
        assert changes == {"lo": 2.0}
        # Breadth before depth: the next rounds widen the fresh
        # streams (priority order) instead of re-doubling "lo" --
        # a first doubling sheds twice the traffic per unit of
        # charged error that a re-doubling does.
        assert ctl.step(tick=1, depth=80) == {"mid": 2.0}
        assert ctl.step(tick=2, depth=80) == {"hi": 2.0}
        # Whole fleet at scale 2: only now does "lo" deepen.
        assert ctl.step(tick=3, depth=80) == {"lo": 4.0}

    def test_escalates_to_next_priority_when_saturated(self):
        ctl = self.make(max_widen=2.0)
        assert ctl.step(0, 80) == {"lo": 2.0}
        assert ctl.step(1, 80) == {"mid": 2.0}
        assert ctl.step(2, 80) == {"hi": 2.0}
        # Everyone saturated: nothing left to widen.
        assert ctl.step(3, 80) == {}

    def test_restores_lifo_when_pressure_clears(self):
        ctl = self.make(max_widen=2.0)
        ctl.step(0, 80)  # widens lo
        ctl.step(1, 80)  # widens mid
        assert ctl.step(2, 5) == {"mid": 1.0}
        assert ctl.step(3, 5) == {"lo": 1.0}
        assert ctl.scale("lo") == 1.0 and ctl.scale("mid") == 1.0

    def test_cooldown_paces_adjustments(self):
        ctl = self.make(cooldown_ticks=5)
        assert ctl.step(0, 80) == {"lo": 2.0}
        for tick in range(1, 5):
            assert ctl.step(tick, 80) == {}
        assert ctl.step(5, 80) == {"mid": 2.0}

    def test_mid_band_pressure_changes_nothing(self):
        ctl = self.make()
        ctl.step(0, 80)
        # Between the watermarks: hold position.
        assert ctl.step(1, 30) == {}
        assert ctl.scale("lo") == 2.0

    def test_shed_error_account_is_exact(self):
        ctl = self.make()
        ctl.step(0, 80)  # lo -> scale 2.0, then charged for this tick
        ctl.step(1, 30)  # holding: charged again
        ctl.step(2, 30)
        report = ctl.report()["lo"]
        # Three widened ticks at (2.0 - 1.0) * base delta 2.0 each.
        assert report["widened_ticks"] == 3
        assert report["shed_error"] == pytest.approx(6.0)
        assert ctl.report()["hi"]["shed_error"] == 0.0

    def test_deregister_removes_from_stack(self):
        ctl = self.make(max_widen=2.0)
        ctl.step(0, 80)  # widens lo
        ctl.deregister("lo")
        assert ctl.scale("lo") == 1.0
        # Restore must not resurrect the departed stream.
        assert ctl.step(1, 5) == {}

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            OverloadPolicy(low_watermark=0.6, high_watermark=0.5).validate()
        with pytest.raises(ConfigurationError):
            OverloadPolicy(widen_factor=1.0).validate()
        with pytest.raises(ConfigurationError):
            OverloadPolicy(max_widen=1.5, widen_factor=2.0).validate()


class TestWidenOrderDeterminism:
    """Regression lock: widen/restore ordering under priority ties.

    The widen sequence must be a pure function of (scale, priority,
    stream id) -- never of registration order -- and restores must
    unwind LIFO within each widening round.
    """

    def make(self, ids, priorities=None):
        ctl = OverloadController(
            OverloadPolicy(
                inbox_capacity=100,
                drain_per_tick=10,
                high_watermark=0.5,
                low_watermark=0.1,
                widen_factor=2.0,
                max_widen=8.0,
                cooldown_ticks=1,
            )
        )
        for i, source_id in enumerate(ids):
            ctl.register(
                source_id,
                priority=0 if priorities is None else priorities[i],
                base_min_delta=1.0,
            )
        return ctl

    def test_priority_ties_break_by_stream_id(self):
        ctl = self.make(["zeta", "alpha", "mid"])
        assert ctl.step(0, 80) == {"alpha": 2.0}
        assert ctl.step(1, 80) == {"mid": 2.0}
        assert ctl.step(2, 80) == {"zeta": 2.0}

    def test_order_independent_of_registration(self):
        forward = self.make(["a", "b", "c"])
        backward = self.make(["c", "b", "a"])
        for tick in range(3):
            assert forward.step(tick, 80) == backward.step(tick, 80)

    def test_lifo_restore_within_priority(self):
        ctl = self.make(["a", "b", "c"])
        for tick in range(3):
            ctl.step(tick, 80)  # widens a, b, c in id order
        # Pressure clears: restore order is the exact reverse.
        assert ctl.step(3, 2) == {"c": 1.0}
        assert ctl.step(4, 2) == {"b": 1.0}
        assert ctl.step(5, 2) == {"a": 1.0}
        assert ctl.ledger()["balanced"]

    def test_breadth_across_priority_bands(self):
        # Low priority leads each round, but a band is never driven to
        # max widening while fresh streams idle at scale 1.
        ctl = self.make(["p0", "p1"], priorities=[0, 1])
        assert ctl.step(0, 80) == {"p0": 2.0}
        assert ctl.step(1, 80) == {"p1": 2.0}
        assert ctl.step(2, 80) == {"p0": 4.0}


class TestShedAccount:
    def make(self):
        ctl = OverloadController(
            OverloadPolicy(
                inbox_capacity=100,
                drain_per_tick=10,
                high_watermark=0.5,
                low_watermark=0.1,
                widen_factor=2.0,
                max_widen=8.0,
                cooldown_ticks=1,
            )
        )
        ctl.register("a", priority=0, base_min_delta=1.5)
        ctl.register("b", priority=1, base_min_delta=1.0)
        return ctl

    def test_charge_drop_bills_the_planned_worst_case(self):
        """An unplanned tail-drop voids the precision bound entirely,
        so it is charged at ``max_widen * base δ`` -- never cheaper
        than the worst planned widening."""
        ctl = self.make()
        ctl.charge_drop("a")
        ctl.charge_drop("a")
        ctl.charge_drop("b")
        ledger = ctl.ledger()
        assert ledger["dropped_updates"] == 3
        assert ledger["shed_error_total"] == pytest.approx(
            2 * 8.0 * 1.5 + 8.0 * 1.0
        )
        assert ctl.report()["a"]["dropped_updates"] == 2

    def test_charge_drop_unknown_stream_is_a_noop(self):
        ctl = self.make()
        ctl.charge_drop("ghost")
        assert ctl.ledger()["dropped_updates"] == 0

    def test_drops_do_not_unbalance_the_ledger(self):
        # The conservation invariant is about widen/restore steps;
        # drop charges add error but never leave anything widened.
        ctl = self.make()
        ctl.charge_drop("a")
        assert ctl.ledger()["balanced"]

    def test_planned_widen_charges_like_reactive(self):
        ctl = self.make()
        changes = ctl.plan_widen(0, 1)
        assert changes == {"a": 2.0}
        ctl.step(1, 30)  # mid-band: hold and charge the widened tick
        account = ctl.report()["a"]
        assert account["widened_ticks"] == 1
        assert account["shed_error"] == pytest.approx(1.5)

    def test_plan_restore_unwinds_lifo(self):
        ctl = self.make()
        ctl.plan_widen(0, 2)  # widens a then b
        assert ctl.plan_restore(1, 1) == {"b": 1.0}
        assert ctl.plan_restore(2, 1) == {"a": 1.0}
        assert ctl.ledger()["balanced"]
