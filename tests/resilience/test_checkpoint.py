"""Unit tests for the checkpoint store and write-ahead log."""

import json

import pytest

from repro.errors import CheckpointError
from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointStore,
    validate_checkpoint,
)


def snapshot(tick=10, clock=10):
    return {
        "schema": CHECKPOINT_SCHEMA,
        "tick": tick,
        "server_clock": clock,
        "sources": {
            "s0": {
                "expected_seq": 4,
                "k": 9,
                "last_contact": 8,
                "desynced": False,
                "answer": [1.5],
                "filter": {"x": [1.5], "p": [[0.25]], "k": 9},
            }
        },
        "meta": {"recoveries": 0},
    }


class TestValidation:
    def test_accepts_well_formed(self):
        validate_checkpoint(snapshot())

    def test_rejects_wrong_schema(self):
        bad = snapshot()
        bad["schema"] = "repro.ckpt-v999"
        with pytest.raises(CheckpointError):
            validate_checkpoint(bad)

    def test_rejects_missing_top_level_key(self):
        for key in ("schema", "tick", "server_clock", "sources"):
            bad = snapshot()
            del bad[key]
            with pytest.raises(CheckpointError):
                validate_checkpoint(bad)

    def test_rejects_malformed_source(self):
        bad = snapshot()
        del bad["sources"]["s0"]["expected_seq"]
        with pytest.raises(CheckpointError):
            validate_checkpoint(bad)
        bad = snapshot()
        del bad["sources"]["s0"]["filter"]["p"]
        with pytest.raises(CheckpointError):
            validate_checkpoint(bad)

    def test_unprimed_filter_may_be_null(self):
        ok = snapshot()
        ok["sources"]["s0"]["filter"] = None
        validate_checkpoint(ok)


class TestSnapshotRoundTrip:
    def test_save_load_round_trips(self, tmp_path):
        store = CheckpointStore(tmp_path)
        original = snapshot()
        size = store.save(original)
        assert size > 0
        assert store.load() == original

    def test_load_without_checkpoint_returns_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load() is None

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(snapshot())
        assert not (tmp_path / "checkpoint.ckpt.tmp").exists()
        assert store.checkpoint_path.exists()

    def test_newer_snapshot_replaces_older(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(snapshot(tick=10))
        store.save(snapshot(tick=20))
        assert store.load()["tick"] == 20

    def test_save_rejects_invalid_snapshot(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError):
            store.save({"schema": CHECKPOINT_SCHEMA})
        assert not store.checkpoint_path.exists()


class TestSnapshotCorruption:
    def test_flipped_payload_byte_fails_crc(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(snapshot())
        blob = bytearray(store.checkpoint_path.read_bytes())
        blob[20] ^= 0xFF
        store.checkpoint_path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="CRC"):
            store.load()

    def test_truncated_file_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(snapshot())
        blob = store.checkpoint_path.read_bytes()
        store.checkpoint_path.write_bytes(blob[:-6])
        with pytest.raises(CheckpointError, match="truncated"):
            store.load()

    def test_wrong_magic_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.checkpoint_path.write_bytes(b"NOTACKPT" + b"\x00" * 16)
        with pytest.raises(CheckpointError, match="framed"):
            store.load()


class TestWriteAheadLog:
    def test_append_and_read_back_in_order(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for seq in range(5):
            store.wal_append(
                {"kind": "update", "source_id": "s0", "seq": seq}
            )
        records = store.wal_records()
        assert [r["seq"] for r in records] == [0, 1, 2, 3, 4]

    def test_torn_tail_stops_replay_without_raising(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for seq in range(3):
            store.wal_append({"kind": "update", "seq": seq})
        store.close()
        # Simulate the process dying mid-append: a half-written line.
        with open(store.wal_path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "update", "seq": 3, "cr')
        assert [r["seq"] for r in store.wal_records()] == [0, 1, 2]

    def test_bit_flip_mid_log_discards_the_rest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for seq in range(4):
            store.wal_append({"kind": "update", "seq": seq})
        store.close()
        lines = store.wal_path.read_text().splitlines()
        corrupted = json.loads(lines[1])
        corrupted["seq"] = 99  # payload no longer matches its crc
        lines[1] = json.dumps(corrupted, sort_keys=True)
        store.wal_path.write_text("\n".join(lines) + "\n")
        # Everything from the corrupt record on is untrustworthy.
        assert [r["seq"] for r in store.wal_records()] == [0]

    def test_snapshot_truncates_the_wal(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.wal_append({"kind": "update", "seq": 0})
        store.save(snapshot())
        assert store.wal_records() == []
        # The WAL stays usable after truncation.
        store.wal_append({"kind": "update", "seq": 1})
        assert [r["seq"] for r in store.wal_records()] == [1]

    def test_missing_wal_reads_as_empty(self, tmp_path):
        assert CheckpointStore(tmp_path).wal_records() == []
