"""Unit tests for the divergence watchdog's battery and ladder."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.resilience.watchdog import (
    HEALTHY,
    QUARANTINED,
    REPRIMED,
    RESYNCING,
    DivergenceWatchdog,
    WatchdogPolicy,
)


def healthy_view():
    return {
        "x": np.array([1.0]),
        "p": np.array([[0.5]]),
        "nis_window": [0.4, 0.8, 1.1, 0.6],
        "staleness_ticks": 0,
    }


def fast_policy(**overrides):
    base = dict(escalation_grace_ticks=1, hysteresis_ticks=3)
    base.update(overrides)
    return WatchdogPolicy(**base)


class TestPolicyValidation:
    def test_rejects_bad_thresholds(self):
        with pytest.raises(ConfigurationError):
            WatchdogPolicy(nis_threshold=0.0).validate()
        with pytest.raises(ConfigurationError):
            WatchdogPolicy(staleness_limit=0).validate()
        with pytest.raises(ConfigurationError):
            WatchdogPolicy(hysteresis_ticks=0).validate()

    def test_defaults_are_valid(self):
        WatchdogPolicy().validate()


class TestFaultBattery:
    def check_faults(self, view, policy=None):
        dog = DivergenceWatchdog(policy or fast_policy())
        dog.register("s0")
        dog.check("s0", 0, view)
        return dog.report()["s0"]["faults"]

    def test_healthy_view_reports_no_faults(self):
        dog = DivergenceWatchdog(fast_policy())
        assert dog.check("s0", 0, healthy_view()) is None
        assert dog.status("s0") == HEALTHY

    def test_nan_state_trips(self):
        view = healthy_view()
        view["x"] = np.array([np.nan])
        assert "state_nonfinite" in self.check_faults(view)

    def test_nonfinite_covariance_trips(self):
        view = healthy_view()
        view["p"] = np.array([[np.inf]])
        assert "covariance_nonfinite" in self.check_faults(view)

    def test_asymmetric_covariance_trips(self):
        view = healthy_view()
        view["p"] = np.array([[1.0, 0.5], [0.0, 1.0]])
        view["x"] = np.array([0.0, 0.0])
        assert "covariance_asymmetric" in self.check_faults(view)

    def test_negative_eigenvalue_trips(self):
        view = healthy_view()
        # Symmetric but indefinite: eigenvalues 3 and -1.
        view["p"] = np.array([[1.0, 2.0], [2.0, 1.0]])
        view["x"] = np.array([0.0, 0.0])
        assert "covariance_not_psd" in self.check_faults(view)

    def test_trace_ceiling_trips(self):
        view = healthy_view()
        view["p"] = np.array([[2e6]])
        assert "covariance_trace_ceiling" in self.check_faults(view)

    def test_single_nis_spike_trips(self):
        view = healthy_view()
        view["nis_window"] = [0.5, 100.0]
        assert "nis_spike" in self.check_faults(view)

    def test_windowed_nis_runaway_trips(self):
        view = healthy_view()
        view["nis_window"] = [12.0, 15.0, 11.0, 14.0]
        assert "nis_runaway" in self.check_faults(view)

    def test_short_window_does_not_trip_runaway(self):
        view = healthy_view()
        # Above the mean threshold but below the hard limit, only three
        # samples: not enough evidence for the windowed check.
        view["nis_window"] = [12.0, 15.0, 11.0]
        assert self.check_faults(view) == []

    def test_staleness_trips(self):
        view = healthy_view()
        view["staleness_ticks"] = 60
        assert "stale" in self.check_faults(view)

    def test_reject_run_trips_and_acceptance_clears(self):
        dog = DivergenceWatchdog(fast_policy())
        for _ in range(3):
            dog.note_rejection("s0")
        dog.check("s0", 0, healthy_view())
        assert "rejected_readings" in dog.report()["s0"]["faults"]
        dog2 = DivergenceWatchdog(fast_policy())
        dog2.note_rejection("s0")
        dog2.note_rejection("s0")
        dog2.note_accepted("s0")
        dog2.note_rejection("s0")
        assert dog2.check("s0", 0, healthy_view()) is None


class TestEscalationLadder:
    def bad_view(self):
        view = healthy_view()
        view["x"] = np.array([np.nan])
        return view

    def test_ladder_walks_one_rung_per_grace_window(self):
        dog = DivergenceWatchdog(fast_policy(escalation_grace_ticks=2))
        assert dog.check("s0", 0, self.bad_view()) == "resync"
        assert dog.status("s0") == RESYNCING
        # Tick 1 is inside the grace window: no further escalation.
        assert dog.check("s0", 1, self.bad_view()) is None
        assert dog.check("s0", 2, self.bad_view()) == "reprime"
        assert dog.status("s0") == REPRIMED
        assert dog.check("s0", 4, self.bad_view()) == "quarantine"
        assert dog.is_quarantined("s0")
        # Top rung: nothing further to escalate to.
        assert dog.check("s0", 6, self.bad_view()) is None
        assert dog.status("s0") == QUARANTINED

    def test_hysteresis_exits_quarantine_after_clean_window(self):
        dog = DivergenceWatchdog(fast_policy(hysteresis_ticks=3))
        tick = 0
        while not dog.is_quarantined("s0"):
            dog.check("s0", tick, self.bad_view())
            tick += 1
        # Two clean checks are not enough; the third restores health.
        dog.check("s0", tick, healthy_view())
        dog.check("s0", tick + 1, healthy_view())
        assert dog.is_quarantined("s0")
        dog.check("s0", tick + 2, healthy_view())
        assert dog.status("s0") == HEALTHY

    def test_flapping_stream_cannot_exit(self):
        dog = DivergenceWatchdog(fast_policy(hysteresis_ticks=3))
        tick = 0
        while not dog.is_quarantined("s0"):
            dog.check("s0", tick, self.bad_view())
            tick += 1
        for _ in range(6):
            dog.check("s0", tick, healthy_view())
            tick += 1
            dog.check("s0", tick, self.bad_view())
            tick += 1
        assert dog.is_quarantined("s0")

    def test_recovery_resets_ladder_to_bottom(self):
        dog = DivergenceWatchdog(fast_policy(hysteresis_ticks=2))
        dog.check("s0", 0, self.bad_view())
        assert dog.status("s0") == RESYNCING
        dog.check("s0", 1, healthy_view())
        dog.check("s0", 2, healthy_view())
        assert dog.status("s0") == HEALTHY
        # A later trip starts from the first rung again.
        assert dog.check("s0", 10, self.bad_view()) == "resync"

    def test_deregister_forgets_state(self):
        dog = DivergenceWatchdog(fast_policy())
        dog.check("s0", 0, self.bad_view())
        dog.deregister("s0")
        assert dog.status("s0") == HEALTHY
        assert "s0" not in dog.report()
