"""Property-based invariants for resilient runs.

Two system-wide laws must survive any seeded combination of link faults,
sensor faults and a mid-run server crash/recovery:

* every primed server covariance stays symmetric and positive
  semi-definite at every tick (the watchdog checks this online; here we
  assert it offline with independent numerics);
* the PR 1 traffic conservation law -- ``offered == delivered + lost +
  corrupted + in_flight`` -- holds across the crash, the downtime and
  the recovery (a dead server *receives* messages in the fabric's
  ledger and then drops them; the books must still balance).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dkf.config import TransportPolicy
from repro.dsms.engine import StreamEngine
from repro.dsms.faults import FaultSchedule
from repro.dsms.network import LinkConfig
from repro.dsms.query import ContinuousQuery
from repro.filters.models import linear_model
from repro.resilience.config import ResilienceConfig
from repro.resilience.watchdog import WatchdogPolicy
from repro.streams.base import stream_from_values


def build_engine(seed, tmp_path, checkpoint_every=40, latency=0, n=220):
    rng = np.random.default_rng(seed)
    engine = StreamEngine(
        resilience=ResilienceConfig(
            checkpoint_dir=tmp_path / f"ckpt-{seed}",
            checkpoint_every=checkpoint_every,
            watchdog=WatchdogPolicy(),
        )
    )
    for index, source_id in enumerate(("a", "b")):
        engine.add_source(
            source_id,
            linear_model(dims=1, dt=1.0),
            stream_from_values(
                np.cumsum(rng.normal(0.0, 1.0 + index, size=n)),
                name=source_id,
            ),
            transport=TransportPolicy(ack_timeout_ticks=4),
            link=LinkConfig(latency_ticks=latency),
        )
        engine.submit_query(
            ContinuousQuery(source_id, delta=1.0, query_id=f"q-{source_id}")
        )
    return engine


def assert_covariances_healthy(engine):
    for source_id in engine.server.source_ids:
        if not engine.server.is_primed(source_id):
            continue
        p = np.asarray(engine.server.health_view(source_id)["p"])
        assert np.all(np.isfinite(p)), f"{source_id}: non-finite covariance"
        assert np.allclose(p, p.T, atol=1e-8), f"{source_id}: asymmetric"
        eigenvalues = np.linalg.eigvalsh(0.5 * (p + p.T))
        assert eigenvalues.min() >= -1e-9, f"{source_id}: not PSD"


def assert_traffic_conserved(engine):
    report = engine.report()
    delivered = sum(
        engine.fabric.stats_for(sid).delivered for sid in engine.sources
    )
    offered = report.updates_sent + report.retransmits + report.heartbeats
    assert offered == (
        delivered
        + report.messages_lost
        + report.corrupted
        + report.in_flight
    )


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    crash_at=st.integers(min_value=30, max_value=120),
    down_for=st.integers(min_value=1, max_value=20),
    loss=st.floats(min_value=0.0, max_value=0.1),
)
def test_invariants_across_crash_and_faults(
    seed, crash_at, down_for, loss, tmp_path_factory
):
    tmp_path = tmp_path_factory.mktemp("props")
    engine = build_engine(seed, tmp_path)
    engine.inject_faults(
        FaultSchedule(seed=seed)
        .burst_loss("a", p_enter=loss, p_exit=0.4)
        .sensor("b", "nan", start=crash_at + 5, duration=6)
        .corrupt("a", rate=loss / 2)
    )
    recover_at = crash_at + down_for
    for tick in range(200):
        if tick == crash_at:
            engine.crash_server()
        if tick == recover_at:
            engine.recover()
        engine.step()
        if not engine.server_down:
            assert_covariances_healthy(engine)
        assert_traffic_conserved(engine)
    engine.settle()
    assert_traffic_conserved(engine)
    assert engine.resilience_report()["recoveries"] == 1


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    latency=st.integers(min_value=0, max_value=3),
)
def test_conservation_with_latent_links_and_crash(
    seed, latency, tmp_path_factory
):
    # Latency keeps frames in flight across the crash boundary; the
    # ledger must count them exactly once wherever they land.
    tmp_path = tmp_path_factory.mktemp("latent")
    engine = build_engine(seed, tmp_path, latency=latency)
    for tick in range(150):
        if tick == 70:
            engine.crash_server()
        if tick == 80:
            engine.recover()
        engine.step()
        assert_traffic_conserved(engine)
    engine.settle()
    assert_traffic_conserved(engine)


@pytest.mark.parametrize("seed", [1, 17])
def test_long_run_covariances_stay_psd(seed, tmp_path):
    engine = build_engine(seed, tmp_path, n=400)
    engine.inject_faults(
        FaultSchedule(seed=seed)
        .sensor("a", "spike", start=90, duration=5, magnitude=200.0)
        .sensor("b", "stuck", start=150, duration=30)
    )
    for _ in range(380):
        engine.step()
        assert_covariances_healthy(engine)
