"""Engine-level crash/recovery, watchdog integration and byte-identity."""

import numpy as np
import pytest

from repro.dkf.config import TransportPolicy
from repro.dsms.engine import StreamEngine
from repro.dsms.faults import FaultSchedule
from repro.dsms.query import ContinuousQuery
from repro.errors import ConfigurationError
from repro.filters.models import linear_model
from repro.obs.telemetry import Telemetry
from repro.resilience.config import ResilienceConfig
from repro.resilience.watchdog import WatchdogPolicy
from repro.streams.base import stream_from_values


def walk(n=400, seed=11):
    rng = np.random.default_rng(seed)
    return stream_from_values(
        np.cumsum(rng.normal(0.0, 1.0, size=n)), name="walk"
    )


def build_engine(resilience=None, telemetry=None, n=400, faults=None):
    engine = StreamEngine(telemetry=telemetry, resilience=resilience)
    engine.add_source(
        "s0",
        linear_model(dims=1, dt=1.0),
        walk(n),
        transport=TransportPolicy(ack_timeout_ticks=4),
    )
    engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
    if faults is not None:
        engine.inject_faults(faults)
    return engine


class TestDisabledResilienceIsInert:
    def test_resilient_run_matches_plain_run_exactly(self, tmp_path):
        plain = build_engine()
        plain.run()
        plain.settle()
        config = ResilienceConfig(
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_every=50,
            watchdog=WatchdogPolicy(),
        )
        guarded = build_engine(resilience=config)
        guarded.run()
        guarded.settle()
        # The guards observe; they must not perturb a healthy run.
        assert plain.report() == guarded.report()
        assert plain.answer("q").value == guarded.answer("q").value

    def test_crash_requires_resilience(self):
        engine = build_engine()
        with pytest.raises(ConfigurationError):
            engine.crash_server()
        with pytest.raises(ConfigurationError):
            engine.recover()

    def test_checkpoint_requires_directory(self):
        engine = build_engine(resilience=ResilienceConfig())
        with pytest.raises(ConfigurationError):
            engine.checkpoint()


class TestCrashRecovery:
    def make(self, tmp_path, telemetry=None, checkpoint_every=50, n=400):
        config = ResilienceConfig(
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_every=checkpoint_every,
            watchdog=WatchdogPolicy(),
        )
        return build_engine(resilience=config, telemetry=telemetry, n=n)

    def test_replay_reconstructs_exact_pre_crash_state(self, tmp_path):
        engine = self.make(tmp_path)
        # Stop mid-checkpoint-interval so recovery must replay a WAL tail.
        engine.run(max_ticks=120)
        before = engine.server.export_source_state("s0")
        assert engine.checkpoint_store.wal_records(), "no WAL tail to replay"
        engine.crash_server()
        summary = engine.recover()
        assert summary["restored_sources"] == 1
        assert summary["wal_replayed"] > 0
        after = engine.server.export_source_state("s0")
        # Deterministic arithmetic: snapshot + replay is bit-identical.
        assert after == before

    def test_reconverges_within_delta_after_downtime(self, tmp_path):
        telemetry = Telemetry()
        engine = self.make(tmp_path, telemetry=telemetry)
        engine.run(max_ticks=120)
        engine.crash_server()
        for _ in range(10):  # sources keep sampling into a dead server
            engine.step()
        assert engine.answer("q").degraded
        engine.recover()
        truth = walk().values()[:, 0]
        recovered_within = None
        for extra in range(50):
            engine.step()
            answer = engine.answer("q")
            err = abs(answer.value[0] - truth[engine.ticks - 1])
            if err <= answer.precision + 1e-9:
                recovered_within = extra + 1
                break
        assert recovered_within is not None, "never re-converged"
        assert recovered_within <= 50
        names = telemetry.bus.counts()
        assert names.get("server.crash") == 1
        assert names.get("recovery.replay") == 1

    def test_recovery_event_carries_replay_and_resync_counts(self, tmp_path):
        telemetry = Telemetry()
        engine = self.make(tmp_path, telemetry=telemetry)
        engine.run(max_ticks=120)
        engine.crash_server()
        for _ in range(10):
            engine.step()
        summary = engine.recover()
        events = [
            e for e in telemetry.bus.events() if e.name == "recovery.replay"
        ]
        assert len(events) == 1
        fields = events[0].fields
        assert fields["wal_replayed"] == summary["wal_replayed"]
        assert fields["resync_requests"] == summary["resync_requests"]
        # Ten ticks of updates sent into a dead server.
        assert summary["dropped_while_down"] > 0
        # The advanced source sequence forces a healing resync.
        assert summary["resync_requests"] >= 1

    def test_periodic_checkpoints_written_by_run(self, tmp_path):
        telemetry = Telemetry()
        engine = self.make(tmp_path, telemetry=telemetry, checkpoint_every=25)
        engine.run(max_ticks=100)
        counts = telemetry.bus.counts()
        assert counts.get("checkpoint.write", 0) >= 3
        assert engine.checkpoint_store.load() is not None

    def test_double_crash_recovers_from_same_checkpoint(self, tmp_path):
        engine = self.make(tmp_path)
        engine.run(max_ticks=120)
        engine.crash_server()
        first = engine.recover()
        # Crash again before any new checkpoint: the same snapshot plus
        # the same (untruncated) WAL must restore again.
        engine.crash_server()
        second = engine.recover()
        assert second["restored_sources"] == 1
        assert second["wal_replayed"] >= first["wal_replayed"]

    def test_crash_is_idempotent(self, tmp_path):
        engine = self.make(tmp_path)
        engine.run(max_ticks=60)
        engine.crash_server()
        assert engine.crash_server() == 0
        assert engine.server_down

    def test_answers_survive_downtime_as_degraded_cache(self, tmp_path):
        engine = self.make(tmp_path)
        engine.run(max_ticks=60)
        value_before = engine.answer("q").value
        engine.crash_server()
        engine.step()
        answer = engine.answer("q")
        assert answer.degraded
        assert answer.value == value_before

    def test_resilience_report_counts_recoveries(self, tmp_path):
        engine = self.make(tmp_path)
        engine.run(max_ticks=60)
        engine.crash_server()
        engine.recover()
        report = engine.resilience_report()
        assert report["enabled"] is True
        assert report["recoveries"] == 1
        assert report["server_down"] is False


class TestWatchdogIntegration:
    def make(self, faults, policy=None, n=300):
        config = ResilienceConfig(
            watchdog=policy
            or WatchdogPolicy(
                escalation_grace_ticks=4, hysteresis_ticks=8
            ),
        )
        telemetry = Telemetry()
        engine = build_engine(
            resilience=config, telemetry=telemetry, n=n, faults=faults
        )
        return engine, telemetry

    def test_nan_fault_never_reaches_server_value(self):
        faults = FaultSchedule(seed=3).sensor(
            "s0", "nan", start=50, duration=20
        )
        engine, _ = self.make(faults)
        for _ in range(120):
            engine.step()
            if engine.server.is_primed("s0"):
                assert np.all(np.isfinite(engine.server.value("s0")))
        assert engine.sources["s0"].readings_rejected >= 20

    def test_spike_fault_trips_the_watchdog(self):
        faults = FaultSchedule(seed=3).sensor(
            "s0", "spike", start=60, duration=8, magnitude=500.0
        )
        engine, telemetry = self.make(faults)
        for _ in range(150):
            engine.step()
        counts = telemetry.bus.counts()
        assert counts.get("watchdog.trip", 0) >= 1
        trips = [
            e for e in telemetry.bus.events() if e.name == "watchdog.trip"
        ]
        assert any("nis" in fault for e in trips for fault in e.fields["faults"])

    def test_silent_stream_trips_stale_and_recovers(self):
        faults = FaultSchedule(seed=3).crash("s0", at=60, restart_at=110)
        policy = WatchdogPolicy(
            staleness_limit=15, escalation_grace_ticks=4, hysteresis_ticks=8
        )
        engine, telemetry = self.make(faults, policy=policy)
        for _ in range(280):
            engine.step()
        trips = [
            e for e in telemetry.bus.events() if e.name == "watchdog.trip"
        ]
        assert trips
        assert any("stale" in e.fields["faults"] for e in trips)
        # The restart re-primes the server; hysteresis restores health.
        assert engine.watchdog.status("s0") == "healthy"

    def test_quarantine_flags_answers_and_exits_by_hysteresis(self):
        # A long NaN burst marches the ladder to quarantine via the
        # consecutive-reject counter, then clean readings walk it back.
        faults = FaultSchedule(seed=3).sensor(
            "s0", "nan", start=40, duration=80
        )
        policy = WatchdogPolicy(
            reject_limit=3, escalation_grace_ticks=2, hysteresis_ticks=6
        )
        engine, telemetry = self.make(faults, policy=policy)
        saw_quarantined_answer = False
        for _ in range(280):
            engine.step()
            if engine.answer("q").quarantined:
                saw_quarantined_answer = True
        counts = telemetry.bus.counts()
        assert counts.get("quarantine.enter", 0) >= 1
        assert saw_quarantined_answer
        assert counts.get("quarantine.exit", 0) >= 1
        assert engine.watchdog.status("s0") == "healthy"
        assert not engine.answer("q").quarantined
