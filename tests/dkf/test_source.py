"""Unit tests for the DKF source (sensor) side."""

import numpy as np
import pytest

from repro.dkf.config import DKFConfig
from repro.dkf.source import DKFSource
from repro.errors import DimensionError
from repro.filters.models import constant_model, linear_model
from repro.streams.base import StreamRecord


def record(k, *values):
    return StreamRecord(k=k, timestamp=float(k), value=np.array(values))


def make_source(delta=3.0, model=None, **kwargs):
    config = DKFConfig(model=model or linear_model(dims=1, dt=1.0), delta=delta, **kwargs)
    return DKFSource("s0", config)


class TestPriming:
    def test_first_reading_transmits(self):
        source = make_source()
        step = source.sample(record(0, 10.0))
        assert step.message is not None
        assert step.prediction is None
        assert source.primed

    def test_priming_message_carries_value(self):
        source = make_source()
        step = source.sample(record(0, 10.0))
        assert np.allclose(step.message.value, [10.0])
        assert step.message.seq == 0

    def test_mirror_unavailable_before_priming(self):
        source = make_source()
        with pytest.raises(DimensionError):
            source.mirror  # noqa: B018


class TestSuppressionRule:
    def test_suppresses_when_prediction_within_delta(self):
        source = make_source(delta=5.0, model=constant_model(dims=1))
        source.sample(record(0, 10.0))
        step = source.sample(record(1, 12.0))  # |10 - 12| <= 5
        assert step.message is None
        assert step.error <= 5.0

    def test_transmits_when_prediction_escapes(self):
        source = make_source(delta=5.0, model=constant_model(dims=1))
        source.sample(record(0, 10.0))
        step = source.sample(record(1, 20.0))
        assert step.message is not None
        assert step.error > 5.0

    def test_boundary_is_inclusive(self):
        """The rule is strict: transmit only when error *exceeds* delta."""
        source = make_source(delta=5.0, model=constant_model(dims=1))
        source.sample(record(0, 10.0))
        step = source.sample(record(1, 15.0))  # error exactly 5.0
        assert step.message is None

    def test_vector_any_component_triggers(self):
        source = make_source(delta=5.0, model=constant_model(dims=2))
        source.sample(record(0, 0.0, 0.0))
        step = source.sample(record(1, 1.0, 9.0))
        assert step.message is not None

    def test_linear_model_suppresses_ramp(self):
        """On a clean ramp the mirror learns the slope and goes silent."""
        source = make_source(delta=1.0, model=linear_model(dims=1, dt=1.0))
        sent = 0
        for k in range(100):
            step = source.sample(record(k, 5.0 * k))
            sent += step.message is not None
        assert sent < 10

    def test_sequence_numbers_increment(self):
        source = make_source(delta=0.001, model=constant_model(dims=1))
        seqs = []
        for k in range(5):
            step = source.sample(record(k, float(k * 10)))
            if step.message:
                seqs.append(step.message.seq)
        assert seqs == list(range(len(seqs)))

    def test_counters(self):
        source = make_source(delta=1000.0, model=constant_model(dims=1))
        for k in range(10):
            source.sample(record(k, float(k)))
        assert source.samples_seen == 10
        assert source.updates_sent == 1  # priming only


class TestSmoothingIntegration:
    def test_smoothed_value_reported(self):
        source = make_source(
            delta=5.0, model=constant_model(dims=1), smoothing_f=1e-9
        )
        source.sample(record(0, 100.0))
        step = None
        for k in range(1, 10):
            step = source.sample(record(k, 200.0))
        # With F -> 0 the smoother approaches the running mean, so the
        # protocol value lags the raw jump from 100 to 200.
        running_mean = (100.0 + 9 * 200.0) / 10.0
        assert np.isclose(step.value[0], running_mean, rtol=0.05)
        assert step.raw_value[0] == 200.0

    def test_vector_streams_smooth_per_component(self):
        source = make_source(
            delta=5.0, model=constant_model(dims=2), smoothing_f=1e-9
        )
        source.sample(record(0, 100.0, 0.0))
        step = None
        for k in range(1, 10):
            step = source.sample(record(k, 200.0, 0.0))
        # Component 0 lags toward the running mean; component 1 is exact.
        assert step.value[0] < 195.0
        assert step.value[1] == 0.0

    def test_smoothing_suppresses_noise_updates(self):
        rng = np.random.default_rng(0)
        noisy = 100.0 + rng.normal(0, 10, 200)
        smoothed_source = make_source(
            delta=5.0, model=constant_model(dims=1), smoothing_f=1e-9
        )
        raw_source = make_source(delta=5.0, model=constant_model(dims=1))
        smoothed_sent = sum(
            smoothed_source.sample(record(k, v)).message is not None
            for k, v in enumerate(noisy)
        )
        raw_sent = sum(
            raw_source.sample(record(k, v)).message is not None
            for k, v in enumerate(noisy)
        )
        assert smoothed_sent < raw_sent / 2


class TestMirrorDigest:
    def test_digest_attached_when_configured(self):
        source = make_source(
            delta=0.001, model=constant_model(dims=1), check_mirror=True
        )
        source.sample(record(0, 0.0))
        step = source.sample(record(1, 100.0))
        assert step.message.digest is not None

    def test_no_digest_by_default(self):
        source = make_source(delta=0.001, model=constant_model(dims=1))
        source.sample(record(0, 0.0))
        step = source.sample(record(1, 100.0))
        assert step.message.digest is None


class TestResyncAndReset:
    def test_resync_snapshot_matches_mirror(self):
        source = make_source()
        source.sample(record(0, 5.0))
        source.sample(record(1, 50.0))
        msg = source.resync_message(k=1, value=np.array([50.0]))
        assert np.allclose(msg.x, source.mirror.x)
        assert np.allclose(msg.p, source.mirror.p)

    def test_resync_consumes_sequence_number(self):
        source = make_source(model=constant_model(dims=1))
        source.sample(record(0, 0.0))
        msg = source.resync_message(k=0, value=np.array([0.0]))
        assert msg.seq == 1
        step = source.sample(record(1, 100.0))
        assert step.message.seq == 2

    def test_reset(self):
        source = make_source()
        source.sample(record(0, 1.0))
        source.reset()
        assert not source.primed
        assert source.samples_seen == 0
        assert source.sample(record(0, 1.0)).message is not None
