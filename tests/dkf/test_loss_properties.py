"""Property-based tests for loss recovery and protocol accounting."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dkf.config import DKFConfig
from repro.dkf.protocol import random_loss
from repro.dkf.session import DKFSession
from repro.filters.models import constant_model, linear_model
from repro.streams.base import stream_from_values

values_strategy = st.lists(
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    min_size=2,
    max_size=50,
)


@settings(max_examples=40, deadline=None)
@given(
    values=values_strategy,
    delta=st.floats(min_value=0.1, max_value=100.0),
    loss_rate=st.floats(min_value=0.0, max_value=0.8),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_guarantee_survives_arbitrary_loss(values, delta, loss_rate, seed):
    """Whatever the loss pattern, resync keeps the server within delta at
    every decision instant."""
    config = DKFConfig(model=constant_model(dims=1), delta=delta)
    session = DKFSession(
        config, loss_fn=random_loss(loss_rate, seed=seed), verify_mirror=True
    )
    stream = stream_from_values(np.array(values))
    for decision in session.run(stream):
        error = np.max(np.abs(decision.server_value - decision.source_value))
        assert error <= delta + 1e-6


@settings(max_examples=40, deadline=None)
@given(
    values=values_strategy,
    delta=st.floats(min_value=0.1, max_value=100.0),
    loss_rate=st.floats(min_value=0.0, max_value=0.8),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_every_loss_is_resynced(values, delta, loss_rate, seed):
    """Accounting invariant: lost messages and resyncs balance exactly."""
    config = DKFConfig(model=linear_model(dims=1, dt=1.0), delta=delta)
    session = DKFSession(config, loss_fn=random_loss(loss_rate, seed=seed))
    session.run(stream_from_values(np.array(values)))
    stats = session.channel.stats
    assert stats.resyncs == stats.messages_lost
    assert stats.messages_delivered + stats.messages_lost == stats.messages_offered
    assert not session.server.stats("s0")["desynced"]


@settings(max_examples=30, deadline=None)
@given(
    values=values_strategy,
    delta=st.floats(min_value=0.1, max_value=100.0),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_loss_never_reduces_server_quality_class(values, delta, seed):
    """With full recovery, the post-run server state under loss equals the
    lossless state whenever the *decision sequence* matched; at minimum
    the final answers agree within delta of the last reading."""
    stream = stream_from_values(np.array(values))
    lossless = DKFSession(DKFConfig(model=constant_model(dims=1), delta=delta))
    lossy = DKFSession(
        DKFConfig(model=constant_model(dims=1), delta=delta),
        loss_fn=random_loss(0.5, seed=seed),
    )
    last = np.array([values[-1]])
    for session in (lossless, lossy):
        session.run(stream)
        answer = session.server.value("s0")
        assert np.max(np.abs(answer - last)) <= delta + 1e-6
