"""Interplay tests: protocol features composed together.

Each feature is tested alone elsewhere; these tests pin the pairwise
combinations a deployment would actually run (smoothing + gating,
smoothing + vector δ, gating + loss recovery).
"""

import numpy as np

from repro.dkf.config import DKFConfig
from repro.dkf.protocol import periodic_loss
from repro.dkf.session import DKFSession
from repro.filters.models import constant_model, linear_model
from repro.streams.base import stream_from_values
from repro.streams.noise import add_spikes


def spiky_noisy_stream(n=500, seed=2):
    rng = np.random.default_rng(seed)
    base = 100.0 + rng.normal(0, 3.0, size=n)
    stream = stream_from_values(base, name="noisy")
    return add_spikes(stream, rate=0.02, magnitude=400.0, seed=seed + 1)


class TestSmoothingPlusGating:
    def test_combined_config_runs_in_lockstep(self):
        config = DKFConfig(
            model=constant_model(dims=1),
            delta=5.0,
            smoothing_f=1e-3,
            outlier_gate_factor=8.0,
        )
        session = DKFSession(config, verify_mirror=True)
        session.run(spiky_noisy_stream())  # raises on desync

    def test_smoothing_already_absorbs_most_spikes(self):
        """With KF_c in front, spikes reach the gate pre-attenuated, so the
        gate fires rarely -- the layers compose without fighting."""
        stream = spiky_noisy_stream()
        smoothed_gated = DKFSession(
            DKFConfig(
                model=constant_model(dims=1),
                delta=5.0,
                smoothing_f=1e-5,
                outlier_gate_factor=8.0,
            )
        )
        smoothed_gated.run(stream)
        gated_only = DKFSession(
            DKFConfig(
                model=constant_model(dims=1),
                delta=5.0,
                outlier_gate_factor=8.0,
            )
        )
        gated_only.run(stream)
        assert (
            smoothed_gated.source.readings_gated
            <= gated_only.source.readings_gated
        )

    def test_guarantee_relative_to_smoothed_holds_outside_gates(self):
        stream = spiky_noisy_stream()
        config = DKFConfig(
            model=constant_model(dims=1),
            delta=5.0,
            smoothing_f=1e-3,
            outlier_gate_factor=8.0,
        )
        session = DKFSession(config)
        violations = sum(
            1
            for d in session.run(stream)
            if np.max(np.abs(d.server_value - d.source_value)) > 5.0 + 1e-9
        )
        # Gated instants are the only permissible violations, and on this
        # heavily smoothed stream they are rare.
        assert violations <= session.source.readings_gated


class TestVectorDeltaPlusSmoothing:
    def test_per_component_widths_with_vector_smoothing(self):
        rng = np.random.default_rng(3)
        values = np.stack(
            [
                100.0 + rng.normal(0, 2.0, 400),
                np.arange(400, dtype=float) * 0.2,
            ],
            axis=1,
        )
        stream = stream_from_values(values, name="mixed")
        config = DKFConfig(
            model=linear_model(dims=2, dt=1.0),
            delta=(5.0, 0.5),
            smoothing_f=1e-4,
        )
        session = DKFSession(config, verify_mirror=True)
        for decision in session.run(stream):
            errors = np.abs(decision.server_value - decision.source_value)
            assert errors[0] <= 5.0 + 1e-9
            assert errors[1] <= 0.5 + 1e-9


class TestGatingPlusLoss:
    def test_gate_and_resync_coexist(self):
        stream = spiky_noisy_stream()
        config = DKFConfig(
            model=constant_model(dims=1),
            delta=5.0,
            outlier_gate_factor=8.0,
        )
        session = DKFSession(
            config, loss_fn=periodic_loss(4), verify_mirror=True
        )
        session.run(stream)  # raises on desync
        stats = session.channel.stats
        assert stats.resyncs == stats.messages_lost
        assert not session.server.stats("s0")["desynced"]
