"""Property-based tests (hypothesis) on the DKF session.

These generalise the paper's guarantees beyond the three datasets: for
*any* scalar stream and *any* precision width, the protocol invariants
must hold.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.errors import MirrorDesyncError
from repro.filters.models import constant_model, linear_model
from repro.streams.base import stream_from_values

values_strategy = st.lists(
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    min_size=1,
    max_size=60,
)
delta_strategy = st.floats(min_value=0.01, max_value=1e3)
model_strategy = st.sampled_from(["constant", "linear"])


def build_session(model_name, delta, verify=True):
    model = (
        constant_model(dims=1)
        if model_name == "constant"
        else linear_model(dims=1, dt=1.0)
    )
    return DKFSession(
        DKFConfig(model=model, delta=delta), verify_mirror=verify
    )


@settings(max_examples=50, deadline=None)
@given(values=values_strategy, delta=delta_strategy, model=model_strategy)
def test_server_error_bounded_for_any_stream(values, delta, model):
    """Core guarantee: per-component server error <= delta at every
    decision instant, for arbitrary data."""
    session = build_session(model, delta)
    stream = stream_from_values(np.array(values))
    for decision in session.run(stream):
        error = np.max(np.abs(decision.server_value - decision.source_value))
        assert error <= delta + 1e-6


@settings(max_examples=50, deadline=None)
@given(values=values_strategy, delta=delta_strategy, model=model_strategy)
def test_mirror_never_desyncs(values, delta, model):
    """The lock-step invariant holds under arbitrary inputs (the session
    verifies digests after every step and raises on divergence)."""
    session = build_session(model, delta, verify=True)
    stream = stream_from_values(np.array(values))
    try:
        session.run(stream)
    except MirrorDesyncError as exc:  # pragma: no cover
        raise AssertionError(f"mirror desynced: {exc}") from exc


@settings(max_examples=40, deadline=None)
@given(values=values_strategy, delta=delta_strategy, model=model_strategy)
def test_update_fraction_in_unit_interval(values, delta, model):
    session = build_session(model, delta)
    stream = stream_from_values(np.array(values))
    decisions = session.run(stream)
    sent = sum(d.sent for d in decisions)
    assert 1 <= sent <= len(values)  # priming always transmits


@settings(max_examples=30, deadline=None)
@given(values=values_strategy, delta=delta_strategy, model=model_strategy)
def test_session_is_deterministic(values, delta, model):
    stream = stream_from_values(np.array(values))
    a = build_session(model, delta).run(stream)
    b = build_session(model, delta).run(stream)
    assert [d.sent for d in a] == [d.sent for d in b]
    assert all(
        np.array_equal(x.server_value, y.server_value) for x, y in zip(a, b)
    )


@settings(max_examples=30, deadline=None)
@given(values=values_strategy, delta=delta_strategy)
def test_wider_delta_never_increases_updates_constant_model(values, delta):
    """Monotonicity for the memoryless constant model: relaxing the
    precision cannot generate more updates.  (Not true in general for
    models with internal trend state, where update timing feeds back into
    later predictions.)"""
    stream = stream_from_values(np.array(values))
    tight = sum(
        d.sent for d in build_session("constant", delta).run(stream)
    )
    loose = sum(
        d.sent for d in build_session("constant", delta * 2).run(stream)
    )
    assert loose <= tight


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        min_size=3,
        max_size=50,
    ),
    delta=delta_strategy,
)
def test_smoothed_session_guarantee(values, delta):
    """The precision guarantee holds relative to the smoothed stream."""
    config = DKFConfig(
        model=constant_model(dims=1), delta=delta, smoothing_f=1e-3
    )
    session = DKFSession(config)
    stream = stream_from_values(np.array(values))
    for decision in session.run(stream):
        error = np.max(np.abs(decision.server_value - decision.source_value))
        assert error <= delta + 1e-6
