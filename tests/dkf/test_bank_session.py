"""Tests for the model-bank DKF session (online model selection inside
the protocol)."""

import math

import numpy as np
import pytest

from repro.datasets.regime_switch import regime_switch_dataset
from repro.dkf.bank_session import ModelBankSession
from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.errors import ConfigurationError
from repro.filters.models import constant_model, linear_model, sinusoidal_model
from repro.metrics.evaluation import evaluate_scheme
from repro.streams.base import stream_from_values


def bank_models():
    return [
        constant_model(dims=1),
        linear_model(dims=1, dt=1.0),
        sinusoidal_model(omega=2 * math.pi / 50, theta=0.0),
    ]


def session(delta=2.0, **kwargs):
    return ModelBankSession(bank_models(), delta=delta, **kwargs)


class TestBasics:
    def test_priming_transmits(self, ramp_stream):
        s = session()
        assert s.observe(ramp_stream[0]).sent

    def test_precision_guarantee(self, ramp_stream):
        s = session(delta=2.0)
        for decision in s.run(ramp_stream):
            error = np.max(np.abs(decision.server_value - decision.source_value))
            assert error <= 2.0 + 1e-9

    def test_mirror_lockstep_verified(self):
        stream = regime_switch_dataset(n=400)
        s = session(delta=2.0, verify_mirror=True)
        s.run(stream)  # raises on divergence

    def test_reset_reproduces(self, ramp_stream):
        s = session()
        first = [d.sent for d in s.run(ramp_stream)]
        s.reset()
        second = [d.sent for d in s.run(ramp_stream)]
        assert first == second

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ModelBankSession(bank_models(), delta=0.0)

    def test_name(self):
        assert "3 models" in session().name
        assert session(label="custom").name == "custom"


class TestAdaptivity:
    def test_bank_beats_wrong_fixed_models_on_regime_switch(self):
        """On a stream that cycles regimes, the bank must beat the fixed
        models that are wrong most of the time."""
        stream = regime_switch_dataset(n=1200, segment=200)
        delta = 2.0
        bank_result = evaluate_scheme(
            session(delta=delta, verify_mirror=False), stream
        )
        constant_result = evaluate_scheme(
            DKFSession(DKFConfig(model=constant_model(dims=1), delta=delta)),
            stream,
        )
        assert bank_result.update_fraction < constant_result.update_fraction

    def test_bank_close_to_best_fixed_model(self):
        """The bank pays a bounded premium over the (unknowable in
        advance) best fixed model."""
        stream = regime_switch_dataset(n=1200, segment=200)
        delta = 2.0
        bank_result = evaluate_scheme(
            session(delta=delta, verify_mirror=False), stream
        )
        fixed = [
            evaluate_scheme(
                DKFSession(DKFConfig(model=m, delta=delta)), stream
            ).update_fraction
            for m in bank_models()
        ]
        assert bank_result.update_fraction < 1.5 * min(fixed)

    def test_posteriors_follow_regime(self):
        """During a long pure-ramp stretch the linear candidate dominates."""
        values = np.arange(600, dtype=float) * 3.0
        stream = stream_from_values(values, name="pure-ramp")
        s = session(delta=1.0, verify_mirror=False)
        s.run(stream)
        best = max(s.posteriors(), key=lambda p: p.probability)
        assert "linear" in best.name

    def test_posteriors_switch_after_regime_change(self):
        """Forgetting lets the bank re-decide: flat -> ramp flips the
        winner from constant to linear."""
        flat = np.full(300, 50.0)
        ramp = 50.0 + 3.0 * np.arange(300)
        stream = stream_from_values(np.concatenate([flat, ramp]), name="switch")
        s = session(delta=1.0, verify_mirror=False, forgetting=0.9)
        decisions = s.run(stream)
        best = max(s.posteriors(), key=lambda p: p.probability)
        assert "linear" in best.name
        # And the guarantee held throughout the switch.
        for d in decisions:
            assert np.max(np.abs(d.server_value - d.source_value)) <= 1.0 + 1e-9
