"""Integration tests for the end-to-end DKF session.

These are the tests that pin the paper's core claims:

* the server and mirror filters stay in bit-identical lock-step;
* the server-side error never exceeds δ per component at decision time;
* the constant-model DKF generates update traffic comparable to caching;
* the linear-model DKF slashes traffic on trending data;
* message loss triggers resync and the pair recovers.
"""

import numpy as np
import pytest

from repro.baselines.caching import CachedValueScheme
from repro.dkf.config import DKFConfig
from repro.dkf.protocol import periodic_loss
from repro.dkf.session import DKFSession
from repro.filters.models import constant_model, linear_model
from repro.metrics.evaluation import evaluate_scheme
from repro.streams.base import stream_from_values


def session(delta=3.0, model=None, **kwargs):
    return DKFSession(
        DKFConfig(model=model or linear_model(dims=1, dt=1.0), delta=delta),
        **kwargs,
    )


class TestLockstep:
    def test_mirror_verified_every_step(self, trajectory_small):
        cfg = DKFConfig(model=linear_model(dims=2, dt=0.1), delta=3.0)
        s = DKFSession(cfg, verify_mirror=True)
        for record in trajectory_small:
            s.observe(record)  # raises MirrorDesyncError on any divergence

    def test_mirror_digests_equal_after_run(self, ramp_stream):
        s = session(delta=1.0)
        for record in ramp_stream:
            s.observe(record)
        src = s.source.mirror.state_digest()
        srv = s.server._state("s0").filter.state_digest()  # noqa: SLF001
        assert src == srv


class TestPrecisionGuarantee:
    def test_error_bounded_by_delta_per_component(self, trajectory_small):
        delta = 3.0
        cfg = DKFConfig(model=linear_model(dims=2, dt=0.1), delta=delta)
        s = DKFSession(cfg)
        for record in trajectory_small:
            decision = s.observe(record)
            error = np.max(np.abs(decision.server_value - decision.source_value))
            assert error <= delta + 1e-9

    def test_sent_steps_have_zero_error(self, trajectory_small):
        cfg = DKFConfig(model=linear_model(dims=2, dt=0.1), delta=3.0)
        s = DKFSession(cfg)
        for record in trajectory_small:
            decision = s.observe(record)
            if decision.sent:
                assert np.allclose(decision.server_value, decision.source_value)

    def test_guarantee_relative_to_smoothed_value(self, http_traffic_small):
        delta = 5.0
        cfg = DKFConfig(
            model=constant_model(dims=1), delta=delta, smoothing_f=1e-7
        )
        s = DKFSession(cfg)
        for record in http_traffic_small:
            decision = s.observe(record)
            error = np.max(np.abs(decision.server_value - decision.source_value))
            assert error <= delta + 1e-9


class TestPaperClaims:
    def test_constant_dkf_comparable_to_caching(self, trajectory_small):
        """Paper Fig. 4: caching and the constant model produce essentially
        the same update traffic."""
        delta = 3.0
        caching = evaluate_scheme(
            CachedValueScheme.from_precision(delta, dims=2), trajectory_small
        )
        constant = evaluate_scheme(
            DKFSession(DKFConfig(model=constant_model(dims=2), delta=delta)),
            trajectory_small,
        )
        assert abs(constant.update_fraction - caching.update_fraction) < 0.10

    def test_linear_dkf_beats_caching_dramatically(self, trajectory_small):
        """Paper Fig. 4: ~75% traffic reduction at delta = 3."""
        delta = 3.0
        caching = evaluate_scheme(
            CachedValueScheme.from_precision(delta, dims=2), trajectory_small
        )
        linear = evaluate_scheme(
            DKFSession(
                DKFConfig(model=linear_model(dims=2, dt=0.1), delta=delta)
            ),
            trajectory_small,
        )
        assert linear.update_fraction < 0.5 * caching.update_fraction

    def test_perfect_model_sends_almost_nothing(self, ramp_stream):
        s = session(delta=0.5)
        result = evaluate_scheme(s, ramp_stream)
        assert result.updates <= 5  # priming + slope acquisition

    def test_constant_stream_single_update(self, constant_stream):
        s = session(delta=0.5, model=constant_model(dims=1))
        result = evaluate_scheme(s, constant_stream)
        assert result.updates == 1


class TestLossRecovery:
    def test_loss_triggers_resync_and_recovers(self, trajectory_small):
        cfg = DKFConfig(model=linear_model(dims=2, dt=0.1), delta=3.0)
        s = DKFSession(cfg, loss_fn=periodic_loss(5), verify_mirror=True)
        for record in trajectory_small:
            decision = s.observe(record)
            error = np.max(np.abs(decision.server_value - decision.source_value))
            assert error <= 3.0 + 1e-9  # guarantee survives loss
        assert s.channel.stats.messages_lost > 0
        assert s.channel.stats.resyncs == s.channel.stats.messages_lost
        assert not s.server.stats("s0")["desynced"]

    def test_lossless_channel_never_resyncs(self, trajectory_small):
        cfg = DKFConfig(model=linear_model(dims=2, dt=0.1), delta=3.0)
        s = DKFSession(cfg)
        for record in trajectory_small:
            s.observe(record)
        assert s.channel.stats.resyncs == 0
        assert s.channel.stats.messages_lost == 0


class TestSessionMechanics:
    def test_reset_reproduces_run(self, trajectory_small):
        cfg = DKFConfig(model=linear_model(dims=2, dt=0.1), delta=3.0)
        s = DKFSession(cfg)
        first = [d.sent for d in s.run(trajectory_small)]
        s.reset()
        second = [d.sent for d in s.run(trajectory_small)]
        assert first == second

    def test_name_comes_from_config(self):
        cfg = DKFConfig(model=constant_model(dims=1), delta=1.0, label="x")
        assert DKFSession(cfg).name == "x"

    def test_counters_exposed(self, ramp_stream):
        s = session(delta=1.0)
        s.run(ramp_stream)
        assert s.samples_seen == len(ramp_stream)
        assert s.updates_sent >= 1

    def test_forecast_through_session(self, ramp_stream):
        s = session(delta=1.0)
        s.run(ramp_stream)
        forecast = s.forecast(3)
        # The ramp continues: forecasts keep climbing.
        assert forecast[2, 0] > forecast[0, 0]

    def test_payload_floats_accounted(self, trajectory_small):
        cfg = DKFConfig(model=linear_model(dims=2, dt=0.1), delta=3.0)
        s = DKFSession(cfg)
        decisions = s.run(trajectory_small)
        sent = [d for d in decisions if d.sent]
        assert all(d.payload_floats == 2 for d in sent)
        assert all(d.payload_floats == 0 for d in decisions if not d.sent)


class TestLifecycle:
    def test_closed_session_refuses_observations(self, ramp_stream):
        from repro.errors import StaleSessionError

        s = session(delta=1.0)
        s.observe(ramp_stream[0])
        s.close()
        assert s.closed
        with pytest.raises(StaleSessionError):
            s.observe(ramp_stream[1])

    def test_reset_reopens(self, ramp_stream):
        s = session(delta=1.0)
        s.close()
        s.reset()
        assert not s.closed
        assert s.observe(ramp_stream[0]).sent


class TestSmoothedSessionMirror:
    def test_smoothed_lockstep_holds(self, http_traffic_small):
        cfg = DKFConfig(
            model=linear_model(dims=1, dt=1.0), delta=5.0, smoothing_f=1e-5
        )
        s = DKFSession(cfg, verify_mirror=True)
        for record in http_traffic_small:
            s.observe(record)  # would raise on desync
