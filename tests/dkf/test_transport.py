"""Tests for the fault-tolerant transport: ack/retransmit state machine,
exponential backoff, heartbeats, and the server's tolerant delivery mode."""

import numpy as np
import pytest

from repro.dkf.config import DKFConfig, TransportPolicy
from repro.dkf.protocol import (
    AckMessage,
    HeartbeatMessage,
    ResyncMessage,
    UpdateMessage,
)
from repro.dkf.server import DKFServer
from repro.dkf.source import DKFSource
from repro.errors import ConfigurationError, MirrorDesyncError
from repro.filters.models import constant_model
from repro.streams.base import StreamRecord


def config(delta=0.5):
    return DKFConfig(model=constant_model(dims=1), delta=delta)


def record(k, value):
    return StreamRecord(k=k, timestamp=float(k), value=np.atleast_1d(float(value)))


def update(seq, k, value=1.0):
    return UpdateMessage(
        source_id="s0", seq=seq, k=k, value=np.atleast_1d(float(value))
    )


class TestTransportPolicy:
    def test_backoff_grows_exponentially(self):
        policy = TransportPolicy(
            ack_timeout_ticks=4, backoff_factor=2.0, max_backoff_ticks=64
        )
        assert policy.retry_timeout(0) == 4
        assert policy.retry_timeout(1) == 8
        assert policy.retry_timeout(2) == 16
        assert policy.retry_timeout(3) == 32

    def test_backoff_capped(self):
        policy = TransportPolicy(
            ack_timeout_ticks=4, backoff_factor=2.0, max_backoff_ticks=10
        )
        assert policy.retry_timeout(5) == 10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TransportPolicy(ack_timeout_ticks=0)
        with pytest.raises(ConfigurationError):
            TransportPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            TransportPolicy(ack_timeout_ticks=8, max_backoff_ticks=4)


class TestSourceRetransmission:
    def make_source(self, **policy):
        defaults = dict(ack_timeout_ticks=4, heartbeat_interval_ticks=100)
        defaults.update(policy)
        return DKFSource("s0", config(), transport=TransportPolicy(**defaults))

    def test_unacked_message_retransmits_as_resync(self):
        source = self.make_source()
        step = source.sample(record(0, 1.0))
        source.note_sent(step.message, now=0)
        assert source.pending_acks == 1
        # Before the deadline: silence.
        assert source.poll_transport(3) == []
        # Deadline hit: a full snapshot goes out, not the stale update.
        out = source.poll_transport(4)
        assert len(out) == 1
        assert isinstance(out[0], ResyncMessage)
        assert source.retransmits == 1
        assert source.pending_acks == 1  # the resync is itself pending

    def test_ack_settles_pending(self):
        source = self.make_source()
        step = source.sample(record(0, 1.0))
        source.note_sent(step.message, now=0)
        source.on_ack(AckMessage(source_id="s0", seq=1, k=0), now=1)
        assert source.pending_acks == 0
        assert source.poll_transport(10) == []
        assert source.retransmits == 0

    def test_cumulative_ack_settles_older_entries(self):
        source = self.make_source()
        for k, value in enumerate([0.0, 5.0, 10.0]):
            step = source.sample(record(k, value))
            assert step.message is not None
            source.note_sent(step.message, now=k)
        assert source.pending_acks == 3
        # One ack with next-expected=3 settles everything below it.
        source.on_ack(AckMessage(source_id="s0", seq=3, k=2), now=3)
        assert source.pending_acks == 0

    def test_retransmission_backs_off(self):
        source = self.make_source(ack_timeout_ticks=4, backoff_factor=2.0)
        step = source.sample(record(0, 1.0))
        source.note_sent(step.message, now=0)
        assert len(source.poll_transport(4)) == 1  # attempt 1, next timeout 8
        assert source.poll_transport(11) == []     # 4 + 8 = 12 not reached
        assert len(source.poll_transport(12)) == 1  # attempt 2, next timeout 16
        assert source.poll_transport(27) == []      # 12 + 16 = 28 not reached
        assert len(source.poll_transport(28)) == 1
        assert source.retransmits == 3

    def test_server_requested_resync_is_immediate(self):
        source = self.make_source()
        source.sample(record(0, 1.0))
        source.on_ack(
            AckMessage(source_id="s0", seq=1, k=0, resync_requested=True),
            now=1,
        )
        out = source.poll_transport(1)
        assert len(out) == 1
        assert isinstance(out[0], ResyncMessage)

    def test_no_transport_before_priming(self):
        source = self.make_source()
        assert source.poll_transport(50) == []


class TestHeartbeats:
    def test_heartbeat_after_silence(self):
        source = DKFSource(
            "s0",
            config(),
            transport=TransportPolicy(
                ack_timeout_ticks=4, heartbeat_interval_ticks=10
            ),
        )
        step = source.sample(record(0, 1.0))
        source.note_sent(step.message, now=0)
        source.on_ack(AckMessage(source_id="s0", seq=1, k=0), now=1)
        assert source.poll_transport(9) == []
        out = source.poll_transport(10)
        assert len(out) == 1
        assert isinstance(out[0], HeartbeatMessage)
        assert source.heartbeats_sent == 1
        # The beacon resets the silence clock.
        assert source.poll_transport(11) == []

    def test_no_heartbeat_while_awaiting_ack(self):
        """Pending retransmission state owns the link; no beacon interleaves."""
        source = DKFSource(
            "s0",
            config(),
            transport=TransportPolicy(
                ack_timeout_ticks=50, heartbeat_interval_ticks=10
            ),
        )
        step = source.sample(record(0, 1.0))
        source.note_sent(step.message, now=0)
        assert source.poll_transport(10) == []


class TestTolerantServer:
    def make_server(self):
        server = DKFServer(strict=False, emit_acks=True)
        server.register("s0", config())
        return server

    def test_in_order_update_acked(self):
        server = self.make_server()
        server.receive(update(0, 0))
        acks = server.take_outbox()
        assert len(acks) == 1
        assert acks[0].seq == 1
        assert not acks[0].resync_requested

    def test_gap_requests_resync_instead_of_raising(self):
        server = self.make_server()
        server.receive(update(0, 0))
        server.take_outbox()
        server.tick("s0", 1)
        answer = server.receive(update(2, 2, value=9.0))  # seq 1 lost
        # The unsafe correction was NOT applied.
        assert answer[0] != 9.0
        assert server.stats("s0")["desynced"]
        assert server.stats("s0")["gaps_detected"] == 1
        acks = server.take_outbox()
        assert len(acks) == 1
        assert acks[0].resync_requested

    def test_duplicate_retransmit_ignored_and_reacked(self):
        server = self.make_server()
        server.receive(update(0, 0))
        server.tick("s0", 1)
        server.receive(update(1, 1, value=2.0))
        server.take_outbox()
        # The same update arrives again (its ack was lost in flight).
        server.receive(update(1, 1, value=2.0))
        assert server.stats("s0")["duplicates_ignored"] == 1
        assert not server.stats("s0")["desynced"]
        acks = server.take_outbox()
        assert len(acks) == 1
        assert acks[0].seq == 2

    def test_resync_heals_gap(self):
        server = self.make_server()
        server.receive(update(0, 0))
        server.tick("s0", 1)
        server.receive(update(2, 2))  # gap
        assert server.stats("s0")["desynced"]
        resync = ResyncMessage(
            source_id="s0", seq=3, k=3, x=np.array([5.0]),
            p=np.eye(1), value=np.array([5.0]),
        )
        server.receive(resync)
        assert not server.stats("s0")["desynced"]
        server.tick("s0", 4)
        server.receive(update(4, 4, value=5.5))
        assert server.value("s0")[0] == 5.5

    def test_strict_mode_still_raises_on_gap(self):
        server = DKFServer(strict=True)
        server.register("s0", config())
        server.receive(update(0, 0))
        with pytest.raises(MirrorDesyncError):
            server.receive(update(2, 2))

    def test_strict_mode_still_raises_on_duplicate(self):
        server = DKFServer(strict=True)
        server.register("s0", config())
        server.receive(update(0, 0))
        with pytest.raises(MirrorDesyncError):
            server.receive(update(0, 0))


class TestLiveness:
    def test_staleness_tracks_silence(self):
        server = DKFServer(strict=False)
        server.register(
            "s0", config(), transport=TransportPolicy(suspect_after_ticks=5)
        )
        server.receive(update(0, 0))
        assert server.liveness("s0")["staleness_ticks"] == 0
        server.advance_clock(4)
        live = server.liveness("s0")
        assert live["staleness_ticks"] == 4
        assert not live["suspect"]
        server.advance_clock(6)
        assert server.liveness("s0")["suspect"]

    def test_heartbeat_refreshes_liveness(self):
        server = DKFServer(strict=False)
        server.register(
            "s0", config(), transport=TransportPolicy(suspect_after_ticks=5)
        )
        server.receive(update(0, 0))
        server.advance_clock(4)
        server.receive(HeartbeatMessage(source_id="s0", seq=1, k=4))
        server.advance_clock(8)
        live = server.liveness("s0")
        assert live["staleness_ticks"] == 4
        assert not live["suspect"]
        assert server.stats("s0")["heartbeats_received"] == 1

    def test_confidence_decays_while_coasting(self):
        server = DKFServer(strict=False)
        server.register("s0", config())
        assert server.confidence("s0") == 0.0
        server.receive(update(0, 0))
        fresh = server.confidence("s0")
        assert 0.0 < fresh <= 1.0
        for k in range(1, 30):
            server.tick("s0", k)
        coasted = server.confidence("s0")
        assert coasted < fresh
