"""Property-based tests for the model-bank DKF session."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dkf.bank_session import ModelBankSession
from repro.filters.models import constant_model, linear_model
from repro.streams.base import stream_from_values

values_strategy = st.lists(
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    min_size=1,
    max_size=40,
)
delta_strategy = st.floats(min_value=0.1, max_value=100.0)


def build(delta, verify=True):
    return ModelBankSession(
        [constant_model(dims=1), linear_model(dims=1, dt=1.0)],
        delta=delta,
        verify_mirror=verify,
    )


@settings(max_examples=30, deadline=None)
@given(values=values_strategy, delta=delta_strategy)
def test_bank_guarantee_for_any_stream(values, delta):
    """The mixture-prediction suppression rule preserves the per-instant
    precision guarantee for arbitrary data."""
    session = build(delta)
    stream = stream_from_values(np.array(values))
    for decision in session.run(stream):
        error = np.max(np.abs(decision.server_value - decision.source_value))
        assert error <= delta + 1e-6


@settings(max_examples=25, deadline=None)
@given(values=values_strategy, delta=delta_strategy)
def test_bank_mirror_lockstep_for_any_stream(values, delta):
    """The mirrored banks stay digest-identical under arbitrary inputs
    (observe() raises MirrorDesyncError otherwise)."""
    session = build(delta, verify=True)
    session.run(stream_from_values(np.array(values)))


@settings(max_examples=25, deadline=None)
@given(values=values_strategy, delta=delta_strategy)
def test_bank_determinism(values, delta):
    stream = stream_from_values(np.array(values))
    a = [d.sent for d in build(delta, verify=False).run(stream)]
    b = [d.sent for d in build(delta, verify=False).run(stream)]
    assert a == b
