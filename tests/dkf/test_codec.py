"""Unit and property tests for the binary message codec."""

import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dkf.protocol import (
    AckMessage,
    HeartbeatMessage,
    ResyncMessage,
    UpdateMessage,
    decode_message,
    encode_message,
)
from repro.errors import ConfigurationError, CorruptMessageError

finite = st.floats(min_value=-1e12, max_value=1e12, allow_nan=False)


def update(source_id="s0", seq=3, k=7, values=(1.5, -2.5), digest=None):
    return UpdateMessage(
        source_id=source_id, seq=seq, k=k, value=np.array(values), digest=digest
    )


def resync(source_id="s0", seq=4, k=9, n=3, m=2):
    rng = np.random.default_rng(0)
    a = rng.normal(size=(n, n))
    return ResyncMessage(
        source_id=source_id,
        seq=seq,
        k=k,
        x=rng.normal(size=n),
        p=a @ a.T,
        value=rng.normal(size=m),
    )


class TestRoundTrips:
    def test_update_round_trip(self):
        msg = update()
        decoded = decode_message(encode_message(msg), ["s0", "s1"])
        assert isinstance(decoded, UpdateMessage)
        assert decoded.source_id == "s0"
        assert decoded.seq == 3 and decoded.k == 7
        assert np.array_equal(decoded.value, msg.value)
        assert decoded.digest is None

    def test_update_with_digest_round_trip(self):
        msg = update(digest=b"12345678")
        decoded = decode_message(encode_message(msg), ["s0"])
        assert decoded.digest == b"12345678"
        assert np.array_equal(decoded.value, msg.value)

    def test_resync_round_trip(self):
        msg = resync(n=4, m=2)
        decoded = decode_message(encode_message(msg), ["s0"], state_dim=4)
        assert isinstance(decoded, ResyncMessage)
        assert np.allclose(decoded.x, msg.x)
        assert np.allclose(decoded.p, msg.p)
        assert np.allclose(decoded.value, msg.value)

    def test_scalar_update(self):
        msg = update(values=(42.0,))
        decoded = decode_message(encode_message(msg), ["s0"])
        assert decoded.value.shape == (1,)


class TestAckAndHeartbeat:
    def test_ack_round_trip(self):
        msg = AckMessage(source_id="s0", seq=12, k=30, resync_requested=True)
        decoded = decode_message(encode_message(msg), ["s0"])
        assert isinstance(decoded, AckMessage)
        assert decoded.seq == 12 and decoded.k == 30
        assert decoded.resync_requested is True

    def test_ack_round_trip_without_resync_flag(self):
        msg = AckMessage(source_id="s0", seq=0, k=0)
        decoded = decode_message(encode_message(msg), ["s0"])
        assert decoded.resync_requested is False

    def test_heartbeat_round_trip(self):
        msg = HeartbeatMessage(source_id="s0", seq=5, k=99)
        decoded = decode_message(encode_message(msg), ["s0"])
        assert isinstance(decoded, HeartbeatMessage)
        assert decoded.seq == 5 and decoded.k == 99


class TestSizeAccounting:
    def test_encoded_length_equals_size_bytes(self):
        """The codec and the traffic accounting cannot drift apart.

        ``size_bytes`` must equal the encoded length *including* the CRC-32
        trailer, for every message class.
        """
        for msg in (
            update(),
            update(values=(1.0,)),
            update(digest=b"abcdefgh"),
            resync(n=2, m=1),
            resync(n=5, m=2),
            AckMessage(source_id="s0", seq=1, k=2),
            AckMessage(source_id="s0", seq=1, k=2, resync_requested=True),
            HeartbeatMessage(source_id="s0", seq=3, k=4),
        ):
            assert len(encode_message(msg)) == msg.size_bytes, msg


class TestErrors:
    def test_unknown_source_hash(self):
        data = encode_message(update(source_id="mystery"))
        with pytest.raises(ConfigurationError):
            decode_message(data, ["other"])

    def test_truncated_message(self):
        with pytest.raises(ConfigurationError):
            decode_message(b"\x01\x02", ["s0"])

    def test_unknown_tag(self):
        # Re-seal the CRC so the frame is *intact* but semantically alien:
        # the decoder must reject the tag, not mistake it for corruption.
        body = b"\x7f" + encode_message(update())[1:-4]
        data = body + struct.pack("!I", zlib.crc32(body) & 0xFFFFFFFF)
        with pytest.raises(ConfigurationError):
            decode_message(data, ["s0"])

    def test_tampered_tag_without_reseal_is_corruption(self):
        data = b"\x7f" + encode_message(update())[1:]
        with pytest.raises(CorruptMessageError):
            decode_message(data, ["s0"])

    def test_resync_requires_state_dim(self):
        data = encode_message(resync())
        with pytest.raises(ConfigurationError):
            decode_message(data, ["s0"])


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(finite, min_size=1, max_size=6),
    seq=st.integers(min_value=0, max_value=2**31 - 1),
    k=st.integers(min_value=0, max_value=2**31 - 1),
    source=st.sampled_from(["s0", "vehicle-17", "zone/nj/4"]),
)
def test_update_round_trip_property(values, seq, k, source):
    msg = UpdateMessage(source_id=source, seq=seq, k=k, value=np.array(values))
    decoded = decode_message(
        encode_message(msg), ["s0", "vehicle-17", "zone/nj/4"]
    )
    assert decoded.source_id == source
    assert decoded.seq == seq and decoded.k == k
    assert np.array_equal(decoded.value, msg.value)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=6),
    m=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=999),
)
def test_resync_round_trip_property(n, m, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    msg = ResyncMessage(
        source_id="s0",
        seq=int(rng.integers(0, 1000)),
        k=int(rng.integers(0, 1000)),
        x=rng.normal(size=n),
        p=a @ a.T,
        value=rng.normal(size=m),
    )
    decoded = decode_message(encode_message(msg), ["s0"], state_dim=n)
    assert np.allclose(decoded.p, msg.p, atol=1e-12)
    assert np.allclose(decoded.x, msg.x)
    assert len(encode_message(msg)) == msg.size_bytes


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(finite, min_size=1, max_size=4),
    seq=st.integers(min_value=0, max_value=2**31 - 1),
    bit=st.integers(min_value=0, max_value=10**9),
    data=st.data(),
)
def test_corruption_never_decodes_silently(values, seq, bit, data):
    """Flipping any single bit of any frame trips the CRC (satellite 6).

    A corrupted frame must raise :class:`CorruptMessageError` -- never
    decode to a wrong-but-plausible message the filters would then apply.
    """
    kind = data.draw(st.sampled_from(["update", "resync", "ack", "heartbeat"]))
    if kind == "update":
        msg = UpdateMessage(
            source_id="s0", seq=seq, k=seq, value=np.array(values)
        )
        state_dim = None
    elif kind == "resync":
        n = len(values)
        rng = np.random.default_rng(seq % 1000)
        a = rng.normal(size=(n, n))
        msg = ResyncMessage(
            source_id="s0", seq=seq, k=seq, x=np.array(values), p=a @ a.T,
            value=np.array(values[:1]),
        )
        state_dim = n
    elif kind == "ack":
        msg = AckMessage(source_id="s0", seq=seq, k=seq)
        state_dim = None
    else:
        msg = HeartbeatMessage(source_id="s0", seq=seq, k=seq)
        state_dim = None
    frame = bytearray(encode_message(msg))
    position = bit % (len(frame) * 8)
    frame[position // 8] ^= 1 << (position % 8)
    with pytest.raises(CorruptMessageError):
        decode_message(bytes(frame), ["s0"], state_dim=state_dim)
