"""Unit tests for the DKF wire protocol and simulated channel."""

import numpy as np
import pytest

from repro.dkf.protocol import (
    CRC_BYTES,
    DIGEST_BYTES,
    FLOAT_BYTES,
    HEADER_BYTES,
    Channel,
    ResyncMessage,
    UpdateMessage,
    periodic_loss,
    random_loss,
)
from repro.errors import ConfigurationError


def update(seq=0, k=0, dim=2, digest=None):
    return UpdateMessage(
        source_id="s0", seq=seq, k=k, value=np.zeros(dim), digest=digest
    )


class TestMessageSizes:
    def test_update_size(self):
        assert (
            update(dim=2).size_bytes
            == HEADER_BYTES + 2 * FLOAT_BYTES + CRC_BYTES
        )

    def test_digest_adds_bytes(self):
        plain = update(dim=1)
        signed = update(dim=1, digest=b"12345678")
        assert signed.size_bytes == plain.size_bytes + DIGEST_BYTES

    def test_resync_size_counts_triangle(self):
        msg = ResyncMessage(
            source_id="s0",
            seq=0,
            k=0,
            x=np.zeros(4),
            p=np.zeros((4, 4)),
            value=np.zeros(2),
        )
        cov_floats = 4 * 5 // 2
        assert (
            msg.size_bytes
            == HEADER_BYTES + (4 + cov_floats + 2) * FLOAT_BYTES + CRC_BYTES
        )

    def test_resync_larger_than_update(self):
        resync = ResyncMessage(
            source_id="s0", seq=0, k=0, x=np.zeros(4), p=np.zeros((4, 4)),
            value=np.zeros(2),
        )
        assert resync.size_bytes > update(dim=2).size_bytes


class TestChannel:
    def test_delivers_and_counts(self):
        received = []
        channel = Channel(deliver=received.append)
        assert channel.send(update())
        assert len(received) == 1
        assert channel.stats.messages_delivered == 1
        assert channel.stats.bytes_delivered == update().size_bytes

    def test_loss_function_drops(self):
        received = []
        channel = Channel(deliver=received.append, loss_fn=lambda i: True)
        assert not channel.send(update())
        assert not received
        assert channel.stats.messages_lost == 1

    def test_resync_never_dropped(self):
        received = []
        channel = Channel(deliver=received.append, loss_fn=lambda i: True)
        channel.send_resync(
            ResyncMessage(
                source_id="s0", seq=1, k=0, x=np.zeros(1), p=np.eye(1),
                value=np.zeros(1),
            )
        )
        assert len(received) == 1
        assert channel.stats.resyncs == 1

    def test_stats_dict(self):
        channel = Channel(deliver=lambda m: None)
        channel.send(update())
        stats = channel.stats.as_dict()
        assert stats["messages_offered"] == 1
        assert stats["messages_delivered"] == 1


class TestLossFunctions:
    def test_periodic_loss(self):
        loss = periodic_loss(3)
        pattern = [loss(i) for i in range(9)]
        assert pattern == [False, False, True] * 3

    def test_periodic_loss_validated(self):
        with pytest.raises(ConfigurationError):
            periodic_loss(0)

    def test_random_loss_rate(self):
        loss = random_loss(0.3, seed=0)
        hits = sum(loss(i) for i in range(2000))
        assert 450 <= hits <= 750

    def test_random_loss_validated(self):
        with pytest.raises(ConfigurationError):
            random_loss(1.0)

    def test_random_loss_deterministic_per_seed(self):
        a = random_loss(0.5, seed=1)
        b = random_loss(0.5, seed=1)
        assert [a(i) for i in range(50)] == [b(i) for i in range(50)]
