"""Unit tests for the DKF central server."""

import numpy as np
import pytest

from repro.dkf.config import DKFConfig
from repro.dkf.protocol import ResyncMessage, UpdateMessage
from repro.dkf.server import DKFServer
from repro.errors import (
    DuplicateSourceError,
    MirrorDesyncError,
    UnknownSourceError,
)
from repro.filters.models import constant_model, linear_model


def config(delta=3.0, model=None, **kwargs):
    return DKFConfig(model=model or constant_model(dims=1), delta=delta, **kwargs)


def update(seq, k, value, digest=None):
    return UpdateMessage(
        source_id="s0", seq=seq, k=k, value=np.atleast_1d(np.asarray(value, float)),
        digest=digest,
    )


class TestRegistration:
    def test_register_and_list(self):
        server = DKFServer()
        server.register("s0", config())
        server.register("s1", config())
        assert server.source_ids == ["s0", "s1"]

    def test_duplicate_rejected(self):
        server = DKFServer()
        server.register("s0", config())
        with pytest.raises(DuplicateSourceError):
            server.register("s0", config())

    def test_unknown_source_rejected(self):
        server = DKFServer()
        with pytest.raises(UnknownSourceError):
            server.tick("ghost", 0)
        with pytest.raises(UnknownSourceError):
            server.value("ghost")

    def test_deregister(self):
        server = DKFServer()
        server.register("s0", config())
        server.deregister("s0")
        assert server.source_ids == []
        with pytest.raises(UnknownSourceError):
            server.deregister("s0")


class TestReceiveAndTick:
    def test_priming_update_builds_filter(self):
        server = DKFServer()
        server.register("s0", config())
        assert not server.is_primed("s0")
        answer = server.receive(update(0, 0, [7.0]))
        assert server.is_primed("s0")
        assert answer[0] == 7.0

    def test_value_before_priming_raises(self):
        server = DKFServer()
        server.register("s0", config())
        with pytest.raises(UnknownSourceError):
            server.value("s0")

    def test_tick_before_priming_returns_none(self):
        server = DKFServer()
        server.register("s0", config())
        assert server.tick("s0", 0) is None

    def test_tick_advances_prediction(self):
        server = DKFServer()
        server.register("s0", config(model=linear_model(dims=1, dt=1.0)))
        server.receive(update(0, 0, [0.0]))
        server.tick("s0", 1)
        server.receive(update(1, 1, [5.0]))
        # After two updates on a ramp the prediction should extrapolate.
        prediction = server.tick("s0", 2)
        assert prediction[0] > 5.0

    def test_answer_is_received_value_on_update(self):
        server = DKFServer()
        server.register("s0", config())
        server.receive(update(0, 0, [3.0]))
        server.tick("s0", 1)
        answer = server.receive(update(1, 1, [9.0]))
        assert answer[0] == 9.0
        assert server.value("s0")[0] == 9.0

    def test_stats(self):
        server = DKFServer()
        server.register("s0", config())
        server.receive(update(0, 0, [1.0]))
        stats = server.stats("s0")
        assert stats["updates_received"] == 1
        assert not stats["desynced"]


class TestSequenceAndDigest:
    def test_sequence_gap_raises_desync(self):
        server = DKFServer()
        server.register("s0", config())
        server.receive(update(0, 0, [1.0]))
        with pytest.raises(MirrorDesyncError):
            server.receive(update(2, 2, [5.0]))  # seq 1 was lost
        assert server.stats("s0")["desynced"]

    def test_digest_mismatch_raises(self):
        server = DKFServer()
        server.register("s0", config(check_mirror=True))
        server.receive(update(0, 0, [1.0], digest=None))
        server.tick("s0", 1)
        with pytest.raises(MirrorDesyncError):
            server.receive(update(1, 1, [2.0], digest=b"deadbeef"))

    def test_matching_digest_accepted(self):
        server = DKFServer()
        server.register("s0", config(check_mirror=True))
        server.receive(update(0, 0, [1.0]))
        state = server._state("s0")
        server.tick("s0", 1)
        # Compute what the digest will be by simulating the update first
        # on a copy of KF_s -- exactly what the mirror does.
        mirror = state.filter.copy()
        mirror.update(np.array([2.0]))
        good_digest = mirror.state_digest()[1][:8]
        server.receive(update(1, 1, [2.0], digest=good_digest))
        assert server.value("s0")[0] == 2.0


class TestResync:
    def test_resync_overwrites_state_and_seq(self):
        server = DKFServer()
        server.register("s0", config())
        server.receive(update(0, 0, [1.0]))
        resync = ResyncMessage(
            source_id="s0", seq=5, k=3, x=np.array([42.0]),
            p=np.eye(1) * 0.5, value=np.array([42.0]),
        )
        answer = server.receive(resync)
        assert answer[0] == 42.0
        # Next update with seq 6 is accepted (the gap was healed).
        server.tick("s0", 4)
        server.receive(update(6, 4, [43.0]))

    def test_resync_primes_unprimed_source(self):
        server = DKFServer()
        server.register("s0", config())
        resync = ResyncMessage(
            source_id="s0", seq=0, k=0, x=np.array([7.0]),
            p=np.eye(1), value=np.array([7.0]),
        )
        server.receive(resync)
        assert server.is_primed("s0")
        assert server.stats("s0")["resyncs_received"] == 1


class TestForecast:
    def test_forecast_extrapolates_trend(self):
        server = DKFServer()
        server.register("s0", config(model=linear_model(dims=1, dt=1.0), delta=0.5))
        for k in range(20):
            if k > 0:
                server.tick("s0", k)
            server.receive(update(k, k, [2.0 * k]))
        forecast = server.forecast("s0", 5)
        assert forecast.shape == (5, 1)
        assert forecast[-1, 0] > forecast[0, 0]

    def test_forecast_before_priming_raises(self):
        server = DKFServer()
        server.register("s0", config())
        with pytest.raises(UnknownSourceError):
            server.forecast("s0", 3)


class TestNonFiniteRejection:
    def primed_server(self, **kwargs):
        server = DKFServer(emit_acks=True, **kwargs)
        server.register("s0", config())
        server.receive(update(0, 0, [5.0]))
        server.take_outbox()
        return server

    def test_nan_update_never_reaches_the_answer(self):
        server = self.primed_server()
        server.tick("s0", 1)
        answer = server.receive(update(1, 1, [np.nan]))
        assert np.all(np.isfinite(answer))
        assert np.all(np.isfinite(server.value("s0")))

    def test_rejected_frame_does_not_advance_sequence(self):
        server = self.primed_server()
        server.tick("s0", 1)
        server.receive(update(1, 1, [np.inf]))
        stats = server.stats("s0")
        assert stats["expected_seq"] == 1
        assert stats["rejected_nonfinite"] == 1
        assert stats["updates_received"] == 1  # only the priming update

    def test_rejection_ack_requests_resync(self):
        server = self.primed_server()
        server.tick("s0", 1)
        server.receive(update(1, 1, [np.nan]))
        acks = server.take_outbox()
        assert acks
        assert acks[-1].resync_requested

    def test_nonfinite_resync_payload_rejected(self):
        server = self.primed_server()
        server.tick("s0", 1)
        message = ResyncMessage(
            source_id="s0",
            seq=1,
            k=1,
            x=np.array([np.nan]),
            p=np.array([[1.0]]),
            value=np.array([5.0]),
        )
        server.receive(message)
        assert server.stats("s0")["rejected_nonfinite"] == 1
        assert np.all(np.isfinite(server.value("s0")))


class TestDeregisterLeaks:
    def test_deregister_purges_queued_acks(self):
        server = DKFServer(emit_acks=True)
        server.register("s0", config())
        server.register("s1", config())
        server.receive(update(0, 0, [1.0]))
        server.receive(
            UpdateMessage(
                source_id="s1", seq=0, k=0, value=np.array([2.0])
            )
        )
        server.deregister("s0")
        remaining = server.take_outbox()
        assert all(a.source_id != "s0" for a in remaining)
        assert any(a.source_id == "s1" for a in remaining)

    def test_deregister_drops_source_gauges(self):
        from repro.obs.telemetry import Telemetry

        telemetry = Telemetry()
        server = DKFServer(emit_acks=True, telemetry=telemetry)
        server.register("s0", config())
        server.receive(update(0, 0, [1.0]))
        telemetry.gauge("answer_value", 1.0, "s0")
        telemetry.count("updates_total", "s0")

        def gauges_for(source_id):
            return [
                g
                for g in telemetry.metrics.gauges()
                if ("source", source_id) in g.labels
            ]

        assert gauges_for("s0")
        server.deregister("s0")
        assert gauges_for("s0") == []
        # Lifetime counters survive: they remain true after teardown.
        counters = [
            c
            for c in telemetry.metrics.counters()
            if ("source", "s0") in c.labels
        ]
        assert counters
