"""Tests for per-attribute precision widths and vector smoothing
(paper Section 6, future-work item 4: multiple queries with multiple
attributes)."""

import numpy as np
import pytest

from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.errors import ConfigurationError, DimensionError
from repro.filters.models import constant_model, linear_model
from repro.filters.smoothing import VectorSmoother
from repro.streams.base import stream_from_values


def xy_stream(n=200, x_slope=1.0, y_slope=0.0, y_noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    k = np.arange(n, dtype=float)
    x = x_slope * k
    y = y_slope * k + (rng.normal(0, y_noise, n) if y_noise else 0.0)
    return stream_from_values(np.stack([x, y], axis=1), name="xy")


class TestVectorDelta:
    def test_tuple_delta_accepted_and_normalised(self):
        config = DKFConfig(model=constant_model(dims=2), delta=[1.0, 5.0])
        assert config.delta == (1.0, 5.0)
        assert config.min_delta == 1.0
        assert np.allclose(config.delta_vector(), [1.0, 5.0])

    def test_scalar_delta_broadcasts(self):
        config = DKFConfig(model=constant_model(dims=2), delta=3.0)
        assert np.allclose(config.delta_vector(), [3.0, 3.0])
        assert config.min_delta == 3.0

    def test_wrong_arity_rejected(self):
        with pytest.raises(DimensionError):
            DKFConfig(model=constant_model(dims=2), delta=(1.0, 2.0, 3.0))

    def test_nonpositive_component_rejected(self):
        with pytest.raises(ConfigurationError):
            DKFConfig(model=constant_model(dims=2), delta=(1.0, 0.0))
        with pytest.raises(ConfigurationError):
            DKFConfig(model=constant_model(dims=2), delta=())

    def test_per_component_guarantee(self):
        """Each component honours its own width."""
        deltas = (0.5, 10.0)
        config = DKFConfig(model=constant_model(dims=2), delta=deltas)
        session = DKFSession(config)
        stream = xy_stream(n=300, x_slope=0.3, y_slope=0.3)
        for decision in session.run(stream):
            errors = np.abs(decision.server_value - decision.source_value)
            assert errors[0] <= 0.5 + 1e-9
            assert errors[1] <= 10.0 + 1e-9

    def test_tight_component_drives_updates(self):
        """A tight width on a moving attribute forces traffic that a loose
        uniform width would not."""
        stream = xy_stream(n=300, x_slope=0.3, y_slope=0.3)
        tight_x = DKFSession(
            DKFConfig(model=constant_model(dims=2), delta=(0.5, 10.0))
        )
        loose = DKFSession(
            DKFConfig(model=constant_model(dims=2), delta=(10.0, 10.0))
        )
        sent_tight = sum(d.sent for d in tight_x.run(stream))
        sent_loose = sum(d.sent for d in loose.run(stream))
        assert sent_tight > 3 * sent_loose

    def test_loose_component_saves_traffic_vs_uniform_tight(self):
        """Relaxing the attribute the query does not care about saves
        messages relative to the uniform-tight installation."""
        stream = xy_stream(n=300, x_slope=0.0, y_slope=0.5)
        uniform = DKFSession(
            DKFConfig(model=constant_model(dims=2), delta=(0.5, 0.5))
        )
        mixed = DKFSession(
            DKFConfig(model=constant_model(dims=2), delta=(0.5, 25.0))
        )
        sent_uniform = sum(d.sent for d in uniform.run(stream))
        sent_mixed = sum(d.sent for d in mixed.run(stream))
        assert sent_mixed < 0.5 * sent_uniform

    def test_with_delta_preserves_tuple_form(self):
        config = DKFConfig(model=constant_model(dims=2), delta=3.0)
        derived = config.with_delta((1.0, 2.0))
        assert derived.delta == (1.0, 2.0)

    def test_mirror_lockstep_with_vector_delta(self):
        config = DKFConfig(
            model=linear_model(dims=2, dt=1.0), delta=(0.5, 5.0)
        )
        session = DKFSession(config, verify_mirror=True)
        stream = xy_stream(n=200, x_slope=1.0, y_slope=2.0, y_noise=1.0)
        session.run(stream)  # raises on any desync


class TestVectorSmoother:
    def test_scalar_factor_broadcasts(self):
        smoother = VectorSmoother(f=1e-9, dims=3)
        assert smoother.dims == 3
        out = smoother.smooth(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(out, [1.0, 2.0, 3.0])  # first sample passthrough

    def test_per_component_factors(self):
        smoother = VectorSmoother(f=np.array([1e-9, 1e3]), dims=2)
        smoother.smooth(np.array([0.0, 0.0]))
        for _ in range(10):
            out = smoother.smooth(np.array([100.0, 100.0]))
        # Component 0 is heavily smoothed; component 1 tracks raw data.
        assert out[0] < 95.0
        assert out[1] > 99.0

    def test_shape_validation(self):
        smoother = VectorSmoother(f=1e-7, dims=2)
        with pytest.raises(ConfigurationError):
            smoother.smooth(np.array([1.0]))
        with pytest.raises(ConfigurationError):
            VectorSmoother(f=np.array([1.0, 2.0, 3.0]), dims=2)
        with pytest.raises(ConfigurationError):
            VectorSmoother(f=1e-7, dims=0)

    def test_copy_lockstep(self):
        a = VectorSmoother(f=1e-5, dims=2)
        a.smooth(np.array([1.0, 2.0]))
        b = a.copy()
        for v in ([2.0, 4.0], [3.0, 1.0]):
            assert np.array_equal(a.smooth(np.array(v)), b.smooth(np.array(v)))

    def test_reset(self):
        smoother = VectorSmoother(f=1e-7, dims=2)
        smoother.smooth(np.array([5.0, 5.0]))
        smoother.reset()
        assert not smoother.primed
        out = smoother.smooth(np.array([9.0, 9.0]))
        assert np.allclose(out, [9.0, 9.0])


class TestSmoothedVectorSession:
    def test_2d_smoothed_session_guarantee(self):
        rng = np.random.default_rng(1)
        values = np.cumsum(rng.normal(0, 2.0, size=(300, 2)), axis=0)
        stream = stream_from_values(values, name="walk2d")
        config = DKFConfig(
            model=linear_model(dims=2, dt=1.0), delta=5.0, smoothing_f=1e-3
        )
        session = DKFSession(config, verify_mirror=True)
        for decision in session.run(stream):
            error = np.max(np.abs(decision.server_value - decision.source_value))
            assert error <= 5.0 + 1e-9
