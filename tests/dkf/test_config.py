"""Unit tests for DKF configuration."""

import pytest

from repro.dkf.config import DKFConfig
from repro.errors import ConfigurationError
from repro.filters.models import constant_model, linear_model


class TestDKFConfig:
    def test_basic_construction(self):
        config = DKFConfig(model=linear_model(dims=2), delta=3.0)
        assert config.delta == 3.0
        assert not config.smoothed

    def test_smoothing_flag(self):
        config = DKFConfig(model=constant_model(), delta=1.0, smoothing_f=1e-7)
        assert config.smoothed

    def test_zero_smoothing_factor_counts_as_smoothed(self):
        config = DKFConfig(model=constant_model(), delta=1.0, smoothing_f=0.0)
        assert config.smoothed

    def test_name_derives_from_model(self):
        config = DKFConfig(model=linear_model(dims=2, dt=0.1), delta=3.0)
        assert "linear" in config.name

    def test_name_includes_smoothing(self):
        config = DKFConfig(model=constant_model(), delta=1.0, smoothing_f=1e-7)
        assert "F=1e-07" in config.name

    def test_explicit_label_wins(self):
        config = DKFConfig(model=constant_model(), delta=1.0, label="mine")
        assert config.name == "mine"

    def test_with_delta_copies(self):
        base = DKFConfig(model=constant_model(), delta=1.0, smoothing_f=1e-7)
        derived = base.with_delta(5.0)
        assert derived.delta == 5.0
        assert derived.smoothing_f == 1e-7
        assert base.delta == 1.0

    def test_with_smoothing_copies(self):
        base = DKFConfig(model=constant_model(), delta=1.0)
        derived = base.with_smoothing(1e-5)
        assert derived.smoothed
        assert not base.smoothed

    def test_equality_for_engine_reinstall_check(self):
        a = DKFConfig(model=constant_model(), delta=1.0)
        b = DKFConfig(model=constant_model(), delta=1.0)
        # Models are distinct (frozen dataclass with array fields compares
        # by identity through numpy); same-instance configs compare equal.
        assert a.with_delta(1.0).delta == b.delta

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DKFConfig(model=constant_model(), delta=0.0)
        with pytest.raises(ConfigurationError):
            DKFConfig(model=constant_model(), delta=-1.0)
        with pytest.raises(ConfigurationError):
            DKFConfig(model=constant_model(), delta=1.0, smoothing_f=-1e-9)
        with pytest.raises(ConfigurationError):
            DKFConfig(model=constant_model(), delta=1.0, smoothing_r=0.0)
        with pytest.raises(ConfigurationError):
            DKFConfig(model=constant_model(), delta=1.0, p0_scale=0.0)
