"""The sans-IO stepper mirrors the engine's per-source tick exactly.

:class:`~repro.dkf.stepper.SourceStepper` exists so the wall-clock wire
runtime can reuse the protocol logic the tick engine runs inline.  The
parity test drives two identical :class:`DKFSource` endpoints through
the same readings -- one via the stepper, one via the hand-inlined
engine sequence (``sample`` -> ``note_sent`` -> ``poll_transport``) --
and requires identical messages and identical transport counters at
every instant.  The remaining cases pin the stepper's own contract:
decoupled clocks, reading functions, and ack feedback.
"""

import numpy as np
import pytest

from repro.dkf.config import DKFConfig, TransportPolicy
from repro.dkf.server import DKFServer
from repro.dkf.source import DKFSource
from repro.dkf.stepper import SourceStepper
from repro.filters.models import constant_model
from repro.streams.base import StreamRecord

SOURCE = "s0"


def _config(delta=0.8):
    return DKFConfig(model=constant_model(dims=1), delta=delta)


def _values(n=60, seed=3):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.normal(0, 0.4, n)) + 10.0


def test_stepper_matches_inlined_engine_sequence():
    transport = TransportPolicy(
        ack_timeout_ticks=4, heartbeat_interval_ticks=5
    )
    stepped = SourceStepper(
        DKFSource(SOURCE, _config(), transport)
    )
    inlined = DKFSource(SOURCE, _config(), transport)
    values = _values()

    for k, value in enumerate(values):
        via_stepper = stepped.step(k, np.array([value]))

        # The engine's per-source tick, hand-inlined.
        record = StreamRecord(
            k=k, timestamp=float(k), value=np.array([value])
        )
        step = inlined.sample(record)
        expected = []
        if step.message is not None:
            inlined.note_sent(step.message, k)
            expected.append(step.message)
        expected.extend(inlined.poll_transport(k))

        assert len(via_stepper) == len(expected), f"instant {k}"
        for ours, theirs in zip(via_stepper, expected):
            assert type(ours) is type(theirs)
            assert ours.seq == theirs.seq
            assert ours.k == theirs.k

    assert stepped.source.updates_sent == inlined.updates_sent
    assert stepped.source.retransmits == inlined.retransmits
    assert stepped.source.heartbeats_sent == inlined.heartbeats_sent
    assert stepped.source.pending_acks == inlined.pending_acks
    # δ-suppression actually happened (the parity is not vacuous).
    assert stepped.source.updates_sent < len(values)


def test_stepper_round_trip_primes_server_and_settles():
    # Perfect wire: every message delivered, every ack fed back.
    stepper = SourceStepper(DKFSource(SOURCE, _config()))
    server = DKFServer(emit_acks=True)
    server.register(SOURCE, _config())
    values = _values(40)

    for k, value in enumerate(values):
        for message in stepper.step(k, np.array([value])):
            server.receive(message)
        server.advance_clock(k + 1)
        for ack in server.take_outbox():
            stepper.on_ack(ack, k)

    assert server.is_primed(SOURCE)
    assert stepper.source.pending_acks == 0
    # δ-tolerance: the server's answer tracks the source within δ.
    assert abs(server.value(SOURCE)[0] - values[-1]) <= 0.8 + 1e-9


def test_step_wall_clock_decoupled_from_sampling_index():
    # The wire runtime passes now != k: retransmission deadlines must
    # ride `now`, not the reading index.
    transport = TransportPolicy(ack_timeout_ticks=3)
    stepper = SourceStepper(DKFSource(SOURCE, _config(), transport))
    sent = stepper.step(0, np.array([5.0]), now=100)
    assert len(sent) == 1
    assert stepper.source.pending_acks == 1
    # Not due at now=102 (deadline is 100 + 3)...
    assert stepper.poll(102) == []
    # ...due at 103, as a resync snapshot.
    overdue = stepper.poll(103)
    assert len(overdue) == 1
    assert stepper.source.retransmits == 1


def test_reading_fn_supplies_values():
    stepper = SourceStepper(
        DKFSource(SOURCE, _config()),
        reading_fn=lambda k: np.array([float(k)]),
    )
    [message] = stepper.step(0)
    assert message.value[0] == 0.0


def test_step_without_value_or_reading_fn_raises():
    stepper = SourceStepper(DKFSource(SOURCE, _config()))
    with pytest.raises(ValueError):
        stepper.step(0)


def test_poll_cuts_heartbeats_when_idle():
    transport = TransportPolicy(
        ack_timeout_ticks=50, heartbeat_interval_ticks=4
    )
    stepper = SourceStepper(DKFSource(SOURCE, _config(), transport))
    server = DKFServer(emit_acks=True)
    server.register(SOURCE, _config())
    for message in stepper.step(0, np.array([1.0])):
        server.receive(message)
    for ack in server.take_outbox():
        stepper.on_ack(ack, 0)
    # Silence: suppressed readings, heartbeat cadence takes over.
    beats = 0
    for now in range(1, 13):
        for message in stepper.poll(now):
            beats += 1
    assert beats == stepper.source.heartbeats_sent
    assert beats >= 2
