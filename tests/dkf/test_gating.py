"""Tests for the glitch-gate suppression (Section 3.1
advantage 5 turned into a protocol feature)."""

import numpy as np
import pytest

from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.errors import ConfigurationError
from repro.filters.models import constant_model, linear_model
from repro.streams.base import stream_from_values
from repro.streams.noise import add_spikes


def spiky_flat_stream(n=400, level=100.0, rate=0.03, magnitude=300.0, seed=5):
    base = stream_from_values(np.full(n, level), name="flat")
    return add_spikes(base, rate=rate, magnitude=magnitude, seed=seed)


def config(gate=None, limit=3, delta=5.0, model=None):
    return DKFConfig(
        model=model or constant_model(dims=1),
        delta=delta,
        outlier_gate_factor=gate,
        outlier_gate_limit=limit,
    )


class TestGateSuppressesSpikes:
    def test_gated_session_sends_far_less_on_spiky_stream(self):
        stream = spiky_flat_stream()
        plain = DKFSession(config(gate=None))
        gated = DKFSession(config(gate=10.0))
        plain_sent = sum(d.sent for d in plain.run(stream))
        gated_sent = sum(d.sent for d in gated.run(stream))
        assert gated_sent < plain_sent / 2

    def test_gate_counts_reported(self):
        stream = spiky_flat_stream()
        session = DKFSession(config(gate=10.0))
        session.run(stream)
        assert session.source.readings_gated > 0

    def test_mirror_lockstep_with_gating(self):
        """Gated readings skip both filters identically -- lock-step must
        survive (the session verifies digests each step)."""
        stream = spiky_flat_stream()
        session = DKFSession(config(gate=10.0), verify_mirror=True)
        session.run(stream)  # raises on desync

    def test_clean_stream_unaffected_by_gate(self, ramp_stream):
        """Without glitches the gate must never fire: identical decisions
        with and without it."""
        cfg = config(gate=1e6, delta=1.0, model=linear_model(dims=1, dt=1.0))
        plain = DKFSession(cfg.with_delta(1.0))
        ungated = DKFSession(
            DKFConfig(model=linear_model(dims=1, dt=1.0), delta=1.0)
        )
        a = [d.sent for d in plain.run(ramp_stream)]
        b = [d.sent for d in ungated.run(ramp_stream)]
        assert a == b


class TestGateYieldsToRegimeChanges:
    def test_sustained_level_shift_transmits_within_limit(self):
        """A genuine step change looks like repeated outliers; after the
        consecutive-gate limit the source must transmit and restore the
        bound."""
        values = np.concatenate([np.full(50, 0.0), np.full(50, 500.0)])
        stream = stream_from_values(values, name="step")
        limit = 3
        session = DKFSession(config(gate=10.0, limit=limit))
        decisions = session.run(stream)
        # The shift happens at k=50; a transmission must occur within
        # `limit` gated instants.
        post_shift_sent = [d.sent for d in decisions[50 : 50 + limit + 1]]
        assert any(post_shift_sent)
        # And the steady state after the shift is in-bound again.
        late = decisions[60:]
        for d in late:
            error = np.max(np.abs(d.server_value - d.source_value))
            assert error <= 5.0 + 1e-9

    def test_guarantee_waived_only_at_gated_instants(self):
        stream = spiky_flat_stream()
        session = DKFSession(config(gate=10.0))
        for record in stream:
            # Recompute through the source step to know gating status.
            server_before = None
            decision = session.observe(record)
            error = np.max(np.abs(decision.server_value - decision.source_value))
            if error > 5.0 + 1e-9:
                # Over-bound is only permissible when the gate fired, which
                # on this flat stream means the reading was a spike.
                assert abs(record.value[0] - 100.0) > 5.0
            del server_before


class TestValidation:
    def test_gate_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            config(gate=1.0)
        with pytest.raises(ConfigurationError):
            config(gate=0.5)
        with pytest.raises(ConfigurationError):
            config(gate=-1.0)

    def test_gate_limit_validated(self):
        with pytest.raises(ConfigurationError):
            config(gate=9.0, limit=0)

    def test_reset_clears_gate_counters(self):
        stream = spiky_flat_stream()
        session = DKFSession(config(gate=10.0))
        session.run(stream)
        session.reset()
        assert session.source.readings_gated == 0
