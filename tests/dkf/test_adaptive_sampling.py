"""Unit tests for the adaptive-sampling DKF session."""

import numpy as np

from repro.dkf.adaptive_sampling import AdaptiveSamplingSession
from repro.dkf.config import DKFConfig
from repro.filters.innovation import AdaptiveSamplingController
from repro.filters.models import constant_model, linear_model
from repro.streams.base import stream_from_values


def config(delta=1.0, model=None):
    return DKFConfig(model=model or linear_model(dims=1, dt=1.0), delta=delta)


class TestAdaptiveSampling:
    def test_quiet_stream_skips_readings(self, ramp_stream):
        session = AdaptiveSamplingSession(config(delta=1.0), max_interval=16)
        session.run(ramp_stream)
        assert session.samples_taken < len(ramp_stream) / 2
        assert session.instants_seen == len(ramp_stream)

    def test_volatile_stream_keeps_sampling(self):
        rng = np.random.default_rng(0)
        stream = stream_from_values(rng.normal(0, 100, size=200))
        session = AdaptiveSamplingSession(
            config(delta=1.0, model=constant_model(dims=1)), max_interval=16
        )
        session.run(stream)
        assert session.samples_taken > len(stream) / 2

    def test_first_instant_always_samples(self, ramp_stream):
        session = AdaptiveSamplingSession(config())
        decision = session.observe(ramp_stream[0])
        assert decision.sent  # priming transmits
        assert session.samples_taken == 1

    def test_skipped_instants_answer_from_prediction(self, ramp_stream):
        session = AdaptiveSamplingSession(config(delta=1.0), max_interval=16)
        decisions = session.run(ramp_stream)
        assert session.samples_taken < len(ramp_stream)  # skips happened
        # On a perfect ramp the extrapolated answer stays accurate at
        # every instant, sampled or skipped.
        for decision in decisions:
            error = np.max(np.abs(decision.server_value - decision.source_value))
            assert error < 1.0 + 1e-6

    def test_updates_bounded_by_samples(self, trajectory_small):
        session = AdaptiveSamplingSession(
            DKFConfig(model=linear_model(dims=2, dt=0.1), delta=5.0),
            max_interval=4,
        )
        session.run(trajectory_small)
        assert session.updates_sent <= session.samples_taken

    def test_custom_controller_respected(self, ramp_stream):
        controller = AdaptiveSamplingController(
            delta=1.0, min_interval=1, max_interval=2
        )
        session = AdaptiveSamplingSession(config(delta=1.0), controller=controller)
        session.run(ramp_stream)
        # Interval capped at 2: at least half the instants sample.
        assert session.samples_taken >= len(ramp_stream) // 2

    def test_reset(self, ramp_stream):
        session = AdaptiveSamplingSession(config(delta=1.0))
        session.run(ramp_stream)
        session.reset()
        assert session.samples_taken == 0
        assert session.instants_seen == 0
        first = session.observe(ramp_stream[0])
        assert first.sent

    def test_name_annotated(self):
        session = AdaptiveSamplingSession(config())
        assert "adaptive-sampling" in session.name
