"""BatchStreamEngine vs StreamEngine: report equality on clean runs.

The batch engine must be a drop-in for the scalar engine on every
supported workload.  These tests run both engines over the same seeded
64-source corpus and require identical reports, identical per-source
server stats, identical transmission ledgers and answers within 1e-9 --
the PR's acceptance bar.  The remaining tests pin the deliberate API
differences: features the synchronous batch transport cannot honour
raise :class:`ConfigurationError` with guidance instead of silently
degrading.
"""

import numpy as np
import pytest

from repro.dkf.config import DKFConfig, TransportPolicy
from repro.dsms.engine import StreamEngine
from repro.dsms.network import LinkConfig
from repro.dsms.query import ContinuousQuery
from repro.errors import ConfigurationError
from repro.filters.models import linear_model, sinusoidal_model
from repro.resilience.config import OverloadPolicy, ResilienceConfig
from repro.scale.engine import BatchStreamEngine
from repro.streams.base import stream_from_values

N_SOURCES = 64
TICKS = 200


def _corpus(n=N_SOURCES, ticks=TICKS, seed=42):
    rng = np.random.default_rng(seed)
    return {
        f"s{i:03d}": np.cumsum(rng.normal(0.1 * (i % 5 - 2), 1.0, ticks))
        for i in range(n)
    }


def _build(cls, corpus, delta=1.5, **kw):
    model = linear_model(dims=1)
    eng = cls(**kw)
    for sid, vals in corpus.items():
        eng.add_source(sid, model, stream_from_values(vals, name=sid))
    for sid in corpus:
        eng.submit_query(
            ContinuousQuery(source_id=sid, delta=delta, query_id=f"q-{sid}")
        )
    return eng


@pytest.fixture(scope="module")
def engines():
    corpus = _corpus()
    scalar = _build(StreamEngine, corpus)
    batch = _build(BatchStreamEngine, corpus)
    executed = (scalar.run(), batch.run())
    return scalar, batch, executed


def test_run_accounting_matches(engines):
    scalar, batch, (ea, eb) = engines
    assert ea == eb
    assert scalar.ticks == batch.ticks


def test_reports_identical(engines):
    scalar, batch, _ = engines
    ra, rb = scalar.report().to_dict(), batch.report().to_dict()
    energy_a = ra.pop("per_source_energy")
    energy_b = rb.pop("per_source_energy")
    assert ra == rb
    assert energy_a == energy_b
    assert rb["updates_sent"] > 0
    assert rb["updates_sent"] < rb["readings"]  # δ suppression is active


def test_server_stats_identical(engines):
    scalar, batch, _ = engines
    for sid in _corpus():
        assert scalar.server.stats(sid) == batch.stats(sid)


def test_answers_within_tolerance(engines):
    scalar, batch, _ = engines
    ans_a = {a.query_id: a for a in scalar.answers()}
    ans_b = {a.query_id: a for a in batch.answers()}
    assert set(ans_a) == set(ans_b) and len(ans_a) == N_SOURCES
    for qid, a in ans_a.items():
        b = ans_b[qid]
        delta = np.abs(np.array(a.value) - np.array(b.value)).max()
        assert delta <= 1e-9
        assert abs(a.confidence - b.confidence) <= 1e-9
        for field in (
            "source_id",
            "k",
            "precision",
            "staleness_ticks",
            "degraded",
            "quarantined",
        ):
            assert getattr(a, field) == getattr(b, field), (qid, field)


def test_value_and_forecast_match_server(engines):
    scalar, batch, _ = engines
    for sid in list(_corpus())[:8]:
        np.testing.assert_allclose(
            batch.value(sid), scalar.server.value(sid), atol=1e-9, rtol=0
        )
        np.testing.assert_allclose(
            batch.forecast(sid, 5),
            scalar.server.forecast(sid, 5),
            atol=1e-9,
            rtol=0,
        )
        assert abs(
            batch.confidence(sid) - scalar.server.confidence(sid)
        ) <= 1e-9


def test_transport_policy_parity():
    """Non-default ack timeouts route rows down the slow path; results hold."""
    corpus = _corpus(n=8, ticks=120, seed=3)
    model = linear_model(dims=1)

    def build(cls):
        eng = cls()
        for sid, vals in corpus.items():
            eng.add_source(
                sid,
                model,
                stream_from_values(vals, name=sid),
                transport=TransportPolicy(ack_timeout_ticks=4),
            )
            eng.submit_query(
                ContinuousQuery(source_id=sid, delta=1.0, query_id=f"q-{sid}")
            )
        return eng

    a, b = build(StreamEngine), build(BatchStreamEngine)
    a.run()
    b.run()
    assert a.report().to_dict() == b.report().to_dict()
    for sid in corpus:
        assert a.server.stats(sid) == b.stats(sid)


def test_retire_and_resubmit_parity():
    corpus = _corpus(n=4, ticks=150, seed=9)
    model = linear_model(dims=1)

    def drive(cls):
        eng = _build(cls, corpus, delta=1.0)
        for _ in range(50):
            eng.step()
        eng.retire_query("q-s001")
        for _ in range(40):
            eng.step()
        eng.submit_query(
            ContinuousQuery(source_id="s001", delta=1.0, query_id="q2-s001")
        )
        eng.run()
        return eng

    a, b = drive(StreamEngine), drive(BatchStreamEngine)
    assert a.report().to_dict() == b.report().to_dict()
    ans_a = {x.query_id: x for x in a.answers()}
    ans_b = {x.query_id: x for x in b.answers()}
    assert set(ans_a) == set(ans_b)
    for qid in ans_a:
        np.testing.assert_allclose(
            np.array(ans_a[qid].value),
            np.array(ans_b[qid].value),
            atol=1e-9,
            rtol=0,
        )


def test_sharding_by_model_signature():
    eng = BatchStreamEngine()
    m1 = linear_model(dims=1)
    m2 = linear_model(dims=2)
    rng = np.random.default_rng(0)
    for i in range(4):
        sid = f"a{i}"
        eng.add_source(sid, m1, stream_from_values(rng.normal(size=50), name=sid))
        eng.submit_query(ContinuousQuery(source_id=sid, delta=1.0))
    for i in range(3):
        sid = f"b{i}"
        eng.add_source(sid, m2, stream_from_values(rng.normal(size=(50, 2)), name=sid))
        eng.submit_query(ContinuousQuery(source_id=sid, delta=1.0))
    assert len(eng.shards) == 2
    assert sorted(len(s.ids) for s in eng.shards) == [3, 4]
    eng.run()
    report = eng.report()
    assert report.readings == 4 * 50 + 3 * 50


# ----------------------------------------------------------------------
# Deliberate API differences: loud errors, not silent degradation
# ----------------------------------------------------------------------


def _one_source_engine(**kw):
    eng = BatchStreamEngine(**kw)
    eng.add_source(
        "s0", linear_model(dims=1), stream_from_values(np.zeros(10), name="s0")
    )
    return eng


def test_rejects_latent_links():
    eng = BatchStreamEngine()
    with pytest.raises(ConfigurationError, match="synchronous"):
        eng.add_source(
            "s0",
            linear_model(dims=1),
            stream_from_values(np.zeros(10), name="s0"),
            link=LinkConfig(latency_ticks=2),
        )


def test_rejects_time_varying_models():
    eng = BatchStreamEngine()
    eng.add_source(
        "s0",
        sinusoidal_model(omega=0.2, theta=0.0),
        stream_from_values(np.zeros(10), name="s0"),
    )
    with pytest.raises(ConfigurationError, match="time-varying"):
        eng.submit_query(ContinuousQuery(source_id="s0", delta=1.0))


def test_rejects_smoothing_queries():
    eng = _one_source_engine()
    with pytest.raises(ConfigurationError, match="smoothing"):
        eng.submit_query(
            ContinuousQuery(source_id="s0", delta=1.0, smoothing_f=0.5)
        )


def test_rejects_scalar_only_config_flags():
    model = linear_model(dims=1)
    with pytest.raises(ConfigurationError, match="mirror"):
        BatchStreamEngine._validate_config(
            DKFConfig(model=model, delta=1.0, check_mirror=True)
        )
    with pytest.raises(ConfigurationError, match="outlier"):
        BatchStreamEngine._validate_config(
            DKFConfig(model=model, delta=1.0, outlier_gate_factor=4.0)
        )


def test_rejects_overload_policy():
    res = ResilienceConfig(
        overload=OverloadPolicy(
            inbox_capacity=32, drain_per_tick=4, cooldown_ticks=8
        )
    )
    with pytest.raises(ConfigurationError, match="overload"):
        BatchStreamEngine(resilience=res)


def test_scalar_object_accessors_raise_with_guidance():
    eng = _one_source_engine()
    for attr in ("server", "fabric", "sources"):
        with pytest.raises(ConfigurationError):
            getattr(eng, attr)


def test_scale_report_shape():
    corpus = _corpus(n=8, ticks=30, seed=1)
    eng = _build(BatchStreamEngine, corpus)
    eng.run()
    rep = eng.scale_report()
    assert sum(s["rows"] for s in rep["shards"]) == 8
    assert len(rep["shards"]) >= 1
    assert rep["rebalances"] == 0
    assert rep["workers"] == 0
