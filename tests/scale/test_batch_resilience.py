"""Chaos parity: the batch engine survives what the scalar engine survives.

The full drill from the resilience suite -- burst loss, NaN sensor
fault, spike fault, a source crash/restart, a mid-run server crash with
checkpoint+WAL recovery -- runs on both engines with identical seeds.
Everything observable must match: the recovery summary, the watchdog
trip ledger, every link counter, every server stat, every answer.
"""

import numpy as np
import pytest

from repro.dkf.config import TransportPolicy
from repro.dsms.engine import StreamEngine
from repro.dsms.faults import FaultSchedule
from repro.dsms.query import ContinuousQuery
from repro.errors import ConfigurationError
from repro.filters.models import linear_model
from repro.resilience.config import ResilienceConfig
from repro.resilience.supervisor import RestartPolicy
from repro.resilience.watchdog import WatchdogPolicy
from repro.scale.engine import BatchStreamEngine
from repro.streams.base import stream_from_values

T = 300
CRASH_AT, RECOVER_AT = 225, 235
MODEL = linear_model(dims=1)
DELTAS = {"hi": 1.0, "mid": 1.5, "lo": 2.0}


def _truth():
    rng = np.random.default_rng(7)
    return {
        "hi": np.cumsum(rng.normal(0.4, 1.0, T)),
        "mid": np.cumsum(rng.normal(-0.2, 1.2, T)),
        "lo": np.cumsum(rng.normal(0.0, 0.8, T)),
    }


def _schedule():
    return (
        FaultSchedule(seed=7)
        .burst_loss("hi", p_enter=0.05, p_exit=0.3)
        .sensor("mid", "nan", start=80, duration=12)
        .sensor("lo", "spike", start=120, duration=6, magnitude=40.0)
        .crash("lo", at=150, restart_at=160)
    )


def _build(cls, ckdir, truth):
    res = ResilienceConfig(
        checkpoint_dir=ckdir,
        checkpoint_every=50,
        watchdog=WatchdogPolicy(),
        restart=RestartPolicy(),
    )
    eng = cls(resilience=res)
    for sid, vals in truth.items():
        eng.add_source(
            sid,
            MODEL,
            stream_from_values(vals, name=sid),
            transport=TransportPolicy(ack_timeout_ticks=4),
        )
    for sid in truth:
        eng.submit_query(
            ContinuousQuery(source_id=sid, delta=DELTAS[sid], query_id=f"q-{sid}")
        )
    eng.inject_faults(_schedule())
    return eng


def _drive(eng):
    recovery = None
    for _ in range(T):
        tick = eng.ticks
        if tick == CRASH_AT:
            eng.crash_server()
        if tick == RECOVER_AT:
            recovery = eng.recover()
        eng.step()
    eng.settle()
    return recovery


@pytest.fixture(scope="module")
def drilled(tmp_path_factory):
    truth = _truth()
    scalar = _build(StreamEngine, tmp_path_factory.mktemp("ck-scalar"), truth)
    batch = _build(
        BatchStreamEngine, tmp_path_factory.mktemp("ck-batch"), truth
    )
    return scalar, batch, _drive(scalar), _drive(batch)


def test_recovery_summaries_identical(drilled):
    _, _, rec_a, rec_b = drilled
    assert rec_a is not None
    assert rec_a == rec_b
    assert rec_a["restored_sources"] == 3
    assert rec_a["wal_replayed"] > 0
    assert rec_a["dropped_while_down"] > 0


def test_reports_identical_under_chaos(drilled):
    scalar, batch, _, _ = drilled
    ra, rb = scalar.report().to_dict(), batch.report().to_dict()
    assert ra == rb
    assert rb["messages_lost"] > 0  # burst loss actually fired
    assert rb["retransmits"] > 0


def test_server_stats_identical_under_chaos(drilled):
    scalar, batch, _, _ = drilled
    for sid in DELTAS:
        assert scalar.server.stats(sid) == batch.stats(sid)
    # The NaN window must have been rejected, not folded in.
    assert batch.stats("mid")["rejected_nonfinite"] == 0  # rejected at source
    assert scalar.server.stats("hi")["gaps_detected"] > 0


def test_watchdog_ledgers_identical(drilled):
    scalar, batch, _, _ = drilled
    wa, wb = scalar.resilience_report(), batch.resilience_report()
    assert wa.get("watchdog") == wb.get("watchdog")
    assert wa["dropped_while_down"] == wb["dropped_while_down"]
    assert wa["recoveries"] == wb["recoveries"] == 1


def test_answers_identical_under_chaos(drilled):
    scalar, batch, _, _ = drilled
    ans_a = {x.query_id: x for x in scalar.answers()}
    ans_b = {x.query_id: x for x in batch.answers()}
    assert set(ans_a) == set(ans_b)
    for qid, a in ans_a.items():
        b = ans_b[qid]
        delta = np.abs(np.array(a.value) - np.array(b.value)).max()
        assert delta <= 1e-9, (qid, delta)
        for field in ("k", "precision", "staleness_ticks", "degraded",
                      "quarantined"):
            assert getattr(a, field) == getattr(b, field), (qid, field)


def test_checkpoint_restart_cold(tmp_path):
    """A fresh batch engine recovers from another run's checkpoint dir."""
    truth = _truth()
    first = _build(BatchStreamEngine, tmp_path, truth)
    for _ in range(120):
        first.step()
    saved = first.checkpoint()
    assert saved > 0
    snapshot = first.checkpoint_store.load()
    assert snapshot is not None
    assert set(snapshot["sources"]) == set(DELTAS)


def test_quarantine_on_persistent_nan(tmp_path):
    """A sensor stuck on NaN walks the ladder into quarantine on both."""
    rng = np.random.default_rng(3)
    vals = np.cumsum(rng.normal(0.1, 1.0, 200))

    def build(cls, ckdir):
        res = ResilienceConfig(
            watchdog=WatchdogPolicy(
                reject_limit=3, escalation_grace_ticks=2, hysteresis_ticks=4
            ),
            restart=RestartPolicy(),
            checkpoint_dir=ckdir,
        )
        eng = cls(resilience=res)
        eng.add_source("s0", MODEL, stream_from_values(vals, name="s0"))
        eng.submit_query(
            ContinuousQuery(source_id="s0", delta=1.0, query_id="q0")
        )
        eng.inject_faults(
            FaultSchedule(seed=1).sensor("s0", "nan", start=50, duration=150)
        )
        return eng

    a = build(StreamEngine, tmp_path / "a")
    b = build(BatchStreamEngine, tmp_path / "b")
    a.run()
    b.run()
    wa, wb = a.resilience_report(), b.resilience_report()
    assert wa.get("watchdog") == wb.get("watchdog")
    (ans_a,) = a.answers()
    (ans_b,) = b.answers()
    assert ans_a.quarantined == ans_b.quarantined
    assert ans_a.degraded == ans_b.degraded
    assert a.server.stats("s0") == b.stats("s0")


def test_crash_recover_requires_resilience():
    eng = BatchStreamEngine()
    eng.add_source("s0", MODEL, stream_from_values(np.zeros(10), name="s0"))
    with pytest.raises(ConfigurationError):
        eng.crash_server()
    with pytest.raises(ConfigurationError):
        eng.recover()
    with pytest.raises(ConfigurationError):
        eng.checkpoint()


def test_rebalance_split_preserves_results(tmp_path):
    """Forcing a mid-run shard split must not change any outcome."""
    truth = _truth()
    plain = _build_plain(truth)
    split = _build_plain(truth, latency_budget_us=0.0)
    plain.run()
    split.run()
    assert split.scale_report()["rebalances"] > 0
    assert len(split.shards) > len(plain.shards)
    assert plain.report().to_dict() == split.report().to_dict()
    for sid in DELTAS:
        assert plain.stats(sid) == split.stats(sid)


def _build_plain(truth, **kw):
    eng = BatchStreamEngine(**kw)
    for sid, vals in truth.items():
        eng.add_source(sid, MODEL, stream_from_values(vals, name=sid))
        eng.submit_query(
            ContinuousQuery(source_id=sid, delta=DELTAS[sid], query_id=f"q-{sid}")
        )
    return eng


class TestLinkFaultsAreScalarOnly:
    """The batch transport is synchronous: there is no link pipeline to
    sever or slow, so partition/asymmetric schedules must be rejected
    loudly instead of silently doing nothing."""

    def _engine(self):
        eng = BatchStreamEngine()
        eng.add_source(
            "s0", MODEL, stream_from_values(np.zeros(8), name="s0")
        )
        eng.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
        return eng

    def test_partition_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            self._engine().inject_faults(
                FaultSchedule().partition({"s0"}, {"server"}, at=10)
            )

    def test_asymmetric_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            self._engine().inject_faults(
                FaultSchedule().asymmetric_link("s0", 3, at=0, duration=5)
            )

    def test_plain_schedules_still_accepted(self):
        self._engine().inject_faults(
            FaultSchedule().crash("s0", at=2, restart_at=4)
        )
