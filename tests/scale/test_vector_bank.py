"""Property tests: VectorKalmanBank rows == independent scalar filters.

The bank's whole value proposition is that a row is bit-for-bit (well,
ULP-for-ULP) the same filter as a scalar :class:`KalmanFilter`, just
dispatched once per bank instead of once per stream.  The long-haul
property test drives 32 rows and 32 scalar twins through 500 seeded
ticks with a random masked update pattern -- every tick predicts all
rows but corrects only a random subset, exactly the shape the δ
suppression protocol produces -- and pins state, covariance and gain
within 1e-10.
"""

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    NonFiniteMeasurementError,
    NotPositiveDefiniteError,
)
from repro.filters.models import constant_model, linear_model, sinusoidal_model
from repro.scale.vector_bank import VectorKalmanBank, require_static_model

ROWS = 32
TICKS = 500
TOL = 1e-10


def _scalar_gain(twin):
    """K = P^- H^T S^-1 from the twin's current prior (static models)."""
    h, r, p = twin.h_at(0), twin.r_at(0), twin.p
    s = h @ p @ h.T + r
    return np.linalg.solve(s.T, (p @ h.T).T).T


def _bank_and_twins(model, rng, rows=ROWS):
    bank = VectorKalmanBank(model)
    twins = []
    z0 = rng.normal(0.0, 5.0, size=(rows, model.measurement_dim))
    for i in range(rows):
        bank.add_row()
        twins.append(model.build_filter(z0[i]))
    bank.prime(np.arange(rows), z0)
    return bank, twins


def test_rejects_time_varying_models():
    model = sinusoidal_model(omega=0.26, theta=0.0)
    with pytest.raises(ConfigurationError):
        require_static_model(model)
    with pytest.raises(ConfigurationError):
        VectorKalmanBank(model)


def test_prime_matches_build_filter():
    rng = np.random.default_rng(11)
    model = linear_model(dims=2, dt=0.5)
    bank, twins = _bank_and_twins(model, rng, rows=8)
    for i, twin in enumerate(twins):
        np.testing.assert_allclose(bank.x_row(i), twin.x, atol=0)
        np.testing.assert_allclose(bank.p_row(i), twin.p, atol=0)
        assert bank.k_row(i) == twin.k == 0


@pytest.mark.parametrize(
    "model",
    [
        constant_model(),
        linear_model(dims=1, dt=1.0),
        linear_model(dims=2, dt=0.1),
    ],
    ids=["constant", "linear-1d", "linear-2d"],
)
def test_masked_long_haul_parity(model):
    """500 ticks, random masked updates: state/cov/gain within 1e-10."""
    rng = np.random.default_rng(99)
    bank, twins = _bank_and_twins(model, rng)
    all_rows = np.arange(ROWS)
    m = model.measurement_dim
    for _ in range(TICKS):
        bank.predict(all_rows)
        for twin in twins:
            twin.predict()
        mask = rng.random(ROWS) < 0.4
        rows = np.flatnonzero(mask)
        if rows.size == 0:
            continue
        z = rng.normal(0.0, 3.0, size=(rows.size, m))
        gains = bank.update(rows, z)
        for j, i in enumerate(rows):
            scalar_gain = _scalar_gain(twins[i])
            twins[i].update(z[j])
            np.testing.assert_allclose(
                gains[j], scalar_gain, atol=TOL, rtol=0
            )
        for i in range(ROWS):
            np.testing.assert_allclose(
                bank.x_row(i), twins[i].x, atol=TOL, rtol=0
            )
            np.testing.assert_allclose(
                bank.p_row(i), twins[i].p, atol=TOL, rtol=0
            )
    assert all(bank.k_row(i) == twins[i].k for i in range(ROWS))


def test_set_state_resync_parity():
    """Mid-run resync (set_state) keeps rows glued to their twins."""
    rng = np.random.default_rng(5)
    model = linear_model(dims=1)
    bank, twins = _bank_and_twins(model, rng, rows=4)
    rows = np.arange(4)
    for tick in range(60):
        bank.predict(rows)
        for twin in twins:
            twin.predict()
        if tick == 30:
            x_new = rng.normal(size=(4, model.state_dim))
            p_new = np.stack([np.eye(model.state_dim) * 2.5] * 4)
            bank.set_state(rows, x_new, p_new)
            for i, twin in enumerate(twins):
                twin.set_state(x_new[i], p_new[i])
        z = rng.normal(0.0, 2.0, size=(4, model.measurement_dim))
        bank.update(rows, z)
        for i, twin in enumerate(twins):
            twin.update(z[i])
    for i, twin in enumerate(twins):
        np.testing.assert_allclose(bank.x_row(i), twin.x, atol=TOL, rtol=0)
        np.testing.assert_allclose(bank.p_row(i), twin.p, atol=TOL, rtol=0)


def test_set_state_rejects_indefinite_covariance():
    model = linear_model(dims=1)
    bank = VectorKalmanBank(model)
    bank.add_row()
    bad_p = np.diag([1.0, -1.0])[None]
    with pytest.raises(NotPositiveDefiniteError):
        bank.set_state(np.array([0]), np.zeros((1, 2)), bad_p)


def test_update_rejects_non_finite_measurements():
    rng = np.random.default_rng(3)
    model = linear_model(dims=1)
    bank, _ = _bank_and_twins(model, rng, rows=2)
    z = np.array([[1.0], [np.nan]])
    with pytest.raises(NonFiniteMeasurementError):
        bank.update(np.array([0, 1]), z)


def test_forecast_k_matches_scalar_predict_k():
    rng = np.random.default_rng(21)
    model = linear_model(dims=2, dt=0.2)
    bank, twins = _bank_and_twins(model, rng, rows=6)
    rows = np.arange(6)
    z = rng.normal(size=(6, model.measurement_dim))
    bank.predict(rows)
    bank.update(rows, z)
    for twin, zi in zip(twins, z):
        twin.predict()
        twin.update(zi)
    for steps in (0, 1, 7, 32):
        fc = bank.forecast_k(rows, steps)
        for i, twin in enumerate(twins):
            np.testing.assert_allclose(
                fc[i], twin.predict_k(steps), atol=TOL, rtol=0
            )


def test_export_import_round_trip():
    rng = np.random.default_rng(17)
    model = linear_model(dims=1)
    bank, _ = _bank_and_twins(model, rng, rows=3)
    rows = np.arange(3)
    bank.predict(rows)
    bank.update(rows, rng.normal(size=(3, 1)))
    payload = bank.export_row(1)
    other = VectorKalmanBank(model)
    for _ in range(3):
        other.add_row()
    other.import_row(1, payload)
    np.testing.assert_allclose(other.x_row(1), bank.x_row(1), atol=0)
    np.testing.assert_allclose(other.p_row(1), bank.p_row(1), atol=0)
    assert other.k_row(1) == bank.k_row(1)
    assert other.export_row(0) is None  # unprimed rows export nothing


def test_take_rows_preserves_state():
    rng = np.random.default_rng(29)
    model = linear_model(dims=1)
    bank, _ = _bank_and_twins(model, rng, rows=6)
    rows = np.arange(6)
    bank.predict(rows)
    bank.update(rows, rng.normal(size=(6, 1)))
    half = bank.take_rows(np.array([1, 3, 5]))
    for new_i, old in enumerate((1, 3, 5)):
        np.testing.assert_allclose(half.x_row(new_i), bank.x_row(old), atol=0)
        np.testing.assert_allclose(half.p_row(new_i), bank.p_row(old), atol=0)
