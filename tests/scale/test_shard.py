"""Shard placement, signatures, frame accounting and split mechanics."""

import numpy as np
import pytest

from repro.dkf.config import DKFConfig, TransportPolicy
from repro.dkf.protocol import HeartbeatMessage, ResyncMessage, UpdateMessage
from repro.errors import ConfigurationError
from repro.filters.models import constant_model, linear_model, sinusoidal_model
from repro.scale.shard import ShardRouter, ShardRuntime, model_signature


def _shard(model=None, rows=4, ticks=60, seed=0, delta=1.0, **shard_kw):
    model = model or linear_model(dims=1)
    shard = ShardRuntime("t", model, **shard_kw)
    rng = np.random.default_rng(seed)
    for i in range(rows):
        vals = np.cumsum(rng.normal(0.0, 1.0, ticks))
        shard.add_row(
            f"s{i}",
            DKFConfig(model=model, delta=delta),
            TransportPolicy(),
            vals,
            np.arange(ticks, dtype=float),
        )
    return shard


def _drive(shard, ticks):
    for t in range(ticks):
        shard.step(t)
        shard.flush_acks()


def test_signature_equal_for_equal_matrices():
    a = linear_model(dims=1, dt=1.0)
    b = linear_model(dims=1, dt=1.0)
    assert a is not b
    assert model_signature(a) == model_signature(b)


def test_signature_differs_across_models():
    sigs = {
        model_signature(constant_model()),
        model_signature(linear_model(dims=1)),
        model_signature(linear_model(dims=1, dt=0.5)),
        model_signature(linear_model(dims=2)),
    }
    assert len(sigs) == 4


def test_signature_rejects_time_varying():
    with pytest.raises(ConfigurationError):
        model_signature(sinusoidal_model(omega=0.3, theta=0.0))


def test_router_groups_by_signature():
    router = ShardRouter()
    m1a, m1b = linear_model(dims=1), linear_model(dims=1)
    m2 = constant_model()
    s1 = router.place(m1a)
    assert router.place(m1b) is s1  # equal signature, same shard
    s2 = router.place(m2)
    assert s2 is not s1
    assert len(router.shards) == 2


def test_router_caps_shard_rows():
    model = linear_model(dims=1)
    router = ShardRouter(max_shard_rows=2)
    config = DKFConfig(model=model, delta=1.0)
    vals = np.zeros(5)
    ts = np.arange(5, dtype=float)
    homes = []
    for i in range(5):
        shard = router.place(model)
        shard.add_row(f"s{i}", config, TransportPolicy(), vals, ts)
        homes.append(shard)
    assert len(router.shards) == 3
    assert [s.rows for s in router.shards] == [2, 2, 1]


def test_duplicate_row_rejected():
    shard = _shard(rows=1)
    model = shard.model
    with pytest.raises(ConfigurationError):
        shard.add_row(
            "s0",
            DKFConfig(model=model, delta=1.0),
            TransportPolicy(),
            np.zeros(5),
            np.arange(5, dtype=float),
        )


def test_dim_mismatch_rejected():
    shard = _shard(model=linear_model(dims=2), rows=0)
    with pytest.raises(ConfigurationError):
        shard.add_row(
            "bad",
            DKFConfig(model=shard.model, delta=1.0),
            TransportPolicy(),
            np.zeros(5),  # 1-D values into a 2-attribute model
            np.arange(5, dtype=float),
        )


def test_frame_sizes_match_protocol_messages():
    model = linear_model(dims=2)
    shard = _shard(model=model, rows=0)
    z = np.zeros(model.measurement_dim)
    x = np.zeros(model.state_dim)
    p = np.eye(model.state_dim)
    assert shard.update_bytes == UpdateMessage("_", 0, 0, z).size_bytes
    assert shard.resync_bytes == ResyncMessage("_", 0, 0, x, p, z).size_bytes
    assert shard.heartbeat_bytes == HeartbeatMessage("_", 0, 0).size_bytes


def test_split_preserves_rows_and_state():
    shard = _shard(rows=6, ticks=80)
    _drive(shard, 40)
    before = {
        sid: (
            shard.server.x_row(shard.index[sid]).copy(),
            shard.server.p_row(shard.index[sid]).copy(),
            int(shard.samples_seen[shard.index[sid]]),
            int(shard.updates_sent[shard.index[sid]]),
            int(shard.expected_seq[shard.index[sid]]),
        )
        for sid in shard.ids
    }
    low, high = shard.split()
    assert sorted(low.ids + high.ids) == sorted(shard.ids)
    assert low.rows + high.rows == 6
    assert abs(low.rows - high.rows) <= 1
    for part in (low, high):
        for sid in part.ids:
            row = part.index[sid]
            x, p, seen, sent, expected = before[sid]
            np.testing.assert_array_equal(part.server.x_row(row), x)
            np.testing.assert_array_equal(part.server.p_row(row), p)
            assert part.samples_seen[row] == seen
            assert part.updates_sent[row] == sent
            assert part.expected_seq[row] == expected


def test_split_halves_continue_like_the_whole():
    """Driving the two halves onward equals driving the unsplit shard."""
    whole = _shard(rows=6, ticks=100, seed=5)
    forked = _shard(rows=6, ticks=100, seed=5)
    _drive(whole, 50)
    _drive(forked, 50)
    low, high = forked.split()
    for t in range(50, 100):
        whole.step(t)
        whole.flush_acks()
        for part in (low, high):
            part.step(t)
            part.flush_acks()
    for sid in whole.ids:
        part = low if sid in low.index else high
        row_w, row_p = whole.index[sid], part.index[sid]
        np.testing.assert_array_equal(
            whole.server.x_row(row_w), part.server.x_row(row_p)
        )
        assert whole.updates_sent[row_w] == part.updates_sent[row_p]
        assert whole.bytes_delivered[row_w] == part.bytes_delivered[row_p]


def test_router_replace_after_split():
    router = ShardRouter()
    model = linear_model(dims=1)
    config = DKFConfig(model=model, delta=1.0)
    shard = router.place(model)
    for i in range(4):
        shard.add_row(
            f"s{i}", config, TransportPolicy(), np.zeros(5),
            np.arange(5, dtype=float),
        )
    parts = shard.split()
    router.replace(shard, parts)
    assert shard not in router.shards
    assert len(router.shards) == 2
    # New placements of the same signature land in an existing half.
    assert router.place(model) in parts


def _lossy_shard(rows=6, ticks=120, seed=9, lost=frozenset(range(12, 17))):
    """A shard whose row 1 drops a burst of frames mid-run.

    The loss predicate receives the per-row offered-frame index, so the
    burst lands while updates are in flight and the row goes through
    the full slow-path recovery arc: gap detection, desync, resync.
    """
    shard = _shard(rows=rows, ticks=ticks, seed=seed)
    shard.set_link_faults(
        shard.index["s1"], lambda index: index in lost, None
    )
    return shard


def test_split_mid_loss_recovery_matches_unsplit_control():
    """Splitting while a row is desynced must lose nothing: the halves,
    driven onward, end exactly where the unsplit control ends."""
    whole = _lossy_shard()
    forked = _lossy_shard()
    _drive(whole, 24)  # inside the loss burst: retransmissions pending
    _drive(forked, 24)
    assert forked.lost[forked.index["s1"]] > 0, "burst never fired"
    low, high = forked.split()
    lossy_part = low if "s1" in low.index else high
    # The loss predicate travels with the row (indices renumbered).
    assert lossy_part.lossy[lossy_part.index["s1"]]
    for t in range(24, 120):
        whole.step(t)
        whole.flush_acks()
        for part in (low, high):
            part.step(t)
            part.flush_acks()
    for sid in whole.ids:
        part = low if sid in low.index else high
        row_w, row_p = whole.index[sid], part.index[sid]
        np.testing.assert_array_equal(
            whole.server.x_row(row_w), part.server.x_row(row_p)
        )
        # No update lost or double-applied anywhere on the recovery
        # path: sequence space, retransmit and resync counters agree.
        assert whole.expected_seq[row_w] == part.expected_seq[row_p]
        assert whole.updates_sent[row_w] == part.updates_sent[row_p]
        assert whole.link_resyncs[row_w] == part.link_resyncs[row_p]
        assert whole.gaps_detected[row_w] == part.gaps_detected[row_p]
        assert (
            whole.duplicates_ignored[row_w]
            == part.duplicates_ignored[row_p]
        )
    # Recovery actually completed: the lossy row re-synced.
    assert not whole.desynced[whole.index["s1"]]


def test_merge_mid_loss_recovery_matches_unsplit_control():
    """merge() is the state-preserving inverse of split() even for rows
    mid-way through slow-path loss recovery."""
    whole = _lossy_shard()
    forked = _lossy_shard()
    _drive(whole, 24)
    _drive(forked, 24)
    low, high = forked.split()
    # Drive the halves apart briefly, then weld them back while the
    # lossy row still holds pending retransmissions.
    for t in range(24, 28):
        for part in (low, high):
            part.step(t)
            part.flush_acks()
        whole.step(t)
        whole.flush_acks()
    merged = low.merge(high)
    assert sorted(merged.ids) == sorted(whole.ids)
    lossy_row = merged.index["s1"]
    assert merged.lossy[lossy_row]
    assert merged.pending[lossy_row], "retransmissions should be in flight"
    for t in range(28, 120):
        whole.step(t)
        whole.flush_acks()
        merged.step(t)
        merged.flush_acks()
    for sid in whole.ids:
        row_w, row_m = whole.index[sid], merged.index[sid]
        np.testing.assert_array_equal(
            whole.server.x_row(row_w), merged.server.x_row(row_m)
        )
        assert whole.expected_seq[row_w] == merged.expected_seq[row_m]
        assert whole.updates_sent[row_w] == merged.updates_sent[row_m]
        assert whole.link_resyncs[row_w] == merged.link_resyncs[row_m]
        assert (
            whole.bytes_delivered[row_w] == merged.bytes_delivered[row_m]
        )
    assert not merged.desynced[lossy_row]


def test_merge_rejects_incompatible_shards():
    shard = _shard(rows=2)
    with pytest.raises(ConfigurationError):
        shard.merge(shard)
    other = _shard(model=constant_model(q=0.2, r=1.0), rows=2)
    with pytest.raises(ConfigurationError):
        shard.merge(other)


def test_export_import_row_round_trip():
    shard = _shard(rows=3, ticks=60, seed=2)
    _drive(shard, 30)
    payload = shard.export_row(1)
    assert payload is not None
    other = _shard(rows=3, ticks=60, seed=2)
    other.import_row(1, payload)
    np.testing.assert_array_equal(
        other.server.x_row(1), shard.server.x_row(1)
    )
    assert other.expected_seq[1] == shard.expected_seq[1]
    assert other.last_k[1] == shard.last_k[1]
