"""Worker-pool determinism: pooled runs are bit-equal to inline runs.

The contract (see ``repro.scale.pool``): a shard's trajectory depends
only on its initial state and the tick range, so mapping shards over
worker processes must change nothing observable -- not one counter, not
one answer bit.
"""

import numpy as np

from repro.dsms.query import ContinuousQuery
from repro.filters.models import constant_model, linear_model
from repro.scale.engine import BatchStreamEngine
from repro.scale.pool import WorkerPool, run_shard
from repro.streams.base import stream_from_values

TICKS = 150


def _build(workers=0):
    """Two model signatures -> two shards, so the pool has real work."""
    eng = BatchStreamEngine(workers=workers)
    rng = np.random.default_rng(13)
    m1, m2 = linear_model(dims=1), constant_model()
    for i in range(6):
        sid = f"lin{i}"
        vals = np.cumsum(rng.normal(0.2, 1.0, TICKS))
        eng.add_source(sid, m1, stream_from_values(vals, name=sid))
        eng.submit_query(
            ContinuousQuery(source_id=sid, delta=1.5, query_id=f"q-{sid}")
        )
    for i in range(6):
        sid = f"con{i}"
        vals = 5.0 + rng.normal(0.0, 0.5, TICKS)
        eng.add_source(sid, m2, stream_from_values(vals, name=sid))
        eng.submit_query(
            ContinuousQuery(source_id=sid, delta=0.8, query_id=f"q-{sid}")
        )
    return eng


def test_parallel_flag():
    assert not WorkerPool(0).parallel
    assert not WorkerPool(1).parallel
    assert WorkerPool(2).parallel
    assert WorkerPool(-3).workers == 0


def test_pooled_run_matches_inline():
    inline, pooled = _build(workers=0), _build(workers=2)
    assert len(pooled.shards) == 2
    ei, ep = inline.run(), pooled.run()
    assert ei == ep
    assert inline.ticks == pooled.ticks
    assert inline.report().to_dict() == pooled.report().to_dict()
    for sid in list(inline._where):
        assert inline.stats(sid) == pooled.stats(sid)
    ans_i = {a.query_id: a for a in inline.answers()}
    ans_p = {a.query_id: a for a in pooled.answers()}
    assert set(ans_i) == set(ans_p)
    for qid, a in ans_i.items():
        b = ans_p[qid]
        np.testing.assert_array_equal(np.array(a.value), np.array(b.value))
        assert a.confidence == b.confidence
        assert a.k == b.k


def test_pooled_run_respects_max_ticks():
    inline, pooled = _build(workers=0), _build(workers=2)
    assert inline.run(max_ticks=40) == pooled.run(max_ticks=40) == 40
    assert inline.ticks == pooled.ticks == 40
    assert inline.report().to_dict() == pooled.report().to_dict()
    # Finish the runs; the tail must agree too.
    assert inline.run() == pooled.run()
    assert inline.report().to_dict() == pooled.report().to_dict()


def test_run_shard_is_engine_step_loop():
    """run_shard (the worker entry) replays the engine's inline loop."""
    a, b = _build(), _build()
    shard_a = a.shards[0]
    shard_b = b.shards[0]
    for t in range(30):
        shard_a.step(t)
        shard_a.flush_acks()
    out = run_shard((shard_b, 0, 30))
    assert out is shard_b
    np.testing.assert_array_equal(shard_a.server.x, shard_b.server.x)
    np.testing.assert_array_equal(shard_a.updates_sent, shard_b.updates_sent)
    np.testing.assert_array_equal(shard_a.pos, shard_b.pos)


def test_single_shard_runs_inline():
    """<2 shards never pays process dispatch, whatever the worker count."""
    pool = WorkerPool(workers=8)
    eng = _build()
    shard = eng.shards[0]
    (out,) = pool.run([shard], 0, 10)
    assert out is shard  # same object => inline path


def test_pool_falls_back_inline_when_dispatch_fails(monkeypatch):
    import multiprocessing

    class RefusingContext:
        def Pool(self, *args, **kwargs):
            raise RuntimeError("dispatch refused")

    monkeypatch.setattr(
        multiprocessing, "get_context", lambda *a, **k: RefusingContext()
    )
    inline, pooled = _build(workers=0), _build(workers=2)
    assert inline.run() == pooled.run()
    assert inline.report().to_dict() == pooled.report().to_dict()
