"""Unit and property tests for sliding-window aggregates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.dsms.windows import WindowedAggregator
from repro.errors import ConfigurationError
from repro.filters.models import linear_model
from repro.streams.base import stream_from_values

finite = st.floats(min_value=-1e5, max_value=1e5, allow_nan=False)


class TestExactness:
    """With delta -> the bound, the point values must match numpy exactly
    (the aggregator's arithmetic, independent of the bound semantics)."""

    def test_matches_numpy_on_random_data(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=300)
        window = 17
        agg = WindowedAggregator(window=window, delta=1.0)
        for i, v in enumerate(data):
            agg.push(v)
            lo = max(0, i - window + 1)
            chunk = data[lo : i + 1]
            assert np.isclose(agg.sum().value, chunk.sum())
            assert np.isclose(agg.avg().value, chunk.mean())
            assert np.isclose(agg.min().value, chunk.min())
            assert np.isclose(agg.max().value, chunk.max())

    def test_occupancy_during_warmup(self):
        agg = WindowedAggregator(window=5, delta=1.0)
        for i in range(3):
            agg.push(float(i))
        assert agg.occupancy == 3
        for i in range(10):
            agg.push(float(i))
        assert agg.occupancy == 5


class TestBounds:
    def test_sum_bound_scales_with_occupancy(self):
        agg = WindowedAggregator(window=10, delta=0.5)
        agg.push(1.0)
        assert agg.sum().error_bound == 0.5
        for _ in range(20):
            agg.push(1.0)
        assert agg.sum().error_bound == 10 * 0.5

    def test_avg_bound_is_delta(self):
        agg = WindowedAggregator(window=10, delta=0.5)
        for _ in range(10):
            agg.push(3.0)
        assert agg.avg().error_bound == 0.5

    def test_window_avg_over_dkf_trace_covers_truth(self):
        """End to end: feed a DKF session's server values; the certified
        window average must cover the true window average of the source
        values."""
        rng = np.random.default_rng(1)
        truth = np.cumsum(rng.normal(0, 1.0, size=400))
        stream = stream_from_values(truth, name="walk")
        delta = 2.0
        session = DKFSession(
            DKFConfig(model=linear_model(dims=1, dt=1.0), delta=delta)
        )
        window = 25
        agg = WindowedAggregator(window=window, delta=delta)
        for i, decision in enumerate(session.run(stream)):
            agg.push(float(decision.server_value[0]))
            lo = max(0, i - window + 1)
            true_avg = truth[lo : i + 1].mean()
            answer = agg.avg()
            assert answer.lower - 1e-9 <= true_avg <= answer.upper + 1e-9


class TestLifecycle:
    def test_unprimed_queries_raise(self):
        agg = WindowedAggregator(window=5, delta=1.0)
        for query in (agg.sum, agg.avg, agg.min, agg.max):
            with pytest.raises(ConfigurationError):
                query()

    def test_reset(self):
        agg = WindowedAggregator(window=5, delta=1.0)
        agg.push(1.0)
        agg.reset()
        assert not agg.primed
        agg.push(7.0)
        assert agg.max().value == 7.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WindowedAggregator(window=0, delta=1.0)
        with pytest.raises(ConfigurationError):
            WindowedAggregator(window=5, delta=0.0)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(finite, min_size=1, max_size=80),
    window=st.integers(min_value=1, max_value=20),
)
def test_min_max_match_numpy_for_any_sequence(values, window):
    """The monotonic-deque min/max equals the naive window min/max."""
    agg = WindowedAggregator(window=window, delta=1.0)
    for i, v in enumerate(values):
        agg.push(v)
        lo = max(0, i - window + 1)
        chunk = values[lo : i + 1]
        assert agg.min().value == min(chunk)
        assert agg.max().value == max(chunk)
