"""Tests for the deterministic fault-injection harness and the engine's
behaviour under crashes, sensor faults, burst loss and corruption."""

import numpy as np
import pytest

from repro.dkf.config import TransportPolicy
from repro.dsms.engine import StreamEngine
from repro.dsms.faults import FaultSchedule, GilbertElliottLoss
from repro.dsms.query import ContinuousQuery
from repro.errors import ConfigurationError
from repro.filters.models import constant_model, linear_model
from repro.streams.base import StreamRecord, stream_from_values


def ramp(n, slope=1.0):
    return stream_from_values(np.arange(n, dtype=float) * slope, name="ramp")


def record(k, value):
    return StreamRecord(k=k, timestamp=float(k), value=np.atleast_1d(float(value)))


def build_engine(n=200, schedule=None, transport=None):
    engine = StreamEngine()
    engine.add_source(
        "s0",
        linear_model(dims=1, dt=1.0),
        ramp(n),
        transport=transport,
    )
    engine.submit_query(ContinuousQuery("s0", delta=0.5, query_id="q"))
    if schedule is not None:
        engine.inject_faults(schedule)
    return engine


class TestScheduleValidation:
    def test_unknown_sensor_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().sensor("s0", "gremlins", start=0, duration=5)

    def test_restart_before_crash_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().crash("s0", at=10, restart_at=5)

    def test_spike_needs_magnitude(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().sensor("s0", "spike", start=0, duration=1)

    def test_duplicate_burst_loss_rejected(self):
        schedule = FaultSchedule().burst_loss("s0", p_enter=0.1, p_exit=0.5)
        with pytest.raises(ConfigurationError):
            schedule.burst_loss("s0", p_enter=0.1, p_exit=0.5)


class TestGilbertElliott:
    def test_deterministic_for_seed(self):
        a = GilbertElliottLoss(p_enter=0.1, p_exit=0.3, seed=7)
        b = GilbertElliottLoss(p_enter=0.1, p_exit=0.3, seed=7)
        assert [a(i) for i in range(500)] == [b(i) for i in range(500)]

    def test_query_order_independent(self):
        sequential = GilbertElliottLoss(p_enter=0.1, p_exit=0.3, seed=7)
        shuffled = GilbertElliottLoss(p_enter=0.1, p_exit=0.3, seed=7)
        forward = [sequential(i) for i in range(100)]
        shuffled(99)  # force the whole chain first
        backward = [shuffled(i) for i in range(100)]
        assert forward == backward

    def test_losses_come_in_bursts(self):
        """With loss_bad=1 and loss_good=0, drops are exactly the bad
        spells -- so consecutive drops must appear (a run length > 1),
        which i.i.d. loss at the same average rate rarely concentrates."""
        loss = GilbertElliottLoss(
            p_enter=0.05, p_exit=0.3, loss_good=0.0, loss_bad=1.0, seed=3
        )
        decisions = [loss(i) for i in range(2000)]
        assert any(decisions)
        longest = run = 0
        for dropped in decisions:
            run = run + 1 if dropped else 0
            longest = max(longest, run)
        assert longest >= 2


class TestSensorFaults:
    def test_nan_fault_blanks_readings(self):
        schedule = FaultSchedule().sensor("s0", "nan", start=5, duration=3)
        out = schedule.transform("s0", 5, record(5, 1.0))
        assert np.isnan(out.value).all()
        untouched = schedule.transform("s0", 8, record(8, 1.0))
        assert untouched.value[0] == 1.0

    def test_dropout_is_nan_under_the_hood(self):
        schedule = FaultSchedule().sensor("s0", "dropout", start=0, duration=1)
        out = schedule.transform("s0", 0, record(0, 42.0))
        assert np.isnan(out.value).all()

    def test_stuck_holds_last_good_reading(self):
        schedule = FaultSchedule().sensor("s0", "stuck", start=2, duration=3)
        schedule.transform("s0", 0, record(0, 10.0))
        schedule.transform("s0", 1, record(1, 11.0))
        stuck = schedule.transform("s0", 2, record(2, 12.0))
        assert stuck.value[0] == 11.0
        still_stuck = schedule.transform("s0", 4, record(4, 14.0))
        assert still_stuck.value[0] == 11.0
        healthy = schedule.transform("s0", 5, record(5, 15.0))
        assert healthy.value[0] == 15.0

    def test_spike_adds_deterministic_outlier(self):
        schedule = FaultSchedule(seed=1).sensor(
            "s0", "spike", start=3, duration=1, magnitude=50.0
        )
        out = schedule.transform("s0", 3, record(3, 1.0))
        assert abs(abs(out.value[0] - 1.0) - 50.0) < 1e-12
        again = FaultSchedule(seed=1).sensor(
            "s0", "spike", start=3, duration=1, magnitude=50.0
        ).transform("s0", 3, record(3, 1.0))
        assert again.value[0] == out.value[0]

    def test_other_sources_untouched(self):
        schedule = FaultSchedule().sensor("s0", "nan", start=0, duration=10)
        out = schedule.transform("s1", 0, record(0, 7.0))
        assert out.value[0] == 7.0

    def test_engine_rejects_nan_without_desync(self):
        schedule = FaultSchedule().sensor("s0", "nan", start=20, duration=5)
        engine = build_engine(n=60, schedule=schedule)
        engine.run()
        engine.settle()
        assert engine.sources["s0"].readings_rejected == 5
        assert not engine.server.stats("s0")["desynced"]


class TestCrashAndRestart:
    def transport(self):
        return TransportPolicy(
            ack_timeout_ticks=4, heartbeat_interval_ticks=8, suspect_after_ticks=10
        )

    def test_answers_degrade_during_outage_and_recover(self):
        schedule = FaultSchedule().crash("s0", at=40, restart_at=80)
        engine = build_engine(n=160, schedule=schedule, transport=self.transport())
        staleness_during_outage = []
        degraded_seen = False
        recovered = False
        for _ in range(160):
            engine.step()
            answer = engine.answer("q")
            if 40 <= engine.ticks < 80:
                staleness_during_outage.append(answer.staleness_ticks)
                degraded_seen = degraded_seen or answer.degraded
            if engine.ticks >= 90:
                recovered = recovered or (
                    not answer.degraded and answer.staleness_ticks <= 2
                )
        assert degraded_seen
        # Silence means staleness can only grow, tick by tick.
        assert staleness_during_outage == sorted(staleness_during_outage)
        assert staleness_during_outage[-1] > staleness_during_outage[0]
        assert recovered

    def test_confidence_decays_during_outage(self):
        schedule = FaultSchedule().crash("s0", at=40, restart_at=80)
        engine = build_engine(n=160, schedule=schedule, transport=self.transport())
        confidence = {}
        for _ in range(160):
            engine.step()
            confidence[engine.ticks] = engine.answer("q").confidence
        assert confidence[79] < confidence[39]
        assert confidence[120] > confidence[79]

    def test_restart_reprimes_via_resync_and_converges(self):
        schedule = FaultSchedule().crash("s0", at=40, restart_at=80)
        engine = build_engine(n=160, schedule=schedule, transport=self.transport())
        engine.run()
        engine.settle()
        stats = engine.server.stats("s0")
        assert not stats["desynced"]
        assert stats["resyncs_received"] >= 1
        # Mirror and server filters converged to the same state.
        mirror = engine.sources["s0"].mirror
        server_filter = engine.server._state("s0").filter  # noqa: SLF001
        assert np.allclose(server_filter.x, mirror.x)
        assert np.allclose(server_filter.p, mirror.p)
        # The final answer tracks the ramp again within precision.
        answer = engine.answer("q")
        assert not answer.degraded

    def test_terminal_crash_ends_the_run(self):
        schedule = FaultSchedule().crash("s0", at=30)
        engine = build_engine(n=500, schedule=schedule)
        engine.run()
        assert engine.ticks < 500
        answer = engine.answer("q")
        assert answer.staleness_ticks >= 0


class TestDeterminism:
    def make_schedule(self, seed=11):
        return (
            FaultSchedule(seed=seed)
            .crash("s0", at=60, restart_at=100)
            .sensor("s0", "spike", start=30, duration=2, magnitude=25.0)
            .burst_loss("s0", p_enter=0.05, p_exit=0.3)
            .corrupt("s0", rate=0.02)
        )

    def run_once(self, seed=11):
        engine = build_engine(
            n=200,
            schedule=self.make_schedule(seed),
            transport=TransportPolicy(ack_timeout_ticks=4),
        )
        engine.run()
        engine.settle()
        return engine.report()

    def test_identical_seeds_identical_reports(self):
        assert self.run_once(seed=11) == self.run_once(seed=11)

    def test_different_seeds_diverge(self):
        a = self.run_once(seed=11)
        b = self.run_once(seed=12)
        # Loss patterns differ, so traffic accounting must differ
        # somewhere (bytes, losses or retransmissions).
        assert a != b

    def test_schedule_object_reusable_across_runs(self):
        schedule = self.make_schedule()
        first = build_engine(
            n=200, schedule=schedule,
            transport=TransportPolicy(ack_timeout_ticks=4),
        )
        first.run()
        first.settle()
        second = build_engine(
            n=200, schedule=schedule,
            transport=TransportPolicy(ack_timeout_ticks=4),
        )
        second.run()
        second.settle()
        assert first.report() == second.report()


class TestFaultSoak:
    def test_burst_loss_plus_crash_converges(self):
        """Acceptance soak: ~10% burst loss, a mid-run crash/restart,
        payload corruption -- and still zero desync escapes plus exact
        filter-state convergence after recovery."""
        schedule = (
            FaultSchedule(seed=5)
            .crash("s0", at=100, restart_at=140)
            .burst_loss("s0", p_enter=0.035, p_exit=0.3)
            .corrupt("s0", rate=0.01)
        )
        engine = StreamEngine()
        values = np.concatenate(
            [np.arange(150, dtype=float), np.arange(150, 0, -1, dtype=float)]
        )
        engine.add_source(
            "s0",
            linear_model(dims=1, dt=1.0),
            stream_from_values(values, name="tent"),
            transport=TransportPolicy(ack_timeout_ticks=4),
        )
        engine.add_source("calm", constant_model(dims=1), ramp(300, slope=0.0))
        engine.submit_query(ContinuousQuery("s0", delta=0.5, query_id="q"))
        engine.submit_query(ContinuousQuery("calm", delta=1.0, query_id="qc"))
        engine.inject_faults(schedule)
        # run() raising MirrorDesyncError anywhere would fail this test:
        # the tolerant server must absorb every gap.
        engine.run()
        engine.settle()
        report = engine.report()
        assert report.messages_lost > 0
        assert report.retransmits > 0
        stats = engine.server.stats("s0")
        assert not stats["desynced"]
        assert stats["resyncs_received"] >= 1
        mirror = engine.sources["s0"].mirror
        server_filter = engine.server._state("s0").filter  # noqa: SLF001
        assert np.allclose(server_filter.x, mirror.x)
        assert np.allclose(server_filter.p, mirror.p)
        # The untouched source was never disturbed.
        assert not engine.server.stats("calm")["desynced"]


class TestPartitionValidation:
    def test_empty_side_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().partition(set(), {"server"}, at=10)

    def test_overlapping_sides_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().partition({"s0", "s1"}, {"s1"}, at=10)

    def test_heal_before_cut_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().partition({"s0"}, {"server"}, at=10, heal_at=10)

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().partition({"s0"}, {"server"}, at=-1)


class TestPartitionPredicates:
    def schedule(self):
        return FaultSchedule().partition(
            {"s0", "s1"}, {"server"}, at=10, heal_at=20
        )

    def test_link_severed_follows_the_schedule_clock(self):
        schedule = self.schedule()
        assert not schedule.link_severed("s0", "server")
        schedule.observe_tick(10)
        assert schedule.link_severed("s0", "server")
        assert schedule.partition_active()
        schedule.observe_tick(20)
        assert not schedule.link_severed("s0", "server")
        assert not schedule.partition_active()

    def test_explicit_tick_overrides_the_clock(self):
        schedule = self.schedule()
        assert schedule.link_severed("s0", "server", tick=15)
        assert not schedule.link_severed("s0", "server", tick=9)

    def test_only_cross_cut_links_severed(self):
        schedule = self.schedule()
        schedule.observe_tick(15)
        # Same side: unaffected.  Unmentioned nodes: unaffected.
        assert not schedule.link_severed("s0", "s1")
        assert not schedule.link_severed("s9", "server")
        # The cut is symmetric.
        assert schedule.link_severed("server", "s1")

    def test_partitioned_nodes_and_describe(self):
        schedule = self.schedule().asymmetric_link(
            "s0", extra_latency_ticks=3, at=5, duration=4
        )
        assert schedule.has_partitions()
        assert schedule.partitioned_nodes() == {"s0", "s1", "server"}
        described = schedule.describe()
        assert described["partitions"] == 1
        assert described["asymmetric_links"] == 1


class TestAsymmetricLinkValidation:
    def test_zero_extra_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().asymmetric_link("s0", 0, at=0, duration=5)

    def test_zero_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().asymmetric_link("s0", 2, at=0, duration=0)

    def test_unknown_direction_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().asymmetric_link(
                "s0", 2, at=0, duration=5, direction="sideways"
            )


class TestAsymmetricLinkWindows:
    def test_override_active_only_inside_the_window(self):
        schedule = FaultSchedule().asymmetric_link(
            "s0", 4, at=10, duration=5, direction="data"
        )
        assert schedule.latency_overrides(9) == {}
        assert schedule.latency_overrides(10) == {"s0": (4, 0)}
        assert schedule.latency_overrides(14) == {"s0": (4, 0)}
        assert schedule.latency_overrides(15) == {}
        assert schedule.asymmetric_links() == {"s0"}

    def test_direction_selects_data_or_ack(self):
        ack = FaultSchedule().asymmetric_link(
            "s0", 3, at=0, duration=2, direction="ack"
        )
        assert ack.latency_overrides(0) == {"s0": (0, 3)}
        both = FaultSchedule().asymmetric_link(
            "s0", 3, at=0, duration=2, direction="both"
        )
        assert both.latency_overrides(0) == {"s0": (3, 3)}

    def test_overlapping_windows_sum_per_direction(self):
        schedule = (
            FaultSchedule()
            .asymmetric_link("s0", 2, at=0, duration=10, direction="data")
            .asymmetric_link("s0", 5, at=5, duration=10, direction="both")
        )
        assert schedule.latency_overrides(2) == {"s0": (2, 0)}
        assert schedule.latency_overrides(7) == {"s0": (7, 5)}
        assert schedule.latency_overrides(12) == {"s0": (5, 5)}


class TestEnginePartition:
    """Scalar-engine integration: a source<->server cut drops offered
    frames (lost), holds piped frames (in_flight) and heals cleanly."""

    def partitioned_engine(self, n=120, heal_at=80, latency=3):
        from repro.dsms.network import LinkConfig

        engine = StreamEngine()
        engine.add_source(
            "s0",
            linear_model(dims=1, dt=1.0),
            ramp(n),
            link=LinkConfig(latency_ticks=latency),
            transport=TransportPolicy(
                ack_timeout_ticks=4,
                heartbeat_interval_ticks=8,
                suspect_after_ticks=10,
            ),
        )
        engine.submit_query(ContinuousQuery("s0", delta=0.5, query_id="q"))
        engine.inject_faults(
            FaultSchedule().partition(
                {"s0"}, {"server"}, at=40, heal_at=heal_at
            )
        )
        return engine

    def test_cut_loses_offered_frames_and_heals(self):
        engine = self.partitioned_engine()
        degraded_seen = False
        for _ in range(120):
            engine.step()
            if 45 <= engine.ticks < 80:
                degraded_seen = degraded_seen or engine.answer("q").degraded
        engine.settle()
        report = engine.report()
        assert degraded_seen
        assert report.messages_lost > 0
        # The healed link carries nothing stranded.
        assert report.in_flight == 0
        # After heal the stream re-converges and the answer is honest.
        assert not engine.server.stats("s0")["desynced"]
        assert not engine.answer("q").degraded

    def test_permanent_cut_reports_stranded_frames_in_flight(self):
        """Satellite 2: frames in the pipe when the drill ends are
        reported ``in_flight``, never silently dropped by settle()."""
        engine = self.partitioned_engine(n=60, heal_at=None, latency=8)
        engine.run()
        engine.settle()
        report = engine.report()
        assert report.in_flight > 0
        offered = report.updates_sent + report.retransmits + report.heartbeats
        delivered = offered - (
            report.messages_lost + report.corrupted + report.in_flight
        )
        assert delivered >= 0
        assert report.messages_lost > 0

    def test_partition_drill_is_deterministic(self):
        first = self.partitioned_engine()
        first.run()
        first.settle()
        second = self.partitioned_engine()
        second.run()
        second.settle()
        assert first.report() == second.report()


class TestEngineAsymmetricLink:
    def asymmetric_engine(self, direction):
        engine = StreamEngine()
        engine.add_source(
            "s0",
            linear_model(dims=1, dt=1.0),
            ramp(160),
            transport=TransportPolicy(ack_timeout_ticks=4),
        )
        engine.submit_query(ContinuousQuery("s0", delta=0.5, query_id="q"))
        if direction is not None:
            engine.inject_faults(
                FaultSchedule().asymmetric_link(
                    "s0", 12, at=40, duration=40, direction=direction
                )
            )
        engine.run()
        engine.settle()
        return engine.report()

    def test_slow_ack_path_triggers_retransmits(self):
        """Delaying only the ack direction defeats the RTT-symmetric
        ack timeout: sources retransmit updates that actually arrived."""
        baseline = self.asymmetric_engine(None)
        slow_acks = self.asymmetric_engine("ack")
        assert slow_acks.retransmits > baseline.retransmits

    def test_data_direction_leaves_ack_latency_alone(self):
        baseline = self.asymmetric_engine(None)
        slow_data = self.asymmetric_engine("data")
        # Delivery still completes (drain-safe) -- no stranded frames.
        assert slow_data.in_flight == baseline.in_flight == 0
