"""Unit tests for historical queries over a synopsis."""

import numpy as np
import pytest

from repro.dkf.config import DKFConfig
from repro.dsms.history import HistoryStore
from repro.dsms.synopsis import KalmanSynopsis
from repro.errors import ConfigurationError
from repro.filters.models import linear_model


def make_store(stream, delta=1.0, dims=1):
    config = DKFConfig(model=linear_model(dims=dims, dt=1.0), delta=delta)
    store = HistoryStore(KalmanSynopsis(config))
    store.ingest(stream)
    return store


class TestPointQueries:
    def test_value_at_within_tolerance(self, ramp_stream):
        store = make_store(ramp_stream, delta=1.0)
        truth = ramp_stream.values()
        for k in (0, 10, 100, len(ramp_stream) - 1):
            answer = store.value_at(k)
            assert np.max(np.abs(answer - truth[k])) <= 1.0 + 1e-9

    def test_out_of_range_rejected(self, ramp_stream):
        store = make_store(ramp_stream)
        with pytest.raises(ConfigurationError):
            store.value_at(-1)
        with pytest.raises(ConfigurationError):
            store.value_at(len(ramp_stream))

    def test_length(self, ramp_stream):
        assert len(make_store(ramp_stream)) == len(ramp_stream)


class TestRangeQueries:
    def test_range_shape_and_accuracy(self, ramp_stream):
        store = make_store(ramp_stream, delta=1.0)
        values = store.range_values(20, 60)
        assert values.shape == (40, 1)
        truth = ramp_stream.values()[20:60]
        assert np.max(np.abs(values - truth)) <= 1.0 + 1e-9

    def test_bad_range_rejected(self, ramp_stream):
        store = make_store(ramp_stream)
        with pytest.raises(ConfigurationError):
            store.range_values(50, 20)
        with pytest.raises(ConfigurationError):
            store.range_values(0, len(ramp_stream) + 1)


class TestWindowAggregates:
    def test_avg_bound_covers_truth(self, ramp_stream):
        delta = 1.0
        store = make_store(ramp_stream, delta=delta)
        truth = ramp_stream.values()[:, 0]
        answer = store.window_aggregate("avg", 10, 50)
        true_avg = truth[10:50].mean()
        assert answer.lower - 1e-9 <= true_avg <= answer.upper + 1e-9
        assert answer.error_bound == delta

    def test_sum_bound_scales(self, ramp_stream):
        store = make_store(ramp_stream, delta=1.0)
        answer = store.window_aggregate("sum", 0, 25)
        assert answer.error_bound == 25.0

    def test_min_max(self, ramp_stream):
        store = make_store(ramp_stream, delta=1.0)
        truth = ramp_stream.values()[:, 0]
        min_ans = store.window_aggregate("min", 30, 70)
        max_ans = store.window_aggregate("max", 30, 70)
        assert min_ans.lower - 1e-9 <= truth[30:70].min() <= min_ans.upper + 1e-9
        assert max_ans.lower - 1e-9 <= truth[30:70].max() <= max_ans.upper + 1e-9

    def test_empty_window_rejected(self, ramp_stream):
        store = make_store(ramp_stream)
        with pytest.raises(ConfigurationError):
            store.window_aggregate("avg", 10, 10)

    def test_component_validated(self, ramp_stream):
        store = make_store(ramp_stream)
        with pytest.raises(ConfigurationError):
            store.window_aggregate("avg", 0, 10, component=5)


class TestCacheLifecycle:
    def test_reingestion_invalidates_cache(self, ramp_stream, constant_stream):
        store = make_store(ramp_stream, delta=1.0)
        ramp_answer = store.value_at(100)[0]
        store.ingest(constant_stream)
        flat_answer = store.value_at(100)[0]
        assert abs(flat_answer - 42.0) <= 1.0 + 1e-9
        assert flat_answer != ramp_answer

    def test_tolerance_exposed(self, ramp_stream):
        assert make_store(ramp_stream, delta=2.5).tolerance == 2.5
