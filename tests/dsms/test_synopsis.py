"""Unit tests for the Kalman stream synopsis."""

import numpy as np
import pytest

from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.dsms.synopsis import KalmanSynopsis
from repro.errors import ConfigurationError
from repro.filters.models import constant_model, linear_model
from repro.streams.base import stream_from_values


def config(delta=1.0, model=None):
    return DKFConfig(model=model or linear_model(dims=1, dt=1.0), delta=delta)


class TestIngest:
    def test_stores_only_updates(self, ramp_stream):
        synopsis = KalmanSynopsis(config(delta=1.0))
        stats = synopsis.ingest(ramp_stream)
        assert stats.original_records == len(ramp_stream)
        assert stats.stored_updates < len(ramp_stream) / 4
        assert stats.compression_ratio > 4

    def test_stored_updates_match_session_decisions(self, ramp_stream):
        synopsis = KalmanSynopsis(config(delta=1.0))
        synopsis.ingest(ramp_stream)
        session = DKFSession(config(delta=1.0))
        sent_ks = [d.k for d in session.run(ramp_stream) if d.sent]
        assert [k for k, _ in synopsis.updates] == sent_ks

    def test_smoothing_config_rejected(self):
        cfg = DKFConfig(
            model=constant_model(dims=1), delta=1.0, smoothing_f=1e-7
        )
        with pytest.raises(ConfigurationError):
            KalmanSynopsis(cfg)


class TestReconstruction:
    def test_reconstruction_error_bounded(self, ramp_stream):
        synopsis = KalmanSynopsis(config(delta=1.0))
        synopsis.ingest(ramp_stream)
        assert synopsis.reconstruction_error(ramp_stream) <= 1.0 + 1e-9

    def test_reconstruction_on_trajectory(self, trajectory_small):
        delta = 5.0
        synopsis = KalmanSynopsis(
            config(delta=delta, model=linear_model(dims=2, dt=0.1))
        )
        stats = synopsis.ingest(trajectory_small)
        assert stats.compression_ratio > 1.5
        assert synopsis.reconstruction_error(trajectory_small) <= delta + 1e-9

    def test_reconstruction_matches_online_server_values(self, ramp_stream):
        """Reconstruction must replay exactly what the server held online."""
        cfg = config(delta=1.0)
        synopsis = KalmanSynopsis(cfg)
        synopsis.ingest(ramp_stream)
        session = DKFSession(cfg)
        online = np.stack(
            [d.server_value for d in session.run(ramp_stream)]
        )
        rebuilt = synopsis.reconstruct().values()
        assert np.allclose(rebuilt, online, atol=1e-12)

    def test_length_mismatch_rejected(self, ramp_stream):
        synopsis = KalmanSynopsis(config())
        synopsis.ingest(ramp_stream)
        other = stream_from_values(np.arange(5, dtype=float))
        with pytest.raises(ConfigurationError):
            synopsis.reconstruction_error(other)

    def test_empty_synopsis_reconstructs_empty(self):
        synopsis = KalmanSynopsis(config())
        assert len(synopsis.reconstruct()) == 0

    def test_stream_metadata_preserved(self, ramp_stream):
        synopsis = KalmanSynopsis(config())
        synopsis.ingest(ramp_stream)
        rebuilt = synopsis.reconstruct()
        assert len(rebuilt) == len(ramp_stream)
        assert "synopsis" in rebuilt.name


class TestSmoothedReconstruction:
    def test_online_replay_beats_rts_on_delta_triggered_log(
        self, trajectory_small
    ):
        """The documented caveat, pinned: a δ-triggered log places updates
        exactly where predictions fail, so the causal replay (which is
        within δ at every decision instant by construction) beats the
        model-trusting RTS pass on manoeuvring data."""
        delta = 5.0
        synopsis = KalmanSynopsis(
            config(delta=delta, model=linear_model(dims=2, dt=0.1))
        )
        synopsis.ingest(trajectory_small)
        online = synopsis.reconstruct().values()
        smoothed = synopsis.reconstruct_smoothed().values()
        truth = trajectory_small.values()
        online_rmse = np.sqrt(np.mean((online - truth) ** 2))
        smoothed_rmse = np.sqrt(np.mean((smoothed - truth) ** 2))
        assert online_rmse < smoothed_rmse
        # And only the online replay carries the δ guarantee.
        assert np.abs(online - truth).max() <= delta + 1e-9

    def test_rts_reconstruction_shape(self, ramp_stream):
        synopsis = KalmanSynopsis(config(delta=1.0))
        synopsis.ingest(ramp_stream)
        rebuilt = synopsis.reconstruct_smoothed()
        assert len(rebuilt) == len(ramp_stream)
        assert "rts" in rebuilt.name

    def test_empty_smoothed_reconstruction(self):
        synopsis = KalmanSynopsis(config())
        assert len(synopsis.reconstruct_smoothed()) == 0


class TestPersistence:
    def test_save_load_round_trip(self, ramp_stream, tmp_path):
        cfg = config(delta=1.0)
        original = KalmanSynopsis(cfg)
        original.ingest(ramp_stream)
        path = tmp_path / "synopsis.csv"
        original.save(path)

        restored = KalmanSynopsis.load(path, cfg)
        assert restored.stats().stored_updates == original.stats().stored_updates
        assert np.allclose(
            restored.reconstruct().values(), original.reconstruct().values()
        )

    def test_load_rejects_tolerance_mismatch(self, ramp_stream, tmp_path):
        original = KalmanSynopsis(config(delta=1.0))
        original.ingest(ramp_stream)
        path = tmp_path / "synopsis.csv"
        original.save(path)
        with pytest.raises(ConfigurationError):
            KalmanSynopsis.load(path, config(delta=2.0))

    def test_load_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "not_synopsis.csv"
        path.write_text("k,timestamp,v0\n0,0.0,1.0\n")
        with pytest.raises(ConfigurationError):
            KalmanSynopsis.load(path, config())

    def test_2d_round_trip(self, trajectory_small, tmp_path):
        cfg = config(delta=5.0, model=linear_model(dims=2, dt=0.1))
        original = KalmanSynopsis(cfg)
        original.ingest(trajectory_small)
        path = tmp_path / "traj.csv"
        original.save(path)
        restored = KalmanSynopsis.load(path, cfg)
        assert (
            restored.reconstruction_error(trajectory_small) <= 5.0 + 1e-9
        )


class TestStats:
    def test_infinite_ratio_before_ingest(self):
        synopsis = KalmanSynopsis(config())
        assert synopsis.stats().compression_ratio == float("inf")

    def test_tolerance_recorded(self):
        synopsis = KalmanSynopsis(config(delta=7.0))
        assert synopsis.stats().tolerance == 7.0
