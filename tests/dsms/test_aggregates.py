"""Unit and property tests for aggregate continuous queries."""

import numpy as np
import pytest

from repro.dsms.aggregates import (
    AggregateAnswer,
    AggregateKind,
    AggregateQuery,
    answer_aggregate,
)
from repro.dsms.engine import StreamEngine
from repro.dsms.query import ContinuousQuery
from repro.errors import ConfigurationError, QueryError, UnknownSourceError
from repro.filters.models import constant_model, linear_model
from repro.streams.base import stream_from_values


def build_engine(series: dict[str, np.ndarray], delta: float = 1.0):
    """An engine with one scalar source per entry, fully run."""
    engine = StreamEngine()
    for source_id, values in series.items():
        engine.add_source(
            source_id,
            constant_model(dims=1),
            stream_from_values(values, name=source_id),
        )
        engine.submit_query(
            ContinuousQuery(source_id, delta=delta, query_id=f"q-{source_id}")
        )
    engine.run()
    return engine


@pytest.fixture
def engine3():
    rng = np.random.default_rng(0)
    series = {
        f"s{i}": 10.0 * (i + 1) + rng.normal(0, 0.3, size=200).cumsum() * 0.01
        for i in range(3)
    }
    return build_engine(series, delta=1.0), series


class TestAnswers:
    def test_sum_bound(self, engine3):
        engine, series = engine3
        query = AggregateQuery(AggregateKind.SUM, ("s0", "s1", "s2"))
        answer = answer_aggregate(engine, query)
        truth = sum(v[-1] for v in series.values())
        assert answer.error_bound == 3.0  # sum of deltas
        assert answer.lower - 1e-9 <= truth <= answer.upper + 1e-9

    def test_avg_bound(self, engine3):
        engine, series = engine3
        query = AggregateQuery(AggregateKind.AVG, ("s0", "s1", "s2"))
        answer = answer_aggregate(engine, query)
        truth = np.mean([v[-1] for v in series.values()])
        assert answer.error_bound == 1.0  # sum(deltas) / 3
        assert answer.lower - 1e-9 <= truth <= answer.upper + 1e-9

    def test_min_bound(self, engine3):
        engine, series = engine3
        query = AggregateQuery(AggregateKind.MIN, ("s0", "s1", "s2"))
        answer = answer_aggregate(engine, query)
        truth = min(v[-1] for v in series.values())
        assert answer.error_bound <= 1.0  # at most one source's delta
        assert answer.lower - 1e-9 <= truth <= answer.upper + 1e-9

    def test_max_bound(self, engine3):
        engine, series = engine3
        query = AggregateQuery(AggregateKind.MAX, ("s0", "s1", "s2"))
        answer = answer_aggregate(engine, query)
        truth = max(v[-1] for v in series.values())
        assert answer.lower - 1e-9 <= truth <= answer.upper + 1e-9

    def test_string_kind_coerced(self, engine3):
        engine, _ = engine3
        query = AggregateQuery("sum", ("s0",))
        assert query.kind is AggregateKind.SUM
        answer = answer_aggregate(engine, query)
        assert isinstance(answer, AggregateAnswer)

    def test_single_source_aggregate_is_value(self, engine3):
        engine, _ = engine3
        sum_a = answer_aggregate(engine, AggregateQuery("sum", ("s1",)))
        assert np.isclose(sum_a.value, engine.server.value("s1")[0])
        assert sum_a.error_bound == 1.0


class TestVectorComponent:
    def test_component_selection(self):
        engine = StreamEngine()
        values = np.stack(
            [np.arange(50, dtype=float), np.arange(50, dtype=float) * -2.0],
            axis=1,
        )
        engine.add_source(
            "xy", linear_model(dims=2, dt=1.0), stream_from_values(values)
        )
        engine.submit_query(ContinuousQuery("xy", delta=1.0, query_id="q"))
        engine.run()
        x_ans = answer_aggregate(
            engine, AggregateQuery("sum", ("xy",), component=0)
        )
        y_ans = answer_aggregate(
            engine, AggregateQuery("sum", ("xy",), component=1)
        )
        assert x_ans.value > 0 > y_ans.value

    def test_out_of_range_component(self, engine3):
        engine, _ = engine3
        with pytest.raises(QueryError):
            answer_aggregate(
                engine, AggregateQuery("sum", ("s0",), component=3)
            )


class TestValidation:
    def test_empty_sources_rejected(self):
        with pytest.raises(ConfigurationError):
            AggregateQuery("sum", ())

    def test_negative_component_rejected(self):
        with pytest.raises(ConfigurationError):
            AggregateQuery("sum", ("s0",), component=-1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            AggregateQuery("median", ("s0",))

    def test_unprimed_source_rejected(self):
        engine = StreamEngine()
        engine.add_source(
            "s0", constant_model(dims=1), stream_from_values(np.zeros(5))
        )
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
        # No run: the priming update never arrived.
        with pytest.raises(UnknownSourceError):
            answer_aggregate(engine, AggregateQuery("sum", ("s0",)))


class TestBoundHoldsThroughoutRun:
    def test_interval_covers_truth_at_every_step(self):
        """Step the engine manually and check the SUM interval covers the
        true sum at every instant -- the certified-bound property."""
        rng = np.random.default_rng(7)
        series = {
            "a": np.cumsum(rng.normal(0, 0.5, size=150)),
            "b": 100.0 + np.cumsum(rng.normal(0, 0.5, size=150)),
        }
        engine = StreamEngine()
        for source_id, values in series.items():
            engine.add_source(
                source_id, constant_model(dims=1), stream_from_values(values)
            )
            engine.submit_query(
                ContinuousQuery(source_id, delta=2.0, query_id=f"q-{source_id}")
            )
        query = AggregateQuery("sum", ("a", "b"))
        for k in range(150):
            engine.step()
            answer = answer_aggregate(engine, query)
            truth = series["a"][k] + series["b"][k]
            assert answer.lower - 1e-9 <= truth <= answer.upper + 1e-9
