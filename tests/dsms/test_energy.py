"""Unit tests for the sensor energy model."""

import pytest

from repro.dsms.energy import KF_FLOPS_PER_STEP, EnergyModel
from repro.errors import ConfigurationError


class TestEnergyModel:
    def test_transmit_energy_scales_with_bytes(self):
        model = EnergyModel(joules_per_bit=1e-6)
        report = model.report(
            bytes_sent=100, filter_steps=0, state_dim=2, measurement_dim=1
        )
        assert report.transmit_joules == pytest.approx(100 * 8 * 1e-6)

    def test_compute_energy_scales_with_steps(self):
        model = EnergyModel(joules_per_bit=1e-6, bit_to_instruction_ratio=1000)
        per_step = KF_FLOPS_PER_STEP(2, 1)
        report = model.report(
            bytes_sent=0, filter_steps=10, state_dim=2, measurement_dim=1
        )
        assert report.instructions == 10 * per_step
        assert report.compute_joules == pytest.approx(
            10 * per_step * 1e-6 / 1000
        )

    def test_smoothing_steps_add_scalar_cycles(self):
        model = EnergyModel()
        with_smoothing = model.report(
            bytes_sent=0, filter_steps=10, state_dim=4, measurement_dim=2,
            smoothing_steps=10,
        )
        without = model.report(
            bytes_sent=0, filter_steps=10, state_dim=4, measurement_dim=2
        )
        assert with_smoothing.instructions == (
            without.instructions + 10 * KF_FLOPS_PER_STEP(1, 1)
        )

    def test_paper_ratio_makes_radio_dominate(self):
        """With the paper's bit/instruction ratio, transmitting a reading
        costs far more than filtering it -- the whole premise."""
        model = EnergyModel(joules_per_bit=1e-6, bit_to_instruction_ratio=220)
        one_update = model.report(
            bytes_sent=29, filter_steps=1, state_dim=4, measurement_dim=2
        )
        assert one_update.transmit_joules > one_update.compute_joules

    def test_radio_share(self):
        model = EnergyModel()
        all_radio = model.report(
            bytes_sent=100, filter_steps=0, state_dim=1, measurement_dim=1
        )
        assert all_radio.radio_share == 1.0
        idle = model.report(
            bytes_sent=0, filter_steps=0, state_dim=1, measurement_dim=1
        )
        assert idle.radio_share == 0.0

    def test_naive_report(self):
        model = EnergyModel()
        naive = model.naive_report(readings=100, floats_per_reading=2)
        assert naive.compute_joules == 0.0
        assert naive.bytes_sent > 100 * 16  # header + 2 floats each

    def test_flops_grow_with_dimensions(self):
        assert KF_FLOPS_PER_STEP(4, 2) > KF_FLOPS_PER_STEP(2, 1)
        assert KF_FLOPS_PER_STEP(1, 1) > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(joules_per_bit=0.0)
        with pytest.raises(ConfigurationError):
            EnergyModel(bit_to_instruction_ratio=0.0)
        model = EnergyModel()
        with pytest.raises(ConfigurationError):
            model.report(
                bytes_sent=-1, filter_steps=0, state_dim=1, measurement_dim=1
            )
