"""Integration tests for the multi-source DSMS engine."""

import numpy as np
import pytest

from repro.dsms.engine import StreamEngine
from repro.dsms.network import LinkConfig
from repro.dsms.query import ContinuousQuery
from repro.errors import UnknownSourceError
from repro.filters.models import constant_model, linear_model
from repro.streams.base import stream_from_values


def ramp(n=100, slope=2.0):
    return stream_from_values(np.arange(n, dtype=float) * slope, name="ramp")


def make_engine(n=100):
    engine = StreamEngine()
    engine.add_source("s0", linear_model(dims=1, dt=1.0), ramp(n))
    return engine


class TestLifecycle:
    def test_run_to_exhaustion(self):
        engine = make_engine(50)
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
        ticks = engine.run()
        assert ticks >= 50
        report = engine.report()
        assert report.readings == 50

    def test_max_ticks_respected(self):
        engine = make_engine(100)
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
        engine.run(max_ticks=10)
        assert engine.report().readings == 10

    def test_unqueried_source_not_driven(self):
        engine = make_engine(20)
        engine.step()
        assert engine.report().readings == 0

    def test_answers_after_run(self):
        engine = make_engine(30)
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
        engine.run()
        answers = engine.answers()
        assert len(answers) == 1
        answer = answers[0]
        assert answer.query_id == "q"
        # Ramp of slope 2: the final value is near 2 * 29.
        assert abs(answer.value[0] - 58.0) <= 1.0 + 1e-9

    def test_answer_lookup(self):
        engine = make_engine(10)
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
        engine.run()
        assert engine.answer("q").query_id == "q"
        with pytest.raises(UnknownSourceError):
            engine.answer("ghost")


class TestMultiQuery:
    def test_tightest_delta_installed(self):
        engine = make_engine(50)
        engine.submit_query(ContinuousQuery("s0", delta=10.0, query_id="loose"))
        engine.submit_query(ContinuousQuery("s0", delta=2.0, query_id="tight"))
        engine.run()
        for answer in engine.answers():
            assert answer.precision == 2.0

    def test_loosening_query_does_not_reinstall(self):
        engine = make_engine(50)
        engine.submit_query(ContinuousQuery("s0", delta=2.0, query_id="tight"))
        engine.run(max_ticks=10)
        updates_before = engine.report().updates_sent
        engine.submit_query(ContinuousQuery("s0", delta=10.0, query_id="loose"))
        # The installed filter (delta=2) already satisfies delta=10; no
        # reinstall means the source keeps its accumulated state.
        engine.run(max_ticks=10)
        assert engine.report().updates_sent >= updates_before

    def test_retire_reverts_to_remaining_query(self):
        engine = make_engine(100)
        engine.submit_query(ContinuousQuery("s0", delta=10.0, query_id="loose"))
        engine.submit_query(ContinuousQuery("s0", delta=2.0, query_id="tight"))
        engine.retire_query("tight")
        engine.run(max_ticks=10)
        assert engine.answers()[0].precision == 10.0

    def test_retiring_last_query_tears_down(self):
        engine = make_engine(20)
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
        engine.retire_query("q")
        assert engine.answers() == []
        engine.step()  # no queried sources; nothing crashes
        assert engine.report().readings == 0


class TestMultiSource:
    def test_independent_sources(self):
        engine = StreamEngine()
        engine.add_source("a", linear_model(dims=1, dt=1.0), ramp(40, slope=1.0))
        engine.add_source("b", constant_model(dims=1), ramp(40, slope=0.0))
        engine.submit_query(ContinuousQuery("a", delta=1.0, query_id="qa"))
        engine.submit_query(ContinuousQuery("b", delta=1.0, query_id="qb"))
        engine.run()
        report = engine.report()
        assert report.readings == 80
        # The constant stream needs only its priming update.
        assert engine.server.stats("b")["updates_received"] == 1

    def test_per_source_energy_reported(self):
        engine = StreamEngine()
        engine.add_source("a", linear_model(dims=1, dt=1.0), ramp(30))
        engine.submit_query(ContinuousQuery("a", delta=1.0, query_id="qa"))
        engine.run()
        report = engine.report()
        assert "a" in report.per_source_energy
        assert report.total_energy_joules > 0


class TestRegistrationEdges:
    def test_duplicate_source_rejected(self):
        from repro.errors import DuplicateSourceError

        engine = make_engine(10)
        with pytest.raises(DuplicateSourceError):
            engine.add_source("s0", constant_model(dims=1), ramp(10))

    def test_retire_unknown_query_rejected(self):
        from repro.errors import QueryError

        engine = make_engine(10)
        with pytest.raises(QueryError):
            engine.retire_query("ghost")

    def test_query_on_unknown_source_rejected(self):
        from repro.errors import UnknownSourceError

        engine = make_engine(10)
        with pytest.raises(UnknownSourceError):
            engine.submit_query(ContinuousQuery("ghost", delta=1.0))

    def test_stepping_after_full_retire_is_noop(self):
        engine = make_engine(10)
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
        engine.run(max_ticks=3)
        engine.retire_query("q")
        readings_before = engine.report().readings
        engine.step()
        assert engine.report().readings == readings_before

    def test_requery_after_retire_reinstalls(self):
        engine = make_engine(50)
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q1"))
        engine.run(max_ticks=5)
        engine.retire_query("q1")
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q2"))
        engine.run(max_ticks=5)
        # The new installation re-primed: the server holds an answer again.
        assert engine.server.is_primed("s0")

    def test_tightening_query_reinstalls_and_loosening_does_not(self):
        engine = make_engine(100)
        engine.submit_query(ContinuousQuery("s0", delta=5.0, query_id="loose"))
        engine.run(max_ticks=5)
        first_install = engine._sources["s0"]  # noqa: SLF001
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="tight"))
        second_install = engine._sources["s0"]  # noqa: SLF001
        assert second_install is not first_install  # tightened: reinstall
        engine.submit_query(ContinuousQuery("s0", delta=9.0, query_id="wide"))
        third_install = engine._sources["s0"]  # noqa: SLF001
        assert third_install is second_install  # loosened: keep filters


class TestEngineReportSerde:
    def run_report(self):
        engine = make_engine(40)
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
        engine.run()
        return engine.report()

    def test_round_trip(self):
        from repro.dsms.engine import EngineReport

        report = self.run_report()
        rebuilt = EngineReport.from_dict(report.to_dict())
        assert rebuilt == report

    def test_to_dict_is_json_serialisable(self):
        import json

        text = json.dumps(self.run_report().to_dict())
        decoded = json.loads(text)
        assert decoded["readings"] == 40
        assert "s0" in decoded["per_source_energy"]

    def test_from_dict_rejects_malformed(self):
        from repro.dsms.engine import EngineReport
        from repro.errors import ConfigurationError

        good = self.run_report().to_dict()
        bad = dict(good)
        del bad["ticks"]
        with pytest.raises(ConfigurationError):
            EngineReport.from_dict(bad)
        bad = dict(good)
        bad["per_source_energy"] = {"s0": {"bogus_field": 1}}
        with pytest.raises(ConfigurationError):
            EngineReport.from_dict(bad)


class TestTrafficConservation:
    """offered == delivered + lost + corrupted + in_flight, always."""

    def make_faulty_engine(self, latency=0):
        from repro.dkf.config import TransportPolicy
        from repro.dsms.faults import FaultSchedule

        rng = np.random.default_rng(23)
        engine = StreamEngine()
        engine.add_source(
            "s0",
            linear_model(dims=1, dt=1.0),
            stream_from_values(
                np.cumsum(rng.normal(0.0, 1.0, size=250)), name="walk"
            ),
            transport=TransportPolicy(ack_timeout_ticks=4),
            link=LinkConfig(latency_ticks=latency),
        )
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
        engine.inject_faults(
            FaultSchedule(seed=23)
            .burst_loss("s0", p_enter=0.06, p_exit=0.3)
            .corrupt("s0", rate=0.02)
        )
        return engine

    def assert_conserved(self, engine):
        report = engine.report()
        delivered = sum(
            engine.fabric.stats_for(sid).delivered for sid in engine.sources
        )
        offered = report.updates_sent + report.retransmits + report.heartbeats
        assert offered == (
            delivered
            + report.messages_lost
            + report.corrupted
            + report.in_flight
        )

    def test_conserved_after_settled_run(self):
        engine = self.make_faulty_engine()
        engine.run()
        engine.settle()
        self.assert_conserved(engine)
        assert engine.report().messages_lost > 0
        assert engine.report().corrupted > 0

    def test_conserved_mid_run_with_frames_in_flight(self):
        # Data latency keeps frames in flight at the cut; acks stay
        # instantaneous so in_flight counts only data messages.
        engine = self.make_faulty_engine(latency=3)
        engine.run(max_ticks=40)
        assert engine.report().in_flight > 0
        self.assert_conserved(engine)

    def test_conserved_across_crash_and_restart(self):
        # DKFSource.reset() wipes its own counters on restart; the report
        # must keep counting offered traffic from the fabric ledger or
        # the conservation law breaks mid-lifetime.
        from repro.dkf.config import TransportPolicy
        from repro.dsms.faults import FaultSchedule

        rng = np.random.default_rng(23)
        engine = StreamEngine()
        engine.add_source(
            "s0",
            linear_model(dims=1, dt=1.0),
            stream_from_values(
                np.cumsum(rng.normal(0.0, 1.0, size=250)), name="walk"
            ),
            transport=TransportPolicy(ack_timeout_ticks=6),
            link=LinkConfig(latency_ticks=1, ack_latency_ticks=1),
        )
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
        engine.inject_faults(
            FaultSchedule(seed=23)
            .burst_loss("s0", p_enter=0.06, p_exit=0.3)
            .crash("s0", at=120, restart_at=160)
        )
        engine.run()
        engine.settle()
        report = engine.report()
        # Restart re-primes via resync, so retransmits include it.
        assert report.retransmits > 0
        assert report.messages_lost > 0
        self.assert_conserved(engine)


class TestLossyLinks:
    def test_lossy_link_recovers_via_resync(self):
        engine = StreamEngine()
        # Drop every 2nd message: plenty of ack timeouts on a ramp.
        rng_values = np.concatenate(
            [np.arange(50, dtype=float), np.arange(50, 0, -1, dtype=float)]
        )
        engine.add_source(
            "s0",
            constant_model(dims=1),
            stream_from_values(rng_values),
            link=LinkConfig(loss_fn=lambda i: i % 2 == 1),
        )
        engine.submit_query(ContinuousQuery("s0", delta=0.5, query_id="q"))
        engine.run()
        engine.settle()
        stats = engine.fabric.stats_for("s0")
        assert stats.lost > 0
        # Losses are only discovered through ack timeouts, each cutting a
        # resync retransmission; the exact count depends on which class of
        # message died, but recovery must have happened and converged.
        assert stats.resyncs > 0
        assert engine.report().retransmits > 0
        assert not engine.server.stats("s0")["desynced"]
        assert engine.sources["s0"].pending_acks == 0

    def test_latency_link_delivers_eventually(self):
        engine = StreamEngine()
        engine.add_source(
            "s0",
            constant_model(dims=1),
            ramp(30),
            link=LinkConfig(latency_ticks=2),
        )
        engine.submit_query(ContinuousQuery("s0", delta=0.5, query_id="q"))
        engine.run()
        engine.fabric.advance(engine.ticks + 5)
        stats = engine.fabric.stats_for("s0")
        assert stats.in_flight == 0
        assert stats.delivered > 0
