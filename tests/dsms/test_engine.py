"""Integration tests for the multi-source DSMS engine."""

import numpy as np
import pytest

from repro.dsms.engine import StreamEngine
from repro.dsms.network import LinkConfig
from repro.dsms.query import ContinuousQuery
from repro.errors import UnknownSourceError
from repro.filters.models import constant_model, linear_model
from repro.streams.base import stream_from_values


def ramp(n=100, slope=2.0):
    return stream_from_values(np.arange(n, dtype=float) * slope, name="ramp")


def make_engine(n=100):
    engine = StreamEngine()
    engine.add_source("s0", linear_model(dims=1, dt=1.0), ramp(n))
    return engine


class TestLifecycle:
    def test_run_to_exhaustion(self):
        engine = make_engine(50)
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
        ticks = engine.run()
        assert ticks >= 50
        report = engine.report()
        assert report.readings == 50

    def test_max_ticks_respected(self):
        engine = make_engine(100)
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
        engine.run(max_ticks=10)
        assert engine.report().readings == 10

    def test_unqueried_source_not_driven(self):
        engine = make_engine(20)
        engine.step()
        assert engine.report().readings == 0

    def test_answers_after_run(self):
        engine = make_engine(30)
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
        engine.run()
        answers = engine.answers()
        assert len(answers) == 1
        answer = answers[0]
        assert answer.query_id == "q"
        # Ramp of slope 2: the final value is near 2 * 29.
        assert abs(answer.value[0] - 58.0) <= 1.0 + 1e-9

    def test_answer_lookup(self):
        engine = make_engine(10)
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
        engine.run()
        assert engine.answer("q").query_id == "q"
        with pytest.raises(UnknownSourceError):
            engine.answer("ghost")


class TestMultiQuery:
    def test_tightest_delta_installed(self):
        engine = make_engine(50)
        engine.submit_query(ContinuousQuery("s0", delta=10.0, query_id="loose"))
        engine.submit_query(ContinuousQuery("s0", delta=2.0, query_id="tight"))
        engine.run()
        for answer in engine.answers():
            assert answer.precision == 2.0

    def test_loosening_query_does_not_reinstall(self):
        engine = make_engine(50)
        engine.submit_query(ContinuousQuery("s0", delta=2.0, query_id="tight"))
        engine.run(max_ticks=10)
        updates_before = engine.report().updates_sent
        engine.submit_query(ContinuousQuery("s0", delta=10.0, query_id="loose"))
        # The installed filter (delta=2) already satisfies delta=10; no
        # reinstall means the source keeps its accumulated state.
        engine.run(max_ticks=10)
        assert engine.report().updates_sent >= updates_before

    def test_retire_reverts_to_remaining_query(self):
        engine = make_engine(100)
        engine.submit_query(ContinuousQuery("s0", delta=10.0, query_id="loose"))
        engine.submit_query(ContinuousQuery("s0", delta=2.0, query_id="tight"))
        engine.retire_query("tight")
        engine.run(max_ticks=10)
        assert engine.answers()[0].precision == 10.0

    def test_retiring_last_query_tears_down(self):
        engine = make_engine(20)
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
        engine.retire_query("q")
        assert engine.answers() == []
        engine.step()  # no queried sources; nothing crashes
        assert engine.report().readings == 0


class TestMultiSource:
    def test_independent_sources(self):
        engine = StreamEngine()
        engine.add_source("a", linear_model(dims=1, dt=1.0), ramp(40, slope=1.0))
        engine.add_source("b", constant_model(dims=1), ramp(40, slope=0.0))
        engine.submit_query(ContinuousQuery("a", delta=1.0, query_id="qa"))
        engine.submit_query(ContinuousQuery("b", delta=1.0, query_id="qb"))
        engine.run()
        report = engine.report()
        assert report.readings == 80
        # The constant stream needs only its priming update.
        assert engine.server.stats("b")["updates_received"] == 1

    def test_per_source_energy_reported(self):
        engine = StreamEngine()
        engine.add_source("a", linear_model(dims=1, dt=1.0), ramp(30))
        engine.submit_query(ContinuousQuery("a", delta=1.0, query_id="qa"))
        engine.run()
        report = engine.report()
        assert "a" in report.per_source_energy
        assert report.total_energy_joules > 0


class TestRegistrationEdges:
    def test_duplicate_source_rejected(self):
        from repro.errors import DuplicateSourceError

        engine = make_engine(10)
        with pytest.raises(DuplicateSourceError):
            engine.add_source("s0", constant_model(dims=1), ramp(10))

    def test_retire_unknown_query_rejected(self):
        from repro.errors import QueryError

        engine = make_engine(10)
        with pytest.raises(QueryError):
            engine.retire_query("ghost")

    def test_query_on_unknown_source_rejected(self):
        from repro.errors import UnknownSourceError

        engine = make_engine(10)
        with pytest.raises(UnknownSourceError):
            engine.submit_query(ContinuousQuery("ghost", delta=1.0))

    def test_stepping_after_full_retire_is_noop(self):
        engine = make_engine(10)
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
        engine.run(max_ticks=3)
        engine.retire_query("q")
        readings_before = engine.report().readings
        engine.step()
        assert engine.report().readings == readings_before

    def test_requery_after_retire_reinstalls(self):
        engine = make_engine(50)
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q1"))
        engine.run(max_ticks=5)
        engine.retire_query("q1")
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q2"))
        engine.run(max_ticks=5)
        # The new installation re-primed: the server holds an answer again.
        assert engine.server.is_primed("s0")

    def test_tightening_query_reinstalls_and_loosening_does_not(self):
        engine = make_engine(100)
        engine.submit_query(ContinuousQuery("s0", delta=5.0, query_id="loose"))
        engine.run(max_ticks=5)
        first_install = engine._sources["s0"]  # noqa: SLF001
        engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="tight"))
        second_install = engine._sources["s0"]  # noqa: SLF001
        assert second_install is not first_install  # tightened: reinstall
        engine.submit_query(ContinuousQuery("s0", delta=9.0, query_id="wide"))
        third_install = engine._sources["s0"]  # noqa: SLF001
        assert third_install is second_install  # loosened: keep filters


class TestLossyLinks:
    def test_lossy_link_recovers_via_resync(self):
        engine = StreamEngine()
        # Drop every 2nd message: plenty of ack timeouts on a ramp.
        rng_values = np.concatenate(
            [np.arange(50, dtype=float), np.arange(50, 0, -1, dtype=float)]
        )
        engine.add_source(
            "s0",
            constant_model(dims=1),
            stream_from_values(rng_values),
            link=LinkConfig(loss_fn=lambda i: i % 2 == 1),
        )
        engine.submit_query(ContinuousQuery("s0", delta=0.5, query_id="q"))
        engine.run()
        engine.settle()
        stats = engine.fabric.stats_for("s0")
        assert stats.lost > 0
        # Losses are only discovered through ack timeouts, each cutting a
        # resync retransmission; the exact count depends on which class of
        # message died, but recovery must have happened and converged.
        assert stats.resyncs > 0
        assert engine.report().retransmits > 0
        assert not engine.server.stats("s0")["desynced"]
        assert engine.sources["s0"].pending_acks == 0

    def test_latency_link_delivers_eventually(self):
        engine = StreamEngine()
        engine.add_source(
            "s0",
            constant_model(dims=1),
            ramp(30),
            link=LinkConfig(latency_ticks=2),
        )
        engine.submit_query(ContinuousQuery("s0", delta=0.5, query_id="q"))
        engine.run()
        engine.fabric.advance(engine.ticks + 5)
        stats = engine.fabric.stats_for("s0")
        assert stats.in_flight == 0
        assert stats.delivered > 0
