"""Unit tests for continuous queries and the source registry."""

import pytest

from repro.dsms.query import ContinuousQuery
from repro.dsms.registry import SourceRegistry
from repro.errors import (
    ConfigurationError,
    DuplicateSourceError,
    QueryError,
    UnknownSourceError,
)
from repro.filters.models import constant_model, linear_model


class TestContinuousQuery:
    def test_auto_ids_unique(self):
        a = ContinuousQuery("s0", delta=1.0)
        b = ContinuousQuery("s0", delta=1.0)
        assert a.query_id != b.query_id

    def test_explicit_id(self):
        q = ContinuousQuery("s0", delta=1.0, query_id="mine")
        assert q.query_id == "mine"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ContinuousQuery("s0", delta=0.0)
        with pytest.raises(ConfigurationError):
            ContinuousQuery("s0", delta=1.0, smoothing_f=-1.0)


class TestSourceRegistry:
    def make(self):
        registry = SourceRegistry()
        registry.register_source("s0", linear_model(dims=1))
        return registry

    def test_register_and_lookup(self):
        registry = self.make()
        assert registry.source_ids == ["s0"]
        assert registry.source("s0").source_id == "s0"

    def test_duplicate_source_rejected(self):
        registry = self.make()
        with pytest.raises(DuplicateSourceError):
            registry.register_source("s0", constant_model())

    def test_unknown_source_rejected(self):
        with pytest.raises(UnknownSourceError):
            SourceRegistry().source("ghost")

    def test_effective_delta_is_minimum(self):
        registry = self.make()
        registry.add_query(ContinuousQuery("s0", delta=10.0, query_id="a"))
        registry.add_query(ContinuousQuery("s0", delta=3.0, query_id="b"))
        registry.add_query(ContinuousQuery("s0", delta=7.0, query_id="c"))
        assert registry.source("s0").effective_delta == 3.0

    def test_effective_delta_requires_queries(self):
        registry = self.make()
        with pytest.raises(QueryError):
            registry.source("s0").effective_delta  # noqa: B018

    def test_effective_smoothing_none_when_no_query_asks(self):
        registry = self.make()
        registry.add_query(ContinuousQuery("s0", delta=1.0, query_id="a"))
        assert registry.source("s0").effective_smoothing_f is None

    def test_effective_smoothing_is_least_smoothing(self):
        """Largest F = least smoothing = highest fidelity wins, so every
        query gets at least the fidelity it asked for."""
        registry = self.make()
        registry.add_query(
            ContinuousQuery("s0", delta=1.0, smoothing_f=1e-9, query_id="a")
        )
        registry.add_query(
            ContinuousQuery("s0", delta=1.0, smoothing_f=1e-5, query_id="b")
        )
        assert registry.source("s0").effective_smoothing_f == 1e-5

    def test_duplicate_query_id_rejected(self):
        registry = self.make()
        registry.add_query(ContinuousQuery("s0", delta=1.0, query_id="a"))
        with pytest.raises(QueryError):
            registry.add_query(ContinuousQuery("s0", delta=2.0, query_id="a"))

    def test_query_for_unknown_source_rejected(self):
        registry = self.make()
        with pytest.raises(UnknownSourceError):
            registry.add_query(ContinuousQuery("ghost", delta=1.0))

    def test_remove_query(self):
        registry = self.make()
        registry.add_query(ContinuousQuery("s0", delta=1.0, query_id="a"))
        registry.add_query(ContinuousQuery("s0", delta=5.0, query_id="b"))
        registry.remove_query("a")
        assert registry.source("s0").effective_delta == 5.0
        with pytest.raises(QueryError):
            registry.remove_query("a")

    def test_query_lookup(self):
        registry = self.make()
        registry.add_query(ContinuousQuery("s0", delta=2.0, query_id="a"))
        assert registry.query("a").delta == 2.0
        with pytest.raises(QueryError):
            registry.query("ghost")

    def test_build_config_reflects_queries(self):
        registry = self.make()
        registry.add_query(
            ContinuousQuery("s0", delta=4.0, smoothing_f=1e-7, query_id="a")
        )
        config = registry.source("s0").build_config()
        assert config.delta == 4.0
        assert config.smoothing_f == 1e-7

    def test_active_queries(self):
        registry = self.make()
        registry.register_source("s1", constant_model())
        registry.add_query(ContinuousQuery("s0", delta=1.0, query_id="a"))
        registry.add_query(ContinuousQuery("s1", delta=1.0, query_id="b"))
        ids = {q.query_id for q in registry.active_queries}
        assert ids == {"a", "b"}

    def test_queries_for(self):
        registry = self.make()
        registry.add_query(ContinuousQuery("s0", delta=1.0, query_id="a"))
        assert [q.query_id for q in registry.queries_for("s0")] == ["a"]
