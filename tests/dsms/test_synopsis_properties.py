"""Property-based tests for the Kalman stream synopsis."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dkf.config import DKFConfig
from repro.dsms.synopsis import KalmanSynopsis
from repro.filters.models import constant_model, linear_model
from repro.streams.base import stream_from_values

values_strategy = st.lists(
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    min_size=1,
    max_size=50,
)
delta_strategy = st.floats(min_value=0.1, max_value=100.0)
model_strategy = st.sampled_from(["constant", "linear"])


def build_config(model_name, delta):
    model = (
        constant_model(dims=1)
        if model_name == "constant"
        else linear_model(dims=1, dt=1.0)
    )
    return DKFConfig(model=model, delta=delta)


@settings(max_examples=40, deadline=None)
@given(values=values_strategy, delta=delta_strategy, model=model_strategy)
def test_reconstruction_within_tolerance_for_any_stream(values, delta, model):
    """The synopsis's defining property: ingest anything, reconstruct
    within delta at every instant."""
    stream = stream_from_values(np.array(values))
    synopsis = KalmanSynopsis(build_config(model, delta))
    synopsis.ingest(stream)
    assert synopsis.reconstruction_error(stream) <= delta + 1e-6


@settings(max_examples=30, deadline=None)
@given(values=values_strategy, delta=delta_strategy, model=model_strategy)
def test_compression_never_exceeds_input(values, delta, model):
    stream = stream_from_values(np.array(values))
    synopsis = KalmanSynopsis(build_config(model, delta))
    stats = synopsis.ingest(stream)
    assert 1 <= stats.stored_updates <= len(values)
    assert stats.compression_ratio >= 1.0


@settings(max_examples=30, deadline=None)
@given(values=values_strategy, delta=delta_strategy, model=model_strategy)
def test_ingest_is_idempotent(values, delta, model):
    """Re-ingesting the same stream yields identical stored updates
    (determinism carried through the synopsis layer)."""
    stream = stream_from_values(np.array(values))
    synopsis = KalmanSynopsis(build_config(model, delta))
    synopsis.ingest(stream)
    first = [(k, v.copy()) for k, v in synopsis.updates]
    synopsis.ingest(stream)
    second = synopsis.updates
    assert len(first) == len(second)
    for (k1, v1), (k2, v2) in zip(first, second):
        assert k1 == k2
        assert np.array_equal(v1, v2)


@settings(max_examples=25, deadline=None)
@given(values=values_strategy, delta=delta_strategy)
def test_widening_tolerance_never_stores_more_constant_model(values, delta):
    """For the memoryless constant model, a looser tolerance can only
    shrink the synopsis."""
    stream = stream_from_values(np.array(values))
    tight = KalmanSynopsis(build_config("constant", delta))
    loose = KalmanSynopsis(build_config("constant", delta * 3))
    assert (
        loose.ingest(stream).stored_updates
        <= tight.ingest(stream).stored_updates
    )
