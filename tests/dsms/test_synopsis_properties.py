"""Property-based tests for the Kalman stream synopsis."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dkf.config import DKFConfig
from repro.dsms.synopsis import KalmanSynopsis
from repro.filters.models import constant_model, linear_model
from repro.streams.base import stream_from_values

values_strategy = st.lists(
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    min_size=1,
    max_size=50,
)
delta_strategy = st.floats(min_value=0.1, max_value=100.0)
model_strategy = st.sampled_from(["constant", "linear"])


def build_config(model_name, delta):
    model = (
        constant_model(dims=1)
        if model_name == "constant"
        else linear_model(dims=1, dt=1.0)
    )
    return DKFConfig(model=model, delta=delta)


@settings(max_examples=40, deadline=None)
@given(values=values_strategy, delta=delta_strategy, model=model_strategy)
def test_reconstruction_within_tolerance_for_any_stream(values, delta, model):
    """The synopsis's defining property: ingest anything, reconstruct
    within delta at every instant."""
    stream = stream_from_values(np.array(values))
    synopsis = KalmanSynopsis(build_config(model, delta))
    synopsis.ingest(stream)
    assert synopsis.reconstruction_error(stream) <= delta + 1e-6


@settings(max_examples=30, deadline=None)
@given(values=values_strategy, delta=delta_strategy, model=model_strategy)
def test_compression_never_exceeds_input(values, delta, model):
    stream = stream_from_values(np.array(values))
    synopsis = KalmanSynopsis(build_config(model, delta))
    stats = synopsis.ingest(stream)
    assert 1 <= stats.stored_updates <= len(values)
    assert stats.compression_ratio >= 1.0


@settings(max_examples=30, deadline=None)
@given(values=values_strategy, delta=delta_strategy, model=model_strategy)
def test_ingest_is_idempotent(values, delta, model):
    """Re-ingesting the same stream yields identical stored updates
    (determinism carried through the synopsis layer)."""
    stream = stream_from_values(np.array(values))
    synopsis = KalmanSynopsis(build_config(model, delta))
    synopsis.ingest(stream)
    first = [(k, v.copy()) for k, v in synopsis.updates]
    synopsis.ingest(stream)
    second = synopsis.updates
    assert len(first) == len(second)
    for (k1, v1), (k2, v2) in zip(first, second):
        assert k1 == k2
        assert np.array_equal(v1, v2)


def test_widening_tolerance_shrinks_synopsis_on_random_walks():
    """Fig. 12's economics: a looser tolerance stores no more updates.

    Checked on a seeded random-walk ensemble rather than adversarial
    inputs: strict per-stream monotonicity is false in general (the
    filter's post-update estimate lags the measurement, so a looser
    envelope can re-anchor at instants that trigger extra sends on
    spike trains), but on walk-like streams the economics must hold
    at every delta rung.
    """
    rng = np.random.default_rng(3)
    for _ in range(10):
        values = np.cumsum(rng.normal(0.0, 1.0, size=200))
        stream = stream_from_values(values)
        stored = [
            KalmanSynopsis(build_config("constant", delta))
            .ingest(stream)
            .stored_updates
            for delta in (0.5, 1.5, 4.5)
        ]
        assert stored[0] >= stored[1] >= stored[2]
