"""Unit tests for the simulated network fabric."""

import numpy as np
import pytest

from repro.dkf.protocol import ResyncMessage, UpdateMessage
from repro.dsms.network import LinkConfig, NetworkFabric
from repro.errors import ConfigurationError, UnknownSourceError


def update(source_id="s0", seq=0, k=0):
    return UpdateMessage(source_id=source_id, seq=seq, k=k, value=np.zeros(1))


class TestLinks:
    def test_add_and_send(self):
        received = []
        fabric = NetworkFabric(deliver=received.append)
        fabric.add_link("s0")
        assert fabric.send(update())
        assert len(received) == 1

    def test_duplicate_link_rejected(self):
        fabric = NetworkFabric(deliver=lambda m: None)
        fabric.add_link("s0")
        with pytest.raises(ConfigurationError):
            fabric.add_link("s0")

    def test_unknown_link_rejected(self):
        fabric = NetworkFabric(deliver=lambda m: None)
        with pytest.raises(UnknownSourceError):
            fabric.send(update("ghost"))

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkConfig(latency_ticks=-1)


class TestLatency:
    def test_zero_latency_synchronous(self):
        received = []
        fabric = NetworkFabric(deliver=received.append)
        fabric.add_link("s0", LinkConfig(latency_ticks=0))
        fabric.send(update())
        assert len(received) == 1

    def test_delayed_delivery(self):
        received = []
        fabric = NetworkFabric(deliver=received.append)
        fabric.add_link("s0", LinkConfig(latency_ticks=3))
        fabric.send(update())
        assert not received
        fabric.advance(2)
        assert not received
        fabric.advance(3)
        assert len(received) == 1

    def test_fifo_within_tick(self):
        received = []
        fabric = NetworkFabric(deliver=received.append)
        fabric.add_link("s0", LinkConfig(latency_ticks=1))
        fabric.send(update(seq=0))
        fabric.send(update(seq=1))
        fabric.advance(1)
        assert [m.seq for m in received] == [0, 1]

    def test_in_flight_counted(self):
        fabric = NetworkFabric(deliver=lambda m: None)
        fabric.add_link("s0", LinkConfig(latency_ticks=5))
        fabric.send(update())
        assert fabric.stats_for("s0").in_flight == 1
        fabric.advance(5)
        assert fabric.stats_for("s0").in_flight == 0

    def test_clock_cannot_go_backwards(self):
        fabric = NetworkFabric(deliver=lambda m: None)
        fabric.advance(5)
        with pytest.raises(ConfigurationError):
            fabric.advance(3)

    def test_default_advance_one_tick(self):
        fabric = NetworkFabric(deliver=lambda m: None)
        fabric.advance()
        assert fabric.tick == 1


class TestLossAndAccounting:
    def test_loss_function_applies_per_link(self):
        received = []
        fabric = NetworkFabric(deliver=received.append)
        fabric.add_link("lossy", LinkConfig(loss_fn=lambda i: True))
        fabric.add_link("clean")
        assert not fabric.send(update("lossy"))
        assert fabric.send(update("clean"))
        assert fabric.stats_for("lossy").lost == 1
        assert fabric.stats_for("clean").delivered == 1

    def test_resync_bypasses_loss(self):
        received = []
        fabric = NetworkFabric(deliver=received.append)
        fabric.add_link("s0", LinkConfig(loss_fn=lambda i: True))
        fabric.send_resync(
            ResyncMessage(
                source_id="s0", seq=0, k=0, x=np.zeros(1), p=np.eye(1),
                value=np.zeros(1),
            )
        )
        assert len(received) == 1
        assert fabric.stats_for("s0").resyncs == 1

    def test_total_bytes_aggregates_links(self):
        fabric = NetworkFabric(deliver=lambda m: None)
        fabric.add_link("a")
        fabric.add_link("b")
        fabric.send(update("a"))
        fabric.send(update("b"))
        assert fabric.total_bytes() == 2 * update().size_bytes
        assert fabric.total_messages() == 2
