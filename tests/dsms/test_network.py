"""Unit tests for the simulated network fabric."""

import numpy as np
import pytest

from repro.dkf.protocol import AckMessage, HeartbeatMessage, ResyncMessage, UpdateMessage
from repro.dsms.network import LinkConfig, NetworkFabric
from repro.errors import ConfigurationError, UnknownSourceError


def update(source_id="s0", seq=0, k=0):
    return UpdateMessage(source_id=source_id, seq=seq, k=k, value=np.zeros(1))


def resync(source_id="s0", seq=0, k=0):
    return ResyncMessage(
        source_id=source_id, seq=seq, k=k, x=np.zeros(1), p=np.eye(1),
        value=np.zeros(1),
    )


class TestLinks:
    def test_add_and_send(self):
        received = []
        fabric = NetworkFabric(deliver=received.append)
        fabric.add_link("s0")
        assert fabric.send(update())
        assert len(received) == 1

    def test_duplicate_link_rejected(self):
        fabric = NetworkFabric(deliver=lambda m: None)
        fabric.add_link("s0")
        with pytest.raises(ConfigurationError):
            fabric.add_link("s0")

    def test_unknown_link_rejected(self):
        fabric = NetworkFabric(deliver=lambda m: None)
        with pytest.raises(UnknownSourceError):
            fabric.send(update("ghost"))

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkConfig(latency_ticks=-1)


class TestLatency:
    def test_zero_latency_synchronous(self):
        received = []
        fabric = NetworkFabric(deliver=received.append)
        fabric.add_link("s0", LinkConfig(latency_ticks=0))
        fabric.send(update())
        assert len(received) == 1

    def test_delayed_delivery(self):
        received = []
        fabric = NetworkFabric(deliver=received.append)
        fabric.add_link("s0", LinkConfig(latency_ticks=3))
        fabric.send(update())
        assert not received
        fabric.advance(2)
        assert not received
        fabric.advance(3)
        assert len(received) == 1

    def test_fifo_within_tick(self):
        received = []
        fabric = NetworkFabric(deliver=received.append)
        fabric.add_link("s0", LinkConfig(latency_ticks=1))
        fabric.send(update(seq=0))
        fabric.send(update(seq=1))
        fabric.advance(1)
        assert [m.seq for m in received] == [0, 1]

    def test_in_flight_counted(self):
        fabric = NetworkFabric(deliver=lambda m: None)
        fabric.add_link("s0", LinkConfig(latency_ticks=5))
        fabric.send(update())
        assert fabric.stats_for("s0").in_flight == 1
        fabric.advance(5)
        assert fabric.stats_for("s0").in_flight == 0

    def test_clock_cannot_go_backwards(self):
        fabric = NetworkFabric(deliver=lambda m: None)
        fabric.advance(5)
        with pytest.raises(ConfigurationError):
            fabric.advance(3)

    def test_default_advance_one_tick(self):
        fabric = NetworkFabric(deliver=lambda m: None)
        fabric.advance()
        assert fabric.tick == 1


class TestLossAndAccounting:
    def test_loss_function_applies_per_link(self):
        received = []
        fabric = NetworkFabric(deliver=received.append)
        fabric.add_link("lossy", LinkConfig(loss_fn=lambda i: True))
        fabric.add_link("clean")
        assert not fabric.send(update("lossy"))
        assert fabric.send(update("clean"))
        assert fabric.stats_for("lossy").lost == 1
        assert fabric.stats_for("clean").delivered == 1

    def test_resyncs_traverse_the_lossy_link(self):
        """Resyncs are mortal: there is no reliable side channel.

        The seed's ``send_resync`` bypass is gone -- recovery must come
        from the transport's ack timeouts, so the loss model applies to
        every data message class equally.
        """
        received = []
        fabric = NetworkFabric(deliver=received.append)
        fabric.add_link("s0", LinkConfig(loss_fn=lambda i: True))
        assert not fabric.send(resync())
        assert not received
        stats = fabric.stats_for("s0")
        assert stats.resyncs == 1
        assert stats.lost == 1

    def test_heartbeats_counted(self):
        received = []
        fabric = NetworkFabric(deliver=received.append)
        fabric.add_link("s0")
        fabric.send(HeartbeatMessage(source_id="s0", seq=0, k=0))
        assert len(received) == 1
        assert fabric.stats_for("s0").heartbeats == 1

    def test_total_bytes_aggregates_links(self):
        fabric = NetworkFabric(deliver=lambda m: None)
        fabric.add_link("a")
        fabric.add_link("b")
        fabric.send(update("a"))
        fabric.send(update("b"))
        assert fabric.total_bytes() == 2 * update().size_bytes
        assert fabric.total_messages() == 2

    def test_corruption_is_disjoint_from_loss(self):
        """A corrupted frame lands in ``corrupted``, never in ``lost``.

        The buckets must stay disjoint so the traffic conservation law
        ``offered == delivered + lost + corrupted + in_flight`` holds
        without double counting.
        """
        received = []
        fabric = NetworkFabric(deliver=received.append)
        fabric.add_link("s0", LinkConfig(corrupt_fn=lambda i: True))
        assert not fabric.send(update())
        assert not received
        stats = fabric.stats_for("s0")
        assert stats.corrupted == 1
        assert stats.lost == 0
        assert fabric.total_corrupted() == 1
        assert fabric.total_lost() == 0
        assert fabric.total_offered() == 1


class TestAckDirection:
    def test_ack_delivery(self):
        acks = []
        fabric = NetworkFabric(deliver=lambda m: None, deliver_ack=acks.append)
        fabric.add_link("s0")
        assert fabric.send_ack(AckMessage(source_id="s0", seq=1, k=0))
        assert len(acks) == 1
        assert fabric.stats_for("s0").acks_delivered == 1

    def test_ack_without_callback_rejected(self):
        fabric = NetworkFabric(deliver=lambda m: None)
        fabric.add_link("s0")
        with pytest.raises(ConfigurationError):
            fabric.send_ack(AckMessage(source_id="s0", seq=1, k=0))

    def test_ack_loss_independent_of_data_loss(self):
        """The ack direction has its own loss model and index counter."""
        acks = []
        received = []
        fabric = NetworkFabric(deliver=received.append, deliver_ack=acks.append)
        fabric.add_link(
            "s0", LinkConfig(loss_fn=None, ack_loss_fn=lambda i: i == 0)
        )
        fabric.send(update())
        assert not fabric.send_ack(AckMessage(source_id="s0", seq=1, k=0))
        assert fabric.send_ack(AckMessage(source_id="s0", seq=1, k=1))
        assert len(received) == 1 and len(acks) == 1
        stats = fabric.stats_for("s0")
        assert stats.acks_lost == 1
        assert stats.acks_offered == 2

    def test_delayed_acks(self):
        acks = []
        fabric = NetworkFabric(deliver=lambda m: None, deliver_ack=acks.append)
        fabric.add_link("s0", LinkConfig(ack_latency_ticks=2))
        fabric.send_ack(AckMessage(source_id="s0", seq=1, k=0))
        assert not acks
        fabric.advance(2)
        assert len(acks) == 1


class TestDrain:
    def test_drain_flushes_everything(self):
        received = []
        acks = []
        fabric = NetworkFabric(deliver=received.append, deliver_ack=acks.append)
        fabric.add_link("s0", LinkConfig(latency_ticks=10, ack_latency_ticks=10))
        fabric.send(update())
        fabric.send_ack(AckMessage(source_id="s0", seq=1, k=0))
        assert fabric.total_in_flight() == 2
        assert fabric.drain() == 2
        assert fabric.total_in_flight() == 0
        assert len(received) == 1 and len(acks) == 1


class TestLossLatencyInteraction:
    def test_resync_queued_behind_delayed_update_stays_consistent(self):
        """Satellite 3: loss x latency FIFO pinning.

        An update and a later resync in flight on the same latent link
        must arrive in send order; the resync (a full snapshot) then
        rules, leaving the receiver consistent at the resync's sequence.
        """
        received = []
        fabric = NetworkFabric(deliver=received.append)
        fabric.add_link(
            "s0", LinkConfig(latency_ticks=3, loss_fn=lambda i: i == 1)
        )
        fabric.send(update(seq=0))       # index 0: delayed, delivered
        assert not fabric.send(update(seq=1))  # index 1: dropped
        fabric.send(resync(seq=2))       # index 2: delayed, delivered
        assert not received
        fabric.advance(3)
        assert [type(m).__name__ for m in received] == [
            "UpdateMessage",
            "ResyncMessage",
        ]
        assert [m.seq for m in received] == [0, 2]


class TestLinkGate:
    """Satellite 2 (federation PR): a downed link *holds* frames already
    in the pipe -- they stay ``in_flight``, are never teleported across
    the cut by ``drain()``, and the conservation law keeps balancing."""

    def gated_fabric(self, received, down):
        fabric = NetworkFabric(deliver=received.append)
        fabric.add_link("s0", LinkConfig(latency_ticks=2))
        fabric.set_gate(lambda link_id, tick: link_id not in down)
        return fabric

    def test_downed_link_holds_due_frames(self):
        received = []
        down = {"s0"}
        fabric = self.gated_fabric(received, down)
        fabric.send(update())
        fabric.advance(2)
        fabric.advance(3)
        assert not received
        assert fabric.stats_for("s0").in_flight == 1
        down.clear()  # the partition heals
        fabric.advance(4)
        assert len(received) == 1
        assert fabric.stats_for("s0").in_flight == 0

    def test_drain_retains_frames_on_severed_links(self):
        received = []
        fabric = self.gated_fabric(received, down={"s0"})
        fabric.send(update())
        assert fabric.drain() == 0
        assert not received
        stats = fabric.stats_for("s0")
        # The frame is reported in flight, not silently dropped: the
        # conservation law balances with the frame still in the pipe.
        assert stats.in_flight == 1
        assert stats.offered == (
            stats.delivered + stats.lost + stats.corrupted + stats.in_flight
        )

    def test_force_drain_flushes_severed_links(self):
        received = []
        fabric = self.gated_fabric(received, down={"s0"})
        fabric.send(update())
        assert fabric.drain(force=True) == 1
        assert len(received) == 1
        assert fabric.stats_for("s0").in_flight == 0

    def test_gate_only_affects_named_links(self):
        received = []
        fabric = self.gated_fabric(received, down={"other"})
        fabric.send(update())
        fabric.advance(2)
        assert len(received) == 1

    def test_removing_the_gate_releases_held_frames(self):
        received = []
        fabric = self.gated_fabric(received, down={"s0"})
        fabric.send(update())
        fabric.advance(2)
        assert not received
        fabric.set_gate(None)
        fabric.advance(3)
        assert len(received) == 1
