"""Documentation contract: every public item carries a docstring.

Walks the installed ``repro`` package and asserts that every public
module, class, function and method (anything not underscore-prefixed,
defined inside the package) has a non-trivial docstring.  This is the
machine-checkable half of the documentation deliverable.
"""

import importlib
import inspect
import pkgutil

import repro

MIN_DOC_LENGTH = 10


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", "").startswith("repro"):
                yield name, obj


def test_every_public_module_documented():
    missing = [
        m.__name__
        for m in _iter_modules()
        if not (m.__doc__ and len(m.__doc__.strip()) >= MIN_DOC_LENGTH)
    ]
    assert not missing, f"undocumented modules: {missing}"


def test_every_public_class_and_function_documented():
    missing = []
    for module in _iter_modules():
        for name, obj in _public_members(module):
            doc = inspect.getdoc(obj)
            if not doc or len(doc.strip()) < MIN_DOC_LENGTH:
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {sorted(set(missing))}"


def test_public_methods_documented():
    missing = []
    for module in _iter_modules():
        for cls_name, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            for name, member in vars(cls).items():
                if name.startswith("_"):
                    continue
                func = member
                if isinstance(member, property):
                    func = member.fget
                elif isinstance(member, (classmethod, staticmethod)):
                    func = member.__func__
                elif not inspect.isfunction(member):
                    continue
                if func is None:
                    continue
                doc = inspect.getdoc(func)
                # Properties may be self-explanatory one-liners; insist on
                # presence, not length.
                if not doc:
                    missing.append(f"{module.__name__}.{cls_name}.{name}")
    assert not missing, f"undocumented public methods: {sorted(set(missing))}"
