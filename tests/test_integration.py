"""Cross-module integration tests: the pieces composed the way a
deployment would compose them."""

import numpy as np
import pytest

from repro.baselines.caching import CachedValueScheme
from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.dsms.engine import StreamEngine
from repro.dsms.query import ContinuousQuery
from repro.dsms.synopsis import KalmanSynopsis
from repro.filters.models import constant_model, linear_model
from repro.metrics.evaluation import evaluate_scheme
from repro.streams.noise import add_spikes, drop_records, freeze_sensor
from repro.streams.base import stream_from_values


class TestEngineSessionEquivalence:
    def test_single_source_engine_matches_standalone_session(
        self, trajectory_small
    ):
        """The engine is plumbing: a one-source run must transmit exactly
        the updates the standalone session transmits."""
        config = DKFConfig(model=linear_model(dims=2, dt=0.1), delta=3.0)

        session = DKFSession(config)
        session.run(trajectory_small)

        engine = StreamEngine()
        engine.add_source(
            "s0", linear_model(dims=2, dt=0.1), trajectory_small
        )
        engine.submit_query(ContinuousQuery("s0", delta=3.0, query_id="q"))
        engine.run()

        assert (
            engine.server.stats("s0")["updates_received"]
            == session.updates_sent
        )
        # Final answers agree bit-for-bit.
        assert np.allclose(
            engine.server.value("s0"), session.server.value("s0")
        )

    def test_synopsis_matches_session_update_count(self, power_load_small):
        config = DKFConfig(model=linear_model(dims=1, dt=1.0), delta=50.0)
        session = DKFSession(config)
        sent = sum(d.sent for d in session.run(power_load_small))
        synopsis = KalmanSynopsis(config)
        stats = synopsis.ingest(power_load_small)
        assert stats.stored_updates == sent


class TestFaultInjection:
    def test_spiky_stream_precision_still_guaranteed(self, trajectory_small):
        """Sensor glitches cost updates, never correctness."""
        spiky = add_spikes(trajectory_small, rate=0.02, magnitude=50.0, seed=9)
        config = DKFConfig(model=linear_model(dims=2, dt=0.1), delta=3.0)
        session = DKFSession(config, verify_mirror=True)
        for decision in session.run(spiky):
            error = np.max(np.abs(decision.server_value - decision.source_value))
            assert error <= 3.0 + 1e-9

    def test_spikes_cost_updates(self, trajectory_small):
        config = DKFConfig(model=linear_model(dims=2, dt=0.1), delta=3.0)
        clean_updates = evaluate_scheme(
            DKFSession(config), trajectory_small
        ).updates
        spiky = add_spikes(trajectory_small, rate=0.05, magnitude=50.0, seed=9)
        spiky_updates = evaluate_scheme(DKFSession(config), spiky).updates
        assert spiky_updates > clean_updates

    def test_smoothing_absorbs_spikes(self):
        """With KF_c in the loop, rare spikes barely move the smoothed
        stream, so they cost almost nothing."""
        base = stream_from_values(np.full(500, 100.0), name="flat")
        spiky = add_spikes(base, rate=0.02, magnitude=500.0, seed=3)
        raw_cfg = DKFConfig(model=constant_model(dims=1), delta=5.0)
        smooth_cfg = DKFConfig(
            model=constant_model(dims=1), delta=5.0, smoothing_f=1e-7
        )
        raw_updates = evaluate_scheme(DKFSession(raw_cfg), spiky).updates
        smooth_updates = evaluate_scheme(DKFSession(smooth_cfg), spiky).updates
        assert smooth_updates < raw_updates / 3

    def test_dropped_records_keep_lockstep(self, trajectory_small):
        """Missing sampling instants (sensor dropouts) must not desync the
        mirror pair -- both sides simply never see those instants."""
        gappy = drop_records(trajectory_small, rate=0.2, seed=4)
        config = DKFConfig(model=linear_model(dims=2, dt=0.1), delta=3.0)
        session = DKFSession(config, verify_mirror=True)
        for decision in session.run(gappy):
            error = np.max(np.abs(decision.server_value - decision.source_value))
            assert error <= 3.0 + 1e-9

    def test_frozen_sensor_goes_silent_and_recovers(self):
        """A stuck sensor looks like a constant stream: the DKF stops
        transmitting (correctly -- the reported value *is* constant) and
        picks up again when the fault clears."""
        moving = stream_from_values(
            np.arange(300, dtype=float) * 2.0, name="ramp"
        )
        frozen = freeze_sensor(moving, start=100, length=100)
        config = DKFConfig(model=linear_model(dims=1, dt=1.0), delta=1.0)
        session = DKFSession(config)
        decisions = session.run(frozen)
        # Mid-freeze (after the filter re-learns slope 0): silence.
        mid_freeze = [d.sent for d in decisions[150:195]]
        assert sum(mid_freeze) == 0
        # After recovery the ramp resumes and transmissions come back.
        post = [d.sent for d in decisions[200:240]]
        assert sum(post) >= 1


class TestSchemeContract:
    """Every suppression scheme honours the common interface contract."""

    @pytest.fixture
    def schemes(self):
        return [
            CachedValueScheme.from_precision(3.0, dims=1),
            DKFSession(DKFConfig(model=constant_model(dims=1), delta=3.0)),
            DKFSession(
                DKFConfig(
                    model=linear_model(dims=1, dt=1.0),
                    delta=3.0,
                    smoothing_f=1e-5,
                )
            ),
        ]

    def test_first_decision_always_sends(self, schemes, ramp_stream):
        for scheme in schemes:
            scheme.reset()
            assert scheme.observe(ramp_stream[0]).sent, scheme.name

    def test_reset_restores_initial_behaviour(self, schemes, ramp_stream):
        for scheme in schemes:
            first = [d.sent for d in scheme.run(ramp_stream)]
            scheme.reset()
            second = [d.sent for d in scheme.run(ramp_stream)]
            assert first == second, scheme.name

    def test_decisions_echo_record_index(self, schemes, ramp_stream):
        for scheme in schemes:
            scheme.reset()
            ks = [d.k for d in scheme.run(ramp_stream)]
            assert ks == [r.k for r in ramp_stream], scheme.name

    def test_payload_only_when_sent(self, schemes, ramp_stream):
        for scheme in schemes:
            scheme.reset()
            for decision in scheme.run(ramp_stream):
                if decision.sent:
                    assert decision.payload_floats > 0, scheme.name
                else:
                    assert decision.payload_floats == 0, scheme.name
