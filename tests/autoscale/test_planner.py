"""Queueing planner: forecast + watermarks in, resource plan out."""

import dataclasses

from repro.autoscale import AutoscalePolicy, Forecast, QueueingPlanner


def make_planner(**overrides):
    return QueueingPlanner(
        dataclasses.replace(AutoscalePolicy(), **overrides)
    )


def flat(mean, sigma=0.1, horizon=8):
    return Forecast(mean=mean, sigma=sigma, horizon=horizon)


class TestPlanInbox:
    def kwargs(self, **overrides):
        base = dict(
            depth=0,
            capacity=16,
            drain_per_tick=7,
            arrival=flat(2.0),
            streams=24,
            widened=0,
        )
        base.update(overrides)
        return base

    def test_calm_forecast_is_a_noop(self):
        plan = make_planner().plan_inbox(0, **self.kwargs())
        assert not plan.acts
        assert plan.reason["predicted_depth"] == 0.0

    def test_widens_when_predicted_depth_crosses_high(self):
        # λ̂ = 10 vs μ = 7: depth ~ 24 one horizon out, >> high (8).
        plan = make_planner().plan_inbox(
            0, **self.kwargs(arrival=flat(10.0))
        )
        assert plan.widen_steps == 2  # capped by widen_per_interval
        assert plan.reason["need"] > 2

    def test_need_sized_on_surplus_over_share(self):
        # surplus 3/tick, share 10/24 ≈ 0.42 → ceil(3/0.42) = 8 steps.
        plan = make_planner(widen_per_interval=16).plan_inbox(
            0, **self.kwargs(arrival=flat(10.0))
        )
        assert plan.reason["need"] == 8
        assert plan.widen_steps == 8

    def test_outstanding_steps_credit_the_need(self):
        plan = make_planner(widen_per_interval=16).plan_inbox(
            0, **self.kwargs(arrival=flat(10.0), widened=6)
        )
        assert plan.reason["need"] == 2
        assert plan.widen_steps == 2

    def test_fully_credited_need_is_a_noop(self):
        plan = make_planner().plan_inbox(
            0, **self.kwargs(arrival=flat(10.0), widened=12)
        )
        assert plan.widen_steps == 0
        assert plan.reason["need"] < 0

    def test_backlog_demands_widening_even_at_rate_balance(self):
        """λ̂ == μ but the queue stands deep: the backlog must drain
        within one horizon or the inbox sits pinned above the reactive
        watermark forever."""
        plan = make_planner(widen_per_interval=16).plan_inbox(
            0, **self.kwargs(arrival=flat(7.0), depth=12)
        )
        assert plan.widen_steps > 0

    def test_trigger_uses_upper_bound(self):
        # Point forecast is calm; the honest upper bound is not.
        uncertain = Forecast(mean=6.0, sigma=4.0, horizon=8)
        plan = make_planner().plan_inbox(
            0, **self.kwargs(arrival=uncertain)
        )
        # Triggered (upper = 10 > μ), but sized on the mean (6 < μ,
        # no surplus, no backlog) → minimum ask of one step.
        assert plan.widen_steps == 1
        assert plan.reason["need"] == 1

    def test_restores_when_forecast_and_depth_clear_low(self):
        plan = make_planner().plan_inbox(
            0, **self.kwargs(arrival=flat(1.0), depth=0, widened=4)
        )
        assert plan.restore_steps == 2  # restore_per_interval

    def test_no_restore_while_depth_holds(self):
        plan = make_planner().plan_inbox(
            0, **self.kwargs(arrival=flat(1.0), depth=6, widened=4)
        )
        assert plan.restore_steps == 0

    def test_nothing_to_restore_is_a_noop(self):
        plan = make_planner().plan_inbox(
            0, **self.kwargs(arrival=flat(1.0), depth=0, widened=0)
        )
        assert not plan.acts


class TestPlanShards:
    def kwargs(self, **overrides):
        base = dict(
            budget_us=100.0,
            predictions={"a": flat(50.0), "b": flat(60.0)},
            rows={"a": 8, "b": 8},
            signatures={"a": "sig", "b": "sig"},
            current_workers=2,
        )
        base.update(overrides)
        return base

    def test_within_budget_is_a_noop(self):
        plan = make_planner(min_workers=2, max_workers=2).plan_shards(
            0, **self.kwargs()
        )
        assert not plan.split_shards
        assert not plan.merge_pairs

    def test_splits_shard_over_headroom(self):
        plan = make_planner().plan_shards(
            0, **self.kwargs(predictions={"a": flat(150.0), "b": flat(60.0)})
        )
        assert plan.split_shards == ("a",)

    def test_single_row_shard_never_splits(self):
        plan = make_planner().plan_shards(
            0,
            **self.kwargs(
                predictions={"a": flat(150.0), "b": flat(60.0)},
                rows={"a": 1, "b": 8},
            ),
        )
        assert not plan.split_shards

    def test_merges_same_signature_under_headroom(self):
        plan = make_planner().plan_shards(
            0, **self.kwargs(predictions={"a": flat(10.0), "b": flat(12.0)})
        )
        assert plan.merge_pairs == (("a", "b"),)

    def test_never_merges_across_signatures(self):
        plan = make_planner().plan_shards(
            0,
            **self.kwargs(
                predictions={"a": flat(10.0), "b": flat(12.0)},
                signatures={"a": "sig1", "b": "sig2"},
            ),
        )
        assert not plan.merge_pairs

    def test_hysteresis_band_holds_position(self):
        # Combined 70 < split (100) but > merge (35): do nothing.
        plan = make_planner().plan_shards(
            0, **self.kwargs(predictions={"a": flat(30.0), "b": flat(40.0)})
        )
        assert not plan.split_shards and not plan.merge_pairs

    def test_worker_target_is_ceiling_of_total_over_budget(self):
        plan = make_planner().plan_shards(
            0,
            **self.kwargs(
                predictions={"a": flat(150.0), "b": flat(160.0)},
                current_workers=1,
            ),
        )
        assert plan.workers == 4  # ceil(310/100) with headroom for σ

    def test_worker_target_clamped_to_policy_bounds(self):
        plan = make_planner(max_workers=2).plan_shards(
            0,
            **self.kwargs(
                predictions={"a": flat(500.0), "b": flat(500.0)},
                current_workers=1,
            ),
        )
        assert plan.workers == 2

    def test_matching_worker_count_omitted_from_plan(self):
        plan = make_planner().plan_shards(
            0, **self.kwargs(current_workers=2)
        )
        assert plan.workers is None
