"""Inbox / shard autoscalers: the closed forecast→plan→actuate loop."""

import dataclasses

from repro.autoscale import AutoscalePolicy, InboxAutoscaler, ShardAutoscaler
from repro.resilience import OverloadPolicy
from repro.resilience.supervisor import OverloadController


def make_policy(**overrides):
    base = dict(
        control_interval=4,
        warmup_ticks=8,
        surge_z=2.5,
        boost_ticks=8,
    )
    base.update(overrides)
    return dataclasses.replace(AutoscalePolicy(), **base)


def make_overload(streams=8, **overrides):
    base = dict(
        inbox_capacity=16,
        drain_per_tick=7,
        high_watermark=0.5,
        low_watermark=0.1,
        cooldown_ticks=8,
    )
    base.update(overrides)
    ctl = OverloadController(OverloadPolicy(**base))
    for i in range(streams):
        ctl.register(f"s{i}", priority=i % 3, base_min_delta=1.0)
    return ctl


def drive(scaler, rates, *, depth=0, start=0):
    """Feed per-tick arrival counts; returns all actuated changes."""
    offered = 0
    changes = {}
    for tick, rate in enumerate(rates, start=start):
        offered += rate
        changes.update(scaler.control(tick, depth=depth, offered=offered))
    return changes


class TestInboxAutoscaler:
    def test_calm_load_never_widens(self):
        overload = make_overload()
        scaler = InboxAutoscaler(make_policy(), overload)
        drive(scaler, [2] * 60)
        assert overload.ledger()["widen_steps"] == 0

    def test_widens_before_the_inbox_fills(self):
        """A sustained arrival surplus triggers planned widening while
        the inbox still has headroom (depth stays below the reactive
        watermark the whole time)."""
        overload = make_overload()
        scaler = InboxAutoscaler(make_policy(), overload)
        drive(scaler, [2] * 30)
        drive(scaler, [12] * 20, depth=4, start=30)
        ledger = overload.ledger()
        assert ledger["widen_steps"] > 0
        # Every step is accounted for by a planner trace entry.
        assert ledger["widen_steps"] == sum(
            len(entry["changes"])
            for entry in scaler.trace()
            if entry["widen_steps"]
        )

    def test_surge_interrupt_plans_off_interval(self):
        """A fresh surge detection must not wait out the control
        interval -- the plan lands on the detection tick."""
        overload = make_overload()
        scaler = InboxAutoscaler(
            make_policy(control_interval=16), overload
        )
        drive(scaler, [2] * 33)
        # Surge lands mid-interval (tick 33, next planned eval is 48).
        drive(scaler, [14] * 4, depth=6, start=33)
        ticks = [e["tick"] for e in scaler.trace() if e["widen_steps"]]
        assert ticks and ticks[0] < 48
        assert ticks[0] % 16 != 0

    def test_restores_after_load_clears(self):
        overload = make_overload()
        scaler = InboxAutoscaler(make_policy(), overload)
        drive(scaler, [2] * 30)
        drive(scaler, [12] * 20, depth=4, start=30)
        assert overload.ledger()["widen_steps"] > 0
        drive(scaler, [1] * 60, depth=0, start=50)
        ledger = overload.ledger()
        assert ledger["balanced"]
        assert ledger["restore_steps"] == ledger["widen_steps"]

    def test_report_carries_forecaster_and_ledger(self):
        overload = make_overload()
        scaler = InboxAutoscaler(make_policy(), overload)
        drive(scaler, [2] * 20)
        report = scaler.report()
        assert report["arrival"]["name"] == "inbox_arrival"
        assert report["ledger"]["balanced"]

    def test_trace_is_bounded_per_interval(self):
        overload = make_overload()
        scaler = InboxAutoscaler(make_policy(control_interval=4), overload)
        drive(scaler, [2] * 41)
        # Interval 4 over ticks 0..40 → at most 11 plan evaluations,
        # and the first few are swallowed by warmup.
        assert 1 <= len(scaler.trace()) <= 11


class TestShardAutoscaler:
    def feed(self, scaler, shard_us, ticks, start=0):
        plan = None
        for tick in range(start, start + ticks):
            for sid, us in shard_us.items():
                scaler.note(tick, sid, us)
            got = scaler.control(
                tick,
                budget_us=100.0,
                rows={sid: 8 for sid in shard_us},
                signatures={sid: "sig" for sid in shard_us},
                workers=1,
            )
            if got is not None and got.acts:
                plan = got
        return plan

    def test_no_plan_before_warmup(self):
        scaler = ShardAutoscaler(make_policy(warmup_ticks=16))
        plan = self.feed(scaler, {"a": 50.0}, ticks=8)
        assert plan is None

    def test_hot_shard_planned_for_split(self):
        scaler = ShardAutoscaler(make_policy())
        plan = self.feed(scaler, {"a": 400.0, "b": 50.0}, ticks=24)
        assert plan is not None
        assert "a" in plan.split_shards
        assert ("a", "b") not in plan.merge_pairs

    def test_cold_siblings_planned_for_merge(self):
        scaler = ShardAutoscaler(make_policy())
        plan = self.feed(scaler, {"a": 5.0, "b": 6.0}, ticks=24)
        assert plan is not None
        assert plan.merge_pairs == (("a", "b"),)

    def test_forget_drops_the_model(self):
        scaler = ShardAutoscaler(make_policy())
        self.feed(scaler, {"a": 50.0}, ticks=24)
        assert "a" in scaler.report()["shards"]
        scaler.forget("a")
        assert "a" not in scaler.report()["shards"]
