"""Surge drill: determinism, gates, and the headline acceptance claim."""

from repro.autoscale import AutoscalePolicy
from repro.autoscale.drill import compare_surge_drill, run_surge_drill

SMALL = dict(ticks=150, sources=12, surge_start=60, surge_len=40)


def test_same_seed_same_trajectory():
    a = run_surge_drill(3, **SMALL, autoscale=AutoscalePolicy())
    b = run_surge_drill(3, **SMALL, autoscale=AutoscalePolicy())
    assert a.as_dict() == b.as_dict()


def test_different_seeds_differ():
    a = run_surge_drill(3, **SMALL)
    b = run_surge_drill(4, **SMALL)
    assert a.traffic != b.traffic


def test_surge_multiplies_offered_load():
    result = run_surge_drill(7, **SMALL)
    assert result.surge_rate >= 2.0 * result.calm_rate


def test_drops_are_charged_to_the_ledger():
    # Full-width fleet: 12 sources never saturate the inbox.
    result = run_surge_drill(
        7, ticks=150, sources=24, surge_start=60, surge_len=40
    )  # reactive only
    assert result.inbox_dropped > 0
    assert result.ledger["dropped_updates"] == result.inbox_dropped
    assert result.shed_error_total > 0


def test_autoscale_payload_carries_plans_and_trace():
    result = run_surge_drill(7, **SMALL, autoscale=AutoscalePolicy())
    assert result.autoscale is not None
    assert result.autoscale["plans"] > 0
    assert result.autoscale["trace"], "control decisions missing"
    assert result.autoscale["ledger"]["widen_steps"] > 0


def test_compare_reports_every_gate():
    comparison = compare_surge_drill(7, **SMALL)
    assert set(comparison["gates"]) == {
        "surge_offered",
        "slo_held",
        "ledger_balanced",
        "shed_error_reduced",
        "fewer_drops",
    }


def test_acceptance_default_drill_passes_all_gates():
    """The PR's headline claim: offered load triples mid-run, the
    autoscaler holds the SLO, the shed ledger balances, and the audited
    δ-shed error lands strictly below the reactive-only baseline."""
    comparison = compare_surge_drill(7)
    assert comparison["passed"], comparison["gates"]
    enabled = comparison["enabled"]
    disabled = comparison["disabled"]
    assert enabled["ledger"]["balanced"]
    assert enabled["shed_error_total"] < disabled["shed_error_total"]
    assert enabled["inbox_dropped"] < disabled["inbox_dropped"]
    assert enabled["settle_ticks"] < disabled["settle_ticks"]
