"""Load forecaster: tracking, surge boost, honest intervals."""

import dataclasses
import math

import numpy as np
import pytest

from repro.autoscale import AutoscalePolicy, LoadForecaster


def make_policy(**overrides):
    base = dict(warmup_ticks=4, surge_z=2.5, q_boost=32.0, boost_ticks=6)
    base.update(overrides)
    return dataclasses.replace(AutoscalePolicy(), **base)


def drive(forecaster, values, start=0):
    z = None
    for tick, value in enumerate(values, start=start):
        z = forecaster.observe(tick, float(value))
    return z


class TestObservation:
    def test_unwarmed_until_enough_points(self):
        fc = LoadForecaster("sig", make_policy(warmup_ticks=4))
        for tick in range(3):
            fc.observe(tick, 5.0)
            assert not fc.warmed
        fc.observe(3, 5.0)
        assert fc.warmed

    def test_no_forecast_before_any_data(self):
        fc = LoadForecaster("sig", make_policy())
        assert fc.forecast() is None

    def test_tracks_steady_level(self):
        fc = LoadForecaster("sig", make_policy())
        rng = np.random.default_rng(0)
        drive(fc, 5.0 + rng.normal(0.0, 0.2, size=60))
        forecast = fc.forecast()
        assert forecast.mean == pytest.approx(5.0, abs=0.5)

    def test_non_finite_points_are_skipped(self):
        fc = LoadForecaster("sig", make_policy())
        drive(fc, [5.0] * 10)
        assert fc.observe(10, float("nan")) is None
        assert fc.observe(11, float("inf")) is None
        # The filter state is untouched by the bad points.
        assert fc.forecast().mean == pytest.approx(5.0, abs=0.2)


class TestSurgeBoost:
    def test_level_jump_arms_the_boost(self):
        fc = LoadForecaster("sig", make_policy())
        rng = np.random.default_rng(1)
        drive(fc, 2.0 + rng.normal(0.0, 0.1, size=30))
        assert not fc.boosted
        fc.observe(30, 20.0)
        assert fc.boosted
        assert fc.surges == 1
        assert fc.last_surge_tick == 30

    def test_boost_snaps_to_the_new_level(self):
        """With the Q boost the filter re-learns the level in ~2 points
        instead of low-passing the regime change away."""
        fc = LoadForecaster("sig", make_policy())
        rng = np.random.default_rng(2)
        drive(fc, 2.0 + rng.normal(0.0, 0.1, size=30))
        for tick in range(30, 33):
            fc.observe(tick, 20.0)
        assert fc.forecast().mean == pytest.approx(20.0, rel=0.15)

    def test_boost_expires_after_boost_ticks(self):
        fc = LoadForecaster("sig", make_policy(boost_ticks=5))
        rng = np.random.default_rng(3)
        drive(fc, 2.0 + rng.normal(0.0, 0.1, size=30))
        fc.observe(30, 20.0)
        assert fc.boosted
        for tick in range(31, 40):
            fc.observe(tick, 20.0)
        assert not fc.boosted

    def test_no_surge_detection_during_warmup(self):
        fc = LoadForecaster("sig", make_policy(warmup_ticks=16))
        fc.observe(0, 2.0)
        fc.observe(1, 50.0)
        assert fc.surges == 0
        assert not fc.boosted


class TestForecast:
    def test_interval_widens_with_horizon(self):
        fc = LoadForecaster("sig", make_policy())
        rng = np.random.default_rng(4)
        drive(fc, 5.0 + rng.normal(0.0, 0.3, size=40))
        near, far = fc.forecast(1), fc.forecast(16)
        assert far.sigma > near.sigma
        assert near.upper(1.0) > near.mean > near.lower(1.0)

    def test_zero_horizon_is_current_state(self):
        fc = LoadForecaster("sig", make_policy())
        drive(fc, [5.0] * 20)
        assert fc.forecast(0).mean == pytest.approx(5.0, abs=0.1)

    def test_negative_horizon_rejected(self):
        fc = LoadForecaster("sig", make_policy())
        fc.observe(0, 1.0)
        with pytest.raises(ValueError):
            fc.forecast(-1)

    def test_cv_model_extrapolates_ramps(self):
        fc = LoadForecaster("sig", make_policy(model="cv"))
        drive(fc, [float(v) for v in range(40)])  # slope 1/tick
        forecast = fc.forecast(8)
        assert forecast.mean == pytest.approx(47.0, abs=2.0)

    def test_rw_model_holds_level(self):
        fc = LoadForecaster("sig", make_policy(model="rw"))
        drive(fc, [float(v) for v in range(40)])
        # Random walk carries its level flat across the horizon -- no
        # trend extrapolation, unlike the cv model on the same ramp.
        assert fc.forecast(8).mean == pytest.approx(
            fc.forecast(0).mean, abs=1e-9
        )

    def test_as_dict_is_json_ready(self):
        import json

        fc = LoadForecaster("sig", make_policy())
        drive(fc, [5.0] * 20)
        payload = fc.as_dict()
        assert payload["name"] == "sig"
        assert payload["seen"] == 20
        assert math.isfinite(payload["forecast_mean"])
        json.dumps(payload)
