"""AutoscalePolicy validation: every knob rejects nonsense up front."""

import dataclasses

import pytest

from repro.autoscale import AutoscalePolicy
from repro.errors import ConfigurationError


def test_defaults_validate():
    AutoscalePolicy().validate()


@pytest.mark.parametrize(
    "overrides",
    [
        {"control_interval": 0},
        {"horizon_ticks": 0},
        {"model": "arima"},
        {"confidence_z": -0.1},
        {"surge_z": 0.0},
        {"q_boost": 0.5},
        {"boost_ticks": 0},
        {"warmup_ticks": 0},
        {"widen_per_interval": 0},
        {"restore_per_interval": 0},
        {"plan_low": 0.0},
        {"plan_low": 0.6, "plan_high": 0.5},
        {"plan_high": 1.5},
        {"split_headroom": 0.0},
        {"merge_headroom": 0.0},
        # Hysteresis: merge must sit strictly below split.
        {"merge_headroom": 1.0, "split_headroom": 1.0},
        {"min_workers": -1},
        {"min_workers": 4, "max_workers": 2},
    ],
)
def test_rejects_bad_knobs(overrides):
    with pytest.raises(ConfigurationError):
        dataclasses.replace(AutoscalePolicy(), **overrides).validate()


def test_policy_is_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        AutoscalePolicy().control_interval = 2
