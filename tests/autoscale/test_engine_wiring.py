"""Autoscaler wiring into both engines: arming, actuation, reports."""

import dataclasses

import numpy as np
import pytest

from repro.autoscale import AutoscalePolicy
from repro.dkf.config import TransportPolicy
from repro.dsms.engine import StreamEngine
from repro.dsms.query import ContinuousQuery
from repro.errors import ConfigurationError
from repro.filters.models import linear_model
from repro.obs import Telemetry
from repro.resilience import OverloadPolicy, ResilienceConfig
from repro.scale.engine import BatchStreamEngine
from repro.streams.base import stream_from_values


class TestScalarEngineWiring:
    def test_autoscale_requires_overload_policy(self):
        with pytest.raises(ConfigurationError):
            StreamEngine(autoscale=AutoscalePolicy())

    def make_engine(self, telemetry=None):
        engine = StreamEngine(
            telemetry=telemetry,
            resilience=ResilienceConfig(
                overload=OverloadPolicy(
                    inbox_capacity=16, drain_per_tick=7, cooldown_ticks=8
                )
            ),
            autoscale=AutoscalePolicy(),
        )
        rng = np.random.default_rng(11)
        for i in range(6):
            sid = f"s{i}"
            values = np.cumsum(rng.normal(0.0, 0.5, size=80))
            engine.add_source(
                sid,
                linear_model(dims=1, dt=1.0),
                stream_from_values(values, name=sid),
                transport=TransportPolicy(ack_timeout_ticks=4),
                priority=i % 3,
            )
            engine.submit_query(
                ContinuousQuery(sid, delta=1.0, query_id=f"q-{sid}")
            )
        return engine

    def test_autoscaler_armed_and_reported(self):
        engine = self.make_engine()
        assert engine.autoscaler is not None
        engine.run(40)
        report = engine.resilience_report()
        assert "autoscale" in report
        assert report["autoscale"]["arrival"]["seen"] > 0

    def test_tail_drops_charge_the_shed_account(self):
        # A 4-slot inbox cannot hold the tick-0 priming burst of six
        # sources, so some updates must tail-drop -- and every drop
        # must land on the overload controller's shed account.
        engine = StreamEngine(
            telemetry=Telemetry(),
            resilience=ResilienceConfig(
                overload=OverloadPolicy(
                    inbox_capacity=4, drain_per_tick=2, cooldown_ticks=8
                )
            ),
            autoscale=AutoscalePolicy(),
        )
        rng = np.random.default_rng(11)
        for i in range(6):
            sid = f"s{i}"
            values = np.cumsum(rng.normal(0.0, 0.5, size=40))
            engine.add_source(
                sid,
                linear_model(dims=1, dt=1.0),
                stream_from_values(values, name=sid),
                transport=TransportPolicy(ack_timeout_ticks=4),
                priority=i % 3,
            )
            engine.submit_query(
                ContinuousQuery(sid, delta=1.0, query_id=f"q-{sid}")
            )
        engine.run(40)
        assert engine.inbox.dropped > 0
        ledger = engine.overload.ledger()
        assert ledger["dropped_updates"] == engine.inbox.dropped
        assert ledger["shed_error_total"] > 0

    def test_answers_unaffected_by_arming(self):
        """With calm load the autoscaler never acts, so arming it must
        not change a single answer."""
        armed = self.make_engine()
        plain = StreamEngine(
            resilience=ResilienceConfig(
                overload=OverloadPolicy(
                    inbox_capacity=16, drain_per_tick=7, cooldown_ticks=8
                )
            ),
        )
        rng = np.random.default_rng(11)
        for i in range(6):
            sid = f"s{i}"
            values = np.cumsum(rng.normal(0.0, 0.5, size=80))
            plain.add_source(
                sid,
                linear_model(dims=1, dt=1.0),
                stream_from_values(values, name=sid),
                transport=TransportPolicy(ack_timeout_ticks=4),
                priority=i % 3,
            )
            plain.submit_query(
                ContinuousQuery(sid, delta=1.0, query_id=f"q-{sid}")
            )
        armed.run(60)
        plain.run(60)
        assert armed.overload.ledger()["widen_steps"] == 0
        for a, b in zip(armed.answers(), plain.answers()):
            assert a.source_id == b.source_id
            np.testing.assert_array_equal(a.value, b.value)


def _batch_engine(policy, budget_us, max_shard_rows=4096, sources=4):
    engine = BatchStreamEngine(
        latency_budget_us=budget_us,
        autoscale=policy,
        max_shard_rows=max_shard_rows,
    )
    rng = np.random.default_rng(5)
    model = linear_model(dims=1, dt=1.0)
    for i in range(sources):
        sid = f"s{i}"
        values = np.cumsum(rng.normal(0.0, 0.5, size=200))
        engine.add_source(
            sid, model, stream_from_values(values, name=sid)
        )
        engine.submit_query(
            ContinuousQuery(sid, delta=1.0, query_id=f"q-{sid}")
        )
    return engine


class TestBatchEngineWiring:
    def policy(self, **overrides):
        base = dict(control_interval=2, warmup_ticks=4)
        base.update(overrides)
        return dataclasses.replace(AutoscalePolicy(), **base)

    def test_autoscale_requires_latency_budget(self):
        with pytest.raises(ConfigurationError):
            BatchStreamEngine(autoscale=AutoscalePolicy())

    def test_predictive_split_on_blown_budget(self):
        # A budget no real step can meet forces the planner's hand.
        engine = _batch_engine(self.policy(), budget_us=1e-3)
        engine.run(30)
        report = engine.scale_report()
        assert len(report["shards"]) > 1
        assert report["autoscale"]["plans"] > 0

    def test_predictive_merge_rejoins_cold_shards(self):
        engine = _batch_engine(self.policy(), budget_us=1e-3)
        engine.run(30)
        split_into = len(engine.scale_report()["shards"])
        assert split_into > 1
        # Lift the budget so the halves run far under the merge
        # headroom; the planner should weld them back together.
        engine._latency_budget_us = 1e9
        engine.run(40)
        report = engine.scale_report()
        assert report["merges"] >= 1
        assert len(report["shards"]) < split_into

    def test_split_and_merge_preserve_answers(self):
        """The elastic engine's answers match a static engine's."""
        elastic = _batch_engine(self.policy(), budget_us=1e-3)
        static = _batch_engine(None, budget_us=None)
        elastic.run(30)
        elastic._latency_budget_us = 1e9
        elastic.run(40)
        static.run(70)
        a = {x.source_id: x for x in elastic.answers()}
        b = {x.source_id: x for x in static.answers()}
        assert set(a) == set(b)
        for sid in a:
            np.testing.assert_array_equal(a[sid].value, b[sid].value)

    def test_pool_resize_bounded_by_policy(self):
        engine = _batch_engine(
            self.policy(min_workers=0, max_workers=2), budget_us=1e-3
        )
        engine.run(30)
        assert engine.scale_report()["workers"] <= 2
