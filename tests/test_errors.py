"""Sanity tests for the exception hierarchy: catchability contracts."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        leaves = [
            errors.DimensionError,
            errors.NotPositiveDefiniteError,
            errors.DivergenceError,
            errors.MirrorDesyncError,
            errors.StaleSessionError,
            errors.StreamExhaustedError,
            errors.UnknownSourceError,
            errors.DuplicateSourceError,
            errors.ConfigurationError,
        ]
        for leaf in leaves:
            assert issubclass(leaf, errors.ReproError), leaf

    def test_filter_family(self):
        for leaf in (
            errors.DimensionError,
            errors.NotPositiveDefiniteError,
            errors.DivergenceError,
        ):
            assert issubclass(leaf, errors.FilterError)

    def test_protocol_family(self):
        assert issubclass(errors.MirrorDesyncError, errors.ProtocolError)
        assert issubclass(errors.StaleSessionError, errors.ProtocolError)

    def test_query_family(self):
        assert issubclass(errors.UnknownSourceError, errors.QueryError)
        assert issubclass(errors.DuplicateSourceError, errors.QueryError)

    def test_stream_family(self):
        assert issubclass(errors.StreamExhaustedError, errors.StreamError)

    def test_base_catch_at_api_boundary(self):
        """A caller catching ReproError sees library failures but not
        foreign ones."""
        with pytest.raises(errors.ReproError):
            raise errors.MirrorDesyncError("boom")
        with pytest.raises(ValueError):
            # Foreign errors pass through untouched.
            try:
                raise ValueError("not ours")
            except errors.ReproError:  # pragma: no cover
                pytest.fail("ValueError must not be caught as ReproError")
