"""Time-unit labelling: tick-denominated metrics under a wall clock.

The deterministic engine counts in ticks; the wire runtime counts in
milliseconds on the *same* instruments.  The unit satellite threads an
explicit denomination through three layers so nothing is misread:
``MetricHistory.unit`` (exported in the snapshot ``history`` section),
``Telemetry(time_unit=...)`` (inherited by a default history), and the
per-sample ``unit=`` label on ``Telemetry.observe``.  The back-compat
half of the contract matters just as much: tick-mode call sites omit
the label entirely, so seeded snapshots stay byte-identical.
"""

import pytest

from repro.errors import ConfigurationError
from repro.obs import Telemetry
from repro.obs.exporters import build_snapshot
from repro.obs.history import MetricHistory


def test_history_unit_defaults_to_ticks():
    history = MetricHistory()
    assert history.unit == "ticks"
    assert history.as_dict()["unit"] == "ticks"


def test_history_unit_is_exported_in_snapshots():
    telemetry = Telemetry(time_unit="ms")
    telemetry.gauge("inbox_depth", 3.0)
    telemetry.set_tick(250)
    telemetry.sample_now()
    snapshot = build_snapshot(telemetry, meta={})
    assert snapshot["history"]["unit"] == "ms"
    # The sampled "ticks" really are milliseconds of wall clock.
    series = snapshot["history"]["series"]
    depth = next(s for s in series if s["name"] == "inbox_depth")
    assert 250 in depth["ticks"]


def test_history_rejects_empty_unit():
    with pytest.raises(ConfigurationError):
        MetricHistory(unit="")


def test_telemetry_time_unit_reaches_default_history():
    assert Telemetry().time_unit == "ticks"
    assert Telemetry().history.unit == "ticks"
    assert Telemetry(time_unit="ms").history.unit == "ms"


def test_explicit_history_wins_over_time_unit():
    history = MetricHistory(unit="s")
    telemetry = Telemetry(history=history, time_unit="ms")
    assert telemetry.history.unit == "s"


def test_observe_unit_label_separates_denominations():
    telemetry = Telemetry(time_unit="ms")
    telemetry.observe("staleness_at_answer_ticks", 1500.0, unit="ms")
    labelled = telemetry.metrics.histogram(
        "staleness_at_answer_ticks", {"unit": "ms"}
    )
    assert labelled.count == 1
    # The labelled series is distinct from the bare tick-mode one.
    bare = telemetry.metrics.histogram("staleness_at_answer_ticks")
    assert bare.count == 0


def test_observe_without_unit_is_unchanged():
    # Tick-mode call sites must keep producing label-free series so
    # existing seeded snapshots stay byte-identical.
    telemetry = Telemetry()
    telemetry.observe("staleness_at_answer_ticks", 4.0)
    telemetry.set_tick(1)
    telemetry.sample_now()
    snapshot = build_snapshot(telemetry, meta={})
    [histogram] = snapshot["histograms"]
    assert histogram["name"] == "staleness_at_answer_ticks"
    assert histogram["labels"] == {}


def test_observe_unit_composes_with_source_label():
    telemetry = Telemetry()
    telemetry.observe("lag", 2.0, source_id="s1", unit="ms")
    series = telemetry.metrics.histogram(
        "lag", {"source": "s1", "unit": "ms"}
    )
    assert series.count == 1
