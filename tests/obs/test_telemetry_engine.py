"""End-to-end telemetry tests: the instrumented engine under faults.

The two acceptance properties from the observability issue:

* with :class:`~repro.obs.telemetry.NullTelemetry` (the default), seeded
  fault runs produce byte-identical :class:`EngineReport` objects -- the
  instrumentation must not perturb the system under observation;
* with telemetry enabled, a burst-loss run yields a JSONL event log in
  which every retransmit is traceable by trace ID back to the original
  suppressed or lost frame it recovers.
"""

import json

import numpy as np

from repro.dkf.config import TransportPolicy
from repro.dsms.engine import StreamEngine
from repro.dsms.faults import FaultSchedule
from repro.dsms.query import ContinuousQuery
from repro.filters.models import linear_model
from repro.obs import (
    JsonlEventWriter,
    Telemetry,
    render_dashboard,
    validate_snapshot,
)
from repro.streams.base import stream_from_values


def walk(n=300, seed=11):
    rng = np.random.default_rng(seed)
    return stream_from_values(
        np.cumsum(rng.normal(0.0, 1.0, size=n)), name="walk"
    )


def burst_schedule():
    return (
        FaultSchedule(seed=3)
        .crash("s0", at=120, restart_at=150)
        .burst_loss("s0", p_enter=0.05, p_exit=0.25)
    )


def build_engine(telemetry=None, n=300):
    engine = StreamEngine(telemetry=telemetry)
    engine.add_source(
        "s0",
        linear_model(dims=1, dt=1.0),
        walk(n),
        transport=TransportPolicy(ack_timeout_ticks=4),
    )
    engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
    engine.inject_faults(burst_schedule())
    return engine


def run(engine):
    engine.run()
    engine.settle()
    return engine


class TestNullTelemetryInvariance:
    def test_seeded_fault_runs_byte_identical(self):
        first = run(build_engine()).report()
        second = run(build_engine()).report()
        assert first == second
        assert first.to_dict() == second.to_dict()

    def test_enabled_telemetry_does_not_perturb_the_run(self):
        plain = run(build_engine()).report()
        traced = run(build_engine(telemetry=Telemetry())).report()
        assert plain == traced


class TestRetransmitTraceability:
    def test_every_retransmit_traceable_in_jsonl(self, tmp_path):
        path = tmp_path / "run.jsonl"
        telemetry = Telemetry()
        with JsonlEventWriter(path) as writer:
            telemetry.bus.subscribe(writer)
            engine = run(build_engine(telemetry=telemetry))
        assert engine.report().retransmits > 0
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        # Trace IDs are born when a frame is first offered to the wire.
        frame_births = {
            r["trace_id"]
            for r in rows
            if r["name"]
            in ("source.update", "engine.resync_prime", "source.retransmit")
        }
        retransmits = [r for r in rows if r["name"] == "source.retransmit"]
        assert retransmits
        for retransmit in retransmits:
            if retransmit["reason"] == "timeout":
                # An ack timeout always recovers concrete unacked frames.
                assert retransmit["recovers"], "retransmit recovers nothing"
            # A server-requested resync may recover nothing when the
            # request arrived on a stale ack (the gap already healed).
            for recovered in retransmit["recovers"]:
                assert recovered in frame_births
        assert any(r["recovers"] for r in retransmits)
        # Lost frames are traceable too: a fabric.lost trace is one that
        # some earlier event introduced.
        for lost in (r for r in rows if r["name"] == "fabric.lost"):
            if lost.get("trace_id") is not None:
                assert lost["trace_id"] in frame_births

    def test_crash_and_restart_events_emitted(self, tmp_path):
        telemetry = Telemetry()
        run(build_engine(telemetry=telemetry))
        counts = telemetry.bus.counts()
        assert counts.get("fault.crash") == 1
        assert counts.get("fault.restart") == 1
        # The restart forces a resync-primed first transmission.
        assert counts.get("engine.resync_prime", 0) >= 1

    def test_heartbeats_carry_no_trace(self):
        telemetry = Telemetry()
        engine = StreamEngine(telemetry=telemetry)
        values = np.zeros(60)
        engine.add_source(
            "s0",
            linear_model(dims=1, dt=1.0),
            stream_from_values(values, name="flat"),
            transport=TransportPolicy(
                ack_timeout_ticks=8, heartbeat_interval_ticks=5
            ),
        )
        engine.submit_query(ContinuousQuery("s0", delta=5.0, query_id="q"))
        run(engine)
        beats = telemetry.bus.events("source.heartbeat")
        assert beats
        assert all(b.trace_id is None for b in beats)


class TestRunArtifacts:
    def test_snapshot_validates_and_renders(self):
        telemetry = Telemetry()
        engine = run(build_engine(telemetry=telemetry))
        snapshot = engine.obs_snapshot({"name": "fault-run"})
        validate_snapshot(snapshot)
        text = render_dashboard(snapshot)
        assert "fault-run" in text
        assert "updates_sent_total" in text
        assert "engine.step" in text
        assert "source.retransmit" in text

    def test_expected_metric_families_present(self):
        telemetry = Telemetry()
        engine = run(build_engine(telemetry=telemetry))
        engine.answers()  # observes staleness at answer time
        names = {h.name for h in telemetry.metrics.histograms()}
        assert {
            "innovation_abs",
            "inter_update_gap_ticks",
            "ack_rtt_ticks",
            "frame_bytes",
            "staleness_at_answer_ticks",
        } <= names
        spans = {s.name for s in telemetry.timers.stats()}
        assert {
            "engine.run",
            "engine.step",
            "kalman.predict",
            "kalman.update",
            "fabric.deliver",
        } <= spans
