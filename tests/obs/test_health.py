"""Tests for the Kalman health watchers."""

import math

import pytest

from repro.obs import (
    DEFAULT_WATCHERS,
    FEDERATION_WATCHERS,
    HealthWatcher,
    MetricsRegistry,
    Telemetry,
    WatcherSpec,
)


def spec(**overrides):
    base = dict(
        name="w", metric="m", signal="gauge", q=0.05, r_floor=1.0,
        warmup=8, z_threshold=6.0, cooldown=8,
    )
    base.update(overrides)
    return WatcherSpec(**base)


class TestHealthWatcher:
    def test_flat_signal_never_fires(self):
        watcher = HealthWatcher(spec())
        for tick in range(200):
            assert watcher.score(tick, 5.0) is None
        assert watcher.anomalies == 0

    def test_warmup_suppresses_early_shocks(self):
        watcher = HealthWatcher(spec(warmup=10))
        assert watcher.score(0, 0.0) is None
        # A huge jump inside warmup must not fire.
        assert watcher.score(1, 1e6) is None
        assert watcher.anomalies == 0

    def test_step_change_fires_once_then_cools_down(self):
        watcher = HealthWatcher(spec(warmup=8, cooldown=50))
        for tick in range(30):
            watcher.score(tick, 1.0)
        anomaly = watcher.score(30, 100.0)
        assert anomaly is not None
        assert anomaly["watcher"] == "w"
        assert anomaly["nis"] > 36.0
        assert watcher.first_anomaly_tick == 30
        # Cooldown holds even if the new regime stays shocking.
        assert watcher.score(31, 200.0) is None
        assert watcher.anomalies == 1

    def test_relearns_new_regime_after_shift(self):
        watcher = HealthWatcher(spec(warmup=8, cooldown=4))
        for tick in range(30):
            watcher.score(tick, 1.0)
        watcher.score(30, 50.0)
        # After the cooldown the filter has re-learned the regime: a
        # steady 50.0 is the new normal and must not keep firing.
        fired_again = [
            tick for tick in range(31, 80)
            if watcher.score(tick, 50.0) is not None
        ]
        assert fired_again == []

    def test_non_finite_values_skipped(self):
        watcher = HealthWatcher(spec(warmup=0))
        assert watcher.score(0, math.nan) is None
        assert watcher.score(1, math.inf) is None
        assert watcher._seen == 0

    def test_as_dict_summary(self):
        watcher = HealthWatcher(spec())
        out = watcher.as_dict()
        assert out == {
            "name": "w",
            "metric": "m",
            "signal": "gauge",
            "anomalies": 0,
            "first_anomaly_tick": None,
            "last_anomaly_tick": None,
        }


class TestSignalDerivation:
    def test_gauge_sums_and_gauge_max_maxes(self):
        reg = MetricsRegistry()
        reg.gauge("m", {"source": "a"}).set(2.0)
        reg.gauge("m", {"source": "b"}).set(5.0)
        assert HealthWatcher(spec(signal="gauge")).derive(reg) == 7.0
        assert HealthWatcher(spec(signal="gauge_max")).derive(reg) == 5.0

    def test_gauge_none_when_metric_absent(self):
        assert HealthWatcher(spec()).derive(MetricsRegistry()) is None

    def test_rate_is_per_call_counter_delta(self):
        reg = MetricsRegistry()
        counter = reg.counter("m")
        watcher = HealthWatcher(spec(signal="rate"))
        counter.inc(3)
        assert watcher.derive(reg) is None  # first call sets the baseline
        counter.inc(4)
        assert watcher.derive(reg) == 4.0
        assert watcher.derive(reg) == 0.0

    def test_hist_mean_covers_new_samples_only(self):
        reg = MetricsRegistry()
        h = reg.histogram("m")
        watcher = HealthWatcher(spec(signal="hist_mean"))
        h.observe(100.0)
        assert watcher.derive(reg) is None  # baseline
        h.observe(2.0)
        h.observe(4.0)
        assert watcher.derive(reg) == 3.0
        assert watcher.derive(reg) is None  # nothing new arrived

    def test_unknown_signal_rejected(self):
        watcher = HealthWatcher(spec(signal="fft"))
        with pytest.raises(ValueError):
            watcher.derive(MetricsRegistry())


class TestHealthMonitor:
    def test_install_defaults(self):
        tel = Telemetry()
        tel.health.install_defaults()
        assert set(tel.health.watchers) == {
            w.name for w in DEFAULT_WATCHERS
        }
        tel.health.install_defaults(federation=True)
        assert "consensus_error" in tel.health.watchers
        assert {w.name for w in FEDERATION_WATCHERS} <= set(
            tel.health.watchers
        )

    def test_anomaly_reaches_bus_and_counter(self):
        tel = Telemetry()
        tel.health.watch(spec(metric="depth", warmup=4, cooldown=2))
        gauge = tel.metrics.gauge("depth")
        for tick in range(30):
            gauge.set(1.0 if tick < 25 else 500.0)
            tel.set_tick(tick)
        tel.sample_now()
        assert tel.health.total_anomalies >= 1
        events = tel.bus.events("health.anomaly")
        assert events and events[0].fields["watcher"] == "w"
        [counter] = [
            c for c in tel.metrics.counters()
            if c.name == "health_anomalies_total"
        ]
        assert counter.value == tel.health.total_anomalies

    def test_report_sorted_by_name(self):
        tel = Telemetry()
        tel.health.watch(spec(name="zeta"))
        tel.health.watch(spec(name="alpha"))
        names = [w["name"] for w in tel.health.report()["watchers"]]
        assert names == ["alpha", "zeta"]

    def test_clean_default_run_has_zero_anomalies(self):
        # The acceptance bar: defaults installed, steady traffic, no
        # faults -> not a single anomaly event.
        tel = Telemetry()
        tel.health.install_defaults()
        for tick in range(120):
            tel.count("fabric_lost_total", "s0", amount=0)
            tel.observe("ack_rtt_ticks", 2.0, "s0")
            tel.observe("staleness_at_answer_ticks", 1.0, "s0")
            tel.set_tick(tick)
        tel.sample_now()
        assert tel.health.total_anomalies == 0
        assert tel.bus.events("health.anomaly") == []
