"""Snapshot round-trip on a real federation run, plus v1 -> v2 migration.

The satellite contract: ``build_snapshot -> write_snapshot ->
load_snapshot -> validate_snapshot`` survives a federated run with the
self-monitoring layer installed, and pre-PR-7 ``repro.obs/v1`` files
(the committed BENCH baselines included) keep loading via the additive
migration.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.dsms.query import ContinuousQuery
from repro.errors import ConfigurationError
from repro.federation import FederatedCluster, FederationConfig
from repro.filters.models import constant_model
from repro.obs import (
    SNAPSHOT_SCHEMA,
    SNAPSHOT_SCHEMA_V1,
    Telemetry,
    build_snapshot,
    load_snapshot,
    migrate_snapshot,
    validate_snapshot,
    write_snapshot,
)
from repro.streams.base import stream_from_values

REPO_ROOT = Path(__file__).resolve().parents[2]


def federated_run(ticks=80, n_streams=4, seed=11):
    tel = Telemetry()
    tel.health.install_defaults(federation=True)
    tel.slo.install_defaults(federation=True)
    cluster = FederatedCluster(
        FederationConfig(peers=3, replication=2), telemetry=tel
    )
    rng = np.random.default_rng(seed)
    for i in range(n_streams):
        sid = f"s{i}"
        values = np.cumsum(rng.normal(0.0, 0.4, size=ticks))
        cluster.add_source(
            sid, constant_model(q=0.2, r=1.0),
            stream_from_values(values, name=sid),
        )
        cluster.submit_query(
            ContinuousQuery(sid, delta=1.0, query_id=f"q-{sid}")
        )
    cluster.run()
    cluster.answers()
    return tel, cluster


class TestFederationRoundTrip:
    def test_full_cycle_preserves_v2_sections(self, tmp_path):
        tel, _ = federated_run()
        snapshot = build_snapshot(tel, meta={"run": "federation"})
        path = tmp_path / "federation-snapshot.json"
        write_snapshot(path, snapshot)
        loaded = load_snapshot(path)
        assert validate_snapshot(loaded) is loaded
        assert loaded["schema"] == SNAPSHOT_SCHEMA
        assert loaded["meta"] == {"run": "federation"}
        # History sampled the run: federation counters have trajectories.
        series_names = {s["name"] for s in loaded["history"]["series"]}
        assert "fabric_delivered_total" in series_names
        assert loaded["history"]["samples"] > 0
        # Self-monitoring sections round-trip with their installed sets.
        rule_names = {r["name"] for r in loaded["alerts"]["rules"]}
        assert "delivery-ratio" in rule_names
        assert "consensus-error-bound" in rule_names
        watcher_names = {w["name"] for w in loaded["health"]["watchers"]}
        assert "consensus_error" in watcher_names
        # A clean federated run must not trip the self-monitoring layer.
        assert all(
            w["anomalies"] == 0 for w in loaded["health"]["watchers"]
        )
        assert all(
            r["state"] == "ok" for r in loaded["alerts"]["rules"]
        )
        assert loaded["events"]["dropped"] == 0

    def test_snapshot_json_is_plain_data(self, tmp_path):
        tel, _ = federated_run(ticks=40, n_streams=2)
        path = tmp_path / "snap.json"
        write_snapshot(path, build_snapshot(tel))
        raw = json.loads(path.read_text())  # no custom decoder needed
        assert raw["schema"] == SNAPSHOT_SCHEMA


def v1_fixture(**overrides):
    """A minimal hand-rolled pre-PR-7 snapshot."""
    snapshot = {
        "schema": SNAPSHOT_SCHEMA_V1,
        "meta": {"seed": 7},
        "counters": [
            {"name": "updates_sent_total", "labels": {}, "value": 3}
        ],
        "gauges": [],
        "histograms": [
            {
                "name": "ack_rtt_ticks",
                "labels": {"source": "s0"},
                "edges": [1.0, 2.0],
                "counts": [1, 1, 0],
                "count": 2,
                "sum": 2.5,
                "min": 0.5,
                "max": 2.0,
                "mean": 1.25,
            }
        ],
        "spans": [],
        "events": {"total": 5, "by_name": {"source.update": 5}},
    }
    snapshot.update(overrides)
    return snapshot


class TestV1Migration:
    def test_migrate_adds_sections_and_retags(self):
        migrated = migrate_snapshot(v1_fixture())
        assert migrated["schema"] == SNAPSHOT_SCHEMA
        assert migrated["history"]["series"] == []
        assert migrated["alerts"]["rules"] == []
        assert migrated["health"]["watchers"] == []
        assert migrated["events"]["dropped"] == 0
        assert validate_snapshot(migrated) is migrated

    def test_migrate_does_not_mutate_the_original(self):
        original = v1_fixture()
        migrate_snapshot(original)
        assert original["schema"] == SNAPSHOT_SCHEMA_V1
        assert "history" not in original

    def test_migrate_passes_v2_through_untouched(self):
        snapshot = build_snapshot(meta={})
        assert migrate_snapshot(snapshot) is snapshot

    def test_load_snapshot_migrates_v1_files(self, tmp_path):
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(v1_fixture()))
        loaded = load_snapshot(path)
        assert loaded["schema"] == SNAPSHOT_SCHEMA
        [hist] = loaded["histograms"]
        assert "p99" not in hist  # migration is additive, not recomputed

    def test_migration_preserves_old_payload(self, tmp_path):
        path = tmp_path / "v1.json"
        fixture = v1_fixture()
        path.write_text(json.dumps(fixture))
        loaded = load_snapshot(path)
        assert loaded["counters"] == fixture["counters"]
        assert loaded["events"]["by_name"] == {"source.update": 5}

    @pytest.mark.parametrize(
        "name", ["BENCH_engine_scale.json", "BENCH_federation.json"]
    )
    def test_committed_bench_baselines_still_load(self, name):
        path = REPO_ROOT / name
        assert json.loads(path.read_text())["schema"] == SNAPSHOT_SCHEMA_V1
        loaded = load_snapshot(path)
        assert loaded["schema"] == SNAPSHOT_SCHEMA
        assert loaded["gauges"]  # throughput gauges survive migration

    def test_unknown_schema_still_rejected(self, tmp_path):
        path = tmp_path / "v0.json"
        path.write_text(json.dumps(v1_fixture(schema="repro.obs/v0")))
        with pytest.raises(ConfigurationError, match="schema"):
            load_snapshot(path)
