"""Tests for the ring-buffer metric history store."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricHistory, MetricsRegistry


def sampled(registry, ticks, *, history=None):
    history = history or MetricHistory()
    for tick in ticks:
        history.sample(tick, registry)
    return history


class TestSampling:
    def test_counter_series_stores_cumulative_values(self):
        reg = MetricsRegistry()
        hist = MetricHistory()
        counter = reg.counter("hits", {"source": "s0"})
        for tick in range(1, 4):
            counter.inc(tick)
            hist.sample(tick, reg)
        series = hist.series("hits", {"source": "s0"})
        assert series.kind == "counter"
        assert list(series.ticks) == [1, 2, 3]
        assert list(series.values) == [1.0, 3.0, 6.0]

    def test_gauge_series_stores_levels(self):
        reg = MetricsRegistry()
        hist = MetricHistory()
        gauge = reg.gauge("depth")
        for tick, level in enumerate((2.0, 5.0, 1.0)):
            gauge.set(level)
            hist.sample(tick, reg)
        assert list(hist.series("depth").values) == [2.0, 5.0, 1.0]

    def test_histogram_series_keeps_count_sum_buckets(self):
        reg = MetricsRegistry()
        hist = MetricHistory()
        h = reg.histogram("lat", edges=(1.0, 2.0))
        h.observe(0.5)
        hist.sample(0, reg)
        h.observe(1.5)
        hist.sample(1, reg)
        series = hist.series("lat")
        assert list(series.values) == [1.0, 2.0]
        assert list(series.sums) == [0.5, 2.0]
        assert list(series.buckets) == [(1, 0, 0), (1, 1, 0)]
        assert series.edges == (1.0, 2.0)
        assert series.minimum == 0.5 and series.maximum == 1.5

    def test_non_advancing_tick_is_skipped(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        hist = sampled(reg, [3, 3, 2])
        assert hist.samples_taken == 1
        assert list(hist.series("c").ticks) == [3]

    def test_cadence_skips_intermediate_ticks(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        hist = MetricHistory(every=4)
        for tick in range(12):
            hist.sample(tick, reg)
        assert list(hist.series("c").ticks) == [0, 4, 8]

    def test_ring_is_bounded(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        hist = MetricHistory(capacity=8)
        for tick in range(100):
            counter.inc()
            hist.sample(tick, reg)
        series = hist.series("c")
        assert len(series.ticks) == 8
        assert list(series.ticks) == list(range(92, 100))

    def test_bad_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricHistory(capacity=1)
        with pytest.raises(ConfigurationError):
            MetricHistory(every=0)


class TestLookup:
    def test_matching_spans_label_sets(self):
        reg = MetricsRegistry()
        reg.counter("hits", {"source": "a"}).inc()
        reg.counter("hits", {"source": "b"}).inc()
        reg.counter("other").inc()
        hist = sampled(reg, [0])
        assert len(hist.matching("hits")) == 2
        assert hist.names() == ["hits", "other"]
        assert len(hist) == 3

    def test_series_miss_returns_none(self):
        assert MetricHistory().series("nope") is None


class TestWindowedQueries:
    def test_delta_is_increase_inside_window(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        hist = MetricHistory()
        for tick in range(10):
            counter.inc(2)
            hist.sample(tick, reg)
        # Window (5, 9]: cumulative went 12 -> 20.
        assert hist.delta("c", 4, 9) == 8.0
        assert hist.rate("c", 4, 9) == 2.0

    def test_delta_sums_across_label_sets(self):
        reg = MetricsRegistry()
        a = reg.counter("c", {"source": "a"})
        b = reg.counter("c", {"source": "b"})
        hist = MetricHistory()
        for tick in range(4):
            a.inc()
            b.inc(2)
            hist.sample(tick, reg)
        assert hist.delta("c", 2, 3) == 6.0

    def test_series_born_inside_window_contributes_fully(self):
        reg = MetricsRegistry()
        hist = MetricHistory()
        hist.sample(0, reg)
        reg.counter("late").inc(7)
        hist.sample(5, reg)
        assert hist.delta("late", 3, 5) == 7.0

    def test_rate_rejects_empty_window(self):
        with pytest.raises(ConfigurationError):
            MetricHistory().rate("c", 0, 10)

    def test_gauge_extreme_max_and_min(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("depth")
        hist = MetricHistory()
        for tick, level in enumerate((1.0, 9.0, 4.0)):
            gauge.set(level)
            hist.sample(tick, reg)
        assert hist.gauge_extreme("depth", 10, 2) == 9.0
        assert hist.gauge_extreme("depth", 10, 2, mode="min") == 1.0
        # Window excludes every point -> no answer.
        assert hist.gauge_extreme("depth", 1, 99) is None

    def test_mean_in_window_uses_new_samples_only(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        hist = MetricHistory()
        h.observe(100.0)
        hist.sample(0, reg)
        h.observe(2.0)
        h.observe(4.0)
        hist.sample(1, reg)
        # Window (0, 1]: only the two new samples count.
        assert hist.mean_in_window("lat", 1, 1) == 3.0
        # No new samples in (1, 2] -> None, not zero.
        hist.sample(2, reg)
        assert hist.mean_in_window("lat", 1, 2) is None

    def test_quantile_over_window_bucket_deltas(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", edges=(1.0, 2.0, 4.0, 8.0))
        hist = MetricHistory()
        h.observe(100.0)  # pre-window outlier
        hist.sample(0, reg)
        for value in (1.5, 1.6, 1.7, 1.8):
            h.observe(value)
        hist.sample(1, reg)
        q99 = hist.quantile("lat", 0.99, 1, 1)
        # The window only saw the (1, 2] bucket; the old outlier is gone.
        assert q99 is not None and q99 <= 2.0

    def test_quantile_none_without_histogram_data(self):
        assert MetricHistory().quantile("lat", 0.99, 8, 10) is None


class TestExport:
    def test_as_dict_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h").observe(1.0)
        hist = sampled(reg, [0, 1])
        out = hist.as_dict()
        assert out["samples"] == 2
        assert out["every"] == 1
        names = {s["name"] for s in out["series"]}
        assert names == {"c", "h"}
        h_row = next(s for s in out["series"] if s["name"] == "h")
        assert h_row["sums"] == [1.0, 1.0]
        assert "buckets" not in h_row  # bucket vectors stay in memory
