"""Tests for the telemetry exporters (JSONL, Prometheus text, snapshot)."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    SNAPSHOT_SCHEMA,
    EventBus,
    JsonlEventWriter,
    MetricsRegistry,
    Telemetry,
    build_snapshot,
    load_snapshot,
    prometheus_text,
    validate_snapshot,
    write_snapshot,
)


class TestJsonlEventWriter:
    def test_one_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        with JsonlEventWriter(path) as writer:
            bus.subscribe(writer)
            bus.emit("a", tick=0, source_id="s0", trace="s0/0", k=0)
            bus.emit("b", tick=1)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["name"] == "a"
        assert first["trace_id"] == "s0/0"
        assert first["k"] == 0
        assert writer.lines_written == 2

    def test_numpy_scalars_serialised(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        with JsonlEventWriter(path) as writer:
            bus.subscribe(writer)
            bus.emit("a", tick=0, value=np.float64(1.5), n=np.int64(3))
        row = json.loads(path.read_text())
        assert row["value"] == 1.5
        assert row["n"] == 3

    def test_write_after_close_rejected(self, tmp_path):
        writer = JsonlEventWriter(tmp_path / "e.jsonl")
        writer.close()
        writer.close()  # idempotent
        bus = EventBus()
        bus.subscribe(writer)
        with pytest.raises(ConfigurationError):
            bus.emit("a", tick=0)


class TestPrometheusText:
    def test_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.counter("hits", {"source": "s0"}).inc(3)
        reg.gauge("depth").set(1.5)
        text = prometheus_text(reg)
        assert "# TYPE hits counter" in text
        assert 'hits{source="s0"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 1.5" in text

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", edges=(1.0, 2.0))
        for v in (0.5, 0.7, 1.5, 5.0):
            h.observe(v)
        text = prometheus_text(reg)
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="2"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_count 4" in text
        assert "lat_sum 7.7" in text

    def test_type_line_emitted_once_per_name(self):
        reg = MetricsRegistry()
        reg.counter("hits", {"source": "a"}).inc()
        reg.counter("hits", {"source": "b"}).inc()
        text = prometheus_text(reg)
        assert text.count("# TYPE hits counter") == 1


class TestSnapshotRoundTrip:
    def test_empty_snapshot_validates(self):
        snapshot = build_snapshot(meta={"name": "empty"})
        assert validate_snapshot(snapshot) is snapshot
        assert snapshot["schema"] == SNAPSHOT_SCHEMA

    def test_telemetry_snapshot_roundtrip(self, tmp_path):
        tel = Telemetry()
        tel.set_tick(3)
        tel.emit("source.update", source_id="s0", trace="s0/0")
        tel.count("updates_sent_total", "s0")
        tel.observe("innovation_abs", 2.5, "s0")
        with tel.timers.span("engine.step"):
            pass
        path = tmp_path / "snap.json"
        write_snapshot(path, build_snapshot(tel, meta={"seed": 7}))
        loaded = load_snapshot(path)
        assert loaded["meta"] == {"seed": 7}
        assert loaded["events"]["by_name"] == {"source.update": 1}
        [counter] = loaded["counters"]
        assert counter == {
            "name": "updates_sent_total",
            "labels": {"source": "s0"},
            "value": 1,
        }
        [span] = loaded["spans"]
        assert span["name"] == "engine.step"
        assert span["count"] == 1

    def test_empty_histogram_min_max_null_after_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.histogram("empty")
        path = tmp_path / "snap.json"
        write_snapshot(path, build_snapshot(reg))
        [hist] = load_snapshot(path)["histograms"]
        assert hist["min"] is None and hist["max"] is None

    def test_registry_only_snapshot(self):
        reg = MetricsRegistry()
        reg.gauge("seconds", {"sources": "4"}).set(0.25)
        snapshot = build_snapshot(reg, meta={"bench": "x"})
        validate_snapshot(snapshot)
        assert snapshot["gauges"][0]["value"] == 0.25
        assert snapshot["events"]["total"] == 0


class TestValidation:
    def good(self):
        return build_snapshot(meta={})

    def test_rejects_non_dict(self):
        with pytest.raises(ConfigurationError):
            validate_snapshot([])

    def test_rejects_wrong_schema(self):
        bad = self.good()
        bad["schema"] = "repro.obs/v0"
        with pytest.raises(ConfigurationError, match="schema"):
            validate_snapshot(bad)

    def test_rejects_non_numeric_counter(self):
        bad = self.good()
        bad["counters"] = [{"name": "x", "labels": {}, "value": "many"}]
        with pytest.raises(ConfigurationError, match="non-numeric"):
            validate_snapshot(bad)

    def test_rejects_bool_counter_value(self):
        bad = self.good()
        bad["counters"] = [{"name": "x", "labels": {}, "value": True}]
        with pytest.raises(ConfigurationError, match="non-numeric"):
            validate_snapshot(bad)

    def test_rejects_histogram_count_shape_mismatch(self):
        bad = self.good()
        bad["histograms"] = [
            {
                "name": "h",
                "labels": {},
                "edges": [1.0, 2.0],
                "counts": [0, 0],
                "count": 0,
                "sum": 0.0,
                "min": None,
                "max": None,
            }
        ]
        with pytest.raises(ConfigurationError, match="len\\(edges\\)\\+1"):
            validate_snapshot(bad)

    def test_rejects_histogram_count_sum_mismatch(self):
        bad = self.good()
        bad["histograms"] = [
            {
                "name": "h",
                "labels": {},
                "edges": [1.0],
                "counts": [1, 2],
                "count": 4,
                "sum": 0.0,
                "min": None,
                "max": None,
            }
        ]
        with pytest.raises(ConfigurationError, match="sum"):
            validate_snapshot(bad)

    def test_write_snapshot_refuses_invalid(self, tmp_path):
        bad = self.good()
        bad["spans"] = [{"name": "s"}]  # missing count/total_seconds
        path = tmp_path / "bad.json"
        with pytest.raises(ConfigurationError):
            write_snapshot(path, bad)
        assert not path.exists()

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "mangled.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_snapshot(path)


class TestLabelEscaping:
    def test_backslash_quote_and_newline_escaped(self):
        reg = MetricsRegistry()
        reg.counter(
            "hits", {"path": 'C:\\tmp\\"logs"\nnext'}
        ).inc()
        text = prometheus_text(reg)
        line = next(ln for ln in text.splitlines() if ln.startswith("hits{"))
        assert line == 'hits{path="C:\\\\tmp\\\\\\"logs\\"\\nnext"} 1'
        # The escaped exposition stays one physical line.
        assert "\n" not in line

    def test_plain_values_untouched(self):
        reg = MetricsRegistry()
        reg.counter("hits", {"source": "s0"}).inc()
        assert 'hits{source="s0"} 1' in prometheus_text(reg)


class TestV2Sections:
    def test_bare_registry_snapshot_gets_empty_sections(self):
        snapshot = build_snapshot(MetricsRegistry())
        assert snapshot["schema"] == SNAPSHOT_SCHEMA
        assert snapshot["history"]["series"] == []
        assert snapshot["alerts"]["rules"] == []
        assert snapshot["health"]["watchers"] == []
        assert snapshot["events"]["dropped"] == 0

    def test_telemetry_snapshot_flushes_final_tick(self):
        tel = Telemetry()
        tel.count("hits")
        tel.set_tick(5)
        tel.count("hits")
        snapshot = build_snapshot(tel)
        # Tick 5 itself was sampled (sample_now), not just ticks < 5.
        [series] = [
            s for s in snapshot["history"]["series"] if s["name"] == "hits"
        ]
        assert series["ticks"][-1] == 5
        assert series["values"][-1] == 2.0

    def test_dropped_events_surface_in_snapshot(self):
        tel = Telemetry(buffer_size=2)
        for tick in range(5):
            tel.set_tick(tick)
            tel.emit("noisy")
        snapshot = build_snapshot(tel)
        assert snapshot["events"]["dropped"] == 3
        names = {c["name"] for c in snapshot["counters"]}
        assert "events_dropped_total" in names

    def test_validate_rejects_bad_history_series(self):
        snapshot = build_snapshot(MetricsRegistry())
        snapshot["history"]["series"] = [
            {"name": "x", "kind": "gauge", "ticks": [1, 2], "values": [1.0]}
        ]
        with pytest.raises(ConfigurationError, match="history"):
            validate_snapshot(snapshot)

    def test_validate_rejects_bad_alert_state(self):
        snapshot = build_snapshot(MetricsRegistry())
        snapshot["alerts"]["rules"] = [
            {"name": "r", "state": "panicking", "transitions": []}
        ]
        with pytest.raises(ConfigurationError, match="state"):
            validate_snapshot(snapshot)
