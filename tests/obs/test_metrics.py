"""Tests for the metrics registry."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_monotonic(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ConfigurationError):
            c.inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("n")
        g.set(3.5)
        g.add(-1.0)
        assert g.value == 2.5


class TestHistogram:
    def test_bucketing_against_edges(self):
        h = Histogram("n", edges=(1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 5.0, 10.0, 50.0, 1000.0):
            h.observe(v)
        # bisect_left: a value equal to an edge lands in that edge's bucket.
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.min == 0.5
        assert h.max == 1000.0

    def test_mean_empty_is_zero(self):
        assert Histogram("n").mean == 0.0

    def test_as_dict_nulls_min_max_when_empty(self):
        d = Histogram("n").as_dict()
        assert d["min"] is None and d["max"] is None
        assert sum(d["counts"]) == 0

    def test_bad_edges_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("n", edges=())
        with pytest.raises(ConfigurationError):
            Histogram("n", edges=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("n", edges=(2.0, 1.0))

    def test_bounded_memory(self):
        h = Histogram("n", edges=(1.0, 2.0))
        for i in range(10_000):
            h.observe(float(i))
        assert len(h.counts) == 3
        assert h.count == 10_000
        assert math.isclose(h.sum, sum(range(10_000)))


class TestMetricsRegistry:
    def test_create_on_first_use_and_identity(self):
        reg = MetricsRegistry()
        c1 = reg.counter("hits", {"source": "s0"})
        c1.inc()
        c2 = reg.counter("hits", {"source": "s0"})
        assert c2 is c1
        assert c2.value == 1

    def test_labels_partition_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", {"source": "a"}).inc()
        reg.counter("hits", {"source": "b"}).inc(2)
        values = {dict(c.labels)["source"]: c.value for c in reg.counters()}
        assert values == {"a": 1, "b": 2}

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        g1 = reg.gauge("g", {"a": "1", "b": "2"})
        g2 = reg.gauge("g", {"b": "2", "a": "1"})
        assert g2 is g1

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")
        with pytest.raises(ConfigurationError):
            reg.histogram("x")

    def test_listings_by_kind(self):
        reg = MetricsRegistry()
        reg.counter("c")
        reg.gauge("g")
        reg.histogram("h")
        assert [c.name for c in reg.counters()] == ["c"]
        assert [g.name for g in reg.gauges()] == ["g"]
        assert [h.name for h in reg.histograms()] == ["h"]
        assert len(reg) == 3
