"""Tests for the metrics registry."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_from_counts,
)


class TestCounter:
    def test_monotonic(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ConfigurationError):
            c.inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("n")
        g.set(3.5)
        g.add(-1.0)
        assert g.value == 2.5


class TestHistogram:
    def test_bucketing_against_edges(self):
        h = Histogram("n", edges=(1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 5.0, 10.0, 50.0, 1000.0):
            h.observe(v)
        # bisect_left: a value equal to an edge lands in that edge's bucket.
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.min == 0.5
        assert h.max == 1000.0

    def test_mean_empty_is_zero(self):
        assert Histogram("n").mean == 0.0

    def test_as_dict_nulls_min_max_when_empty(self):
        d = Histogram("n").as_dict()
        assert d["min"] is None and d["max"] is None
        assert sum(d["counts"]) == 0

    def test_bad_edges_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("n", edges=())
        with pytest.raises(ConfigurationError):
            Histogram("n", edges=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("n", edges=(2.0, 1.0))

    def test_bounded_memory(self):
        h = Histogram("n", edges=(1.0, 2.0))
        for i in range(10_000):
            h.observe(float(i))
        assert len(h.counts) == 3
        assert h.count == 10_000
        assert math.isclose(h.sum, sum(range(10_000)))


class TestMetricsRegistry:
    def test_create_on_first_use_and_identity(self):
        reg = MetricsRegistry()
        c1 = reg.counter("hits", {"source": "s0"})
        c1.inc()
        c2 = reg.counter("hits", {"source": "s0"})
        assert c2 is c1
        assert c2.value == 1

    def test_labels_partition_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", {"source": "a"}).inc()
        reg.counter("hits", {"source": "b"}).inc(2)
        values = {dict(c.labels)["source"]: c.value for c in reg.counters()}
        assert values == {"a": 1, "b": 2}

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        g1 = reg.gauge("g", {"a": "1", "b": "2"})
        g2 = reg.gauge("g", {"b": "2", "a": "1"})
        assert g2 is g1

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")
        with pytest.raises(ConfigurationError):
            reg.histogram("x")

    def test_listings_by_kind(self):
        reg = MetricsRegistry()
        reg.counter("c")
        reg.gauge("g")
        reg.histogram("h")
        assert [c.name for c in reg.counters()] == ["c"]
        assert [g.name for g in reg.gauges()] == ["g"]
        assert [h.name for h in reg.histograms()] == ["h"]
        assert len(reg) == 3


class TestQuantiles:
    def test_uniform_bucket_interpolation(self):
        # 100 samples spread evenly over (0, 10] with edges every 1.0:
        # the estimator should land near the exact quantiles.
        h = Histogram("n", edges=tuple(float(i) for i in range(1, 11)))
        for i in range(100):
            h.observe(i / 10.0 + 0.05)
        assert abs(h.quantile(0.50) - 5.0) < 0.6
        assert abs(h.quantile(0.95) - 9.5) < 0.6
        assert abs(h.quantile(0.99) - 9.9) < 0.6

    def test_quantile_clamped_by_observed_extremes(self):
        h = Histogram("n", edges=(10.0, 100.0))
        h.observe(42.0)
        # One sample: every quantile is that sample, not a bucket bound.
        assert h.quantile(0.0) == 42.0
        assert h.quantile(0.5) == 42.0
        assert h.quantile(1.0) == 42.0

    def test_overflow_bucket_uses_observed_max(self):
        h = Histogram("n", edges=(1.0, 2.0))
        for v in (0.5, 1.5, 950.0):
            h.observe(v)
        assert h.quantile(0.99) <= 950.0

    def test_empty_histogram_quantile_is_none(self):
        assert Histogram("n").quantile(0.5) is None

    def test_bad_q_rejected(self):
        h = Histogram("n")
        h.observe(1.0)
        with pytest.raises(ConfigurationError):
            h.quantile(1.5)
        with pytest.raises(ConfigurationError):
            quantile_from_counts((1.0,), [1, 0], -0.1)

    def test_as_dict_carries_quantile_estimates(self):
        h = Histogram("n", edges=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0):
            h.observe(v)
        d = h.as_dict()
        assert d["p50"] is not None
        assert d["p50"] <= d["p95"] <= d["p99"] <= d["max"]

    def test_as_dict_quantiles_null_when_empty(self):
        d = Histogram("n").as_dict()
        assert d["p50"] is None and d["p95"] is None and d["p99"] is None

    def test_monotone_in_q(self):
        h = Histogram("n")
        for v in (1, 3, 3, 7, 20, 500, 900):
            h.observe(float(v))
        values = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.99, 1.0)]
        assert values == sorted(values)
