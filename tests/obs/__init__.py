"""Tests for the repro.obs telemetry subsystem."""
