"""Tests for the span timers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.filters.models import linear_model
from repro.obs import NULL_TIMERS, NullTimers, SpanTimers


def build_filter():
    return linear_model(dims=1, dt=1.0).build_filter(np.array([0.0]))


class TestSpanTimers:
    def test_context_manager_records(self):
        timers = SpanTimers()
        with timers.span("work"):
            pass
        stat = timers.get("work")
        assert stat.count == 1
        assert stat.total_seconds >= 0.0
        assert stat.min_seconds <= stat.max_seconds

    def test_nesting(self):
        timers = SpanTimers()
        with timers.span("outer"):
            assert timers.depth == 1
            with timers.span("inner"):
                assert timers.depth == 2
        assert timers.depth == 0
        assert timers.get("outer").count == 1
        assert timers.get("inner").count == 1
        # The outer span encloses the inner one.
        assert (
            timers.get("outer").total_seconds
            >= timers.get("inner").total_seconds
        )

    def test_paired_form_accumulates(self):
        timers = SpanTimers()
        for _ in range(3):
            timers.start("hot")
            timers.stop("hot")
        assert timers.get("hot").count == 3

    def test_mismatched_stop_raises(self):
        timers = SpanTimers()
        timers.start("a")
        with pytest.raises(ConfigurationError):
            timers.stop("b")

    def test_stop_without_start_raises(self):
        with pytest.raises(ConfigurationError):
            SpanTimers().stop("ghost")

    def test_stats_sorted_by_total(self):
        timers = SpanTimers()
        with timers.span("cheap"):
            pass
        with timers.span("dear"):
            for _ in range(1000):
                pass
        names = [s.name for s in timers.stats()]
        assert set(names) == {"cheap", "dear"}
        totals = [s.total_seconds for s in timers.stats()]
        assert totals == sorted(totals, reverse=True)

    def test_exception_still_closes_span(self):
        timers = SpanTimers()
        with pytest.raises(ValueError):
            with timers.span("risky"):
                raise ValueError("boom")
        assert timers.depth == 0
        assert timers.get("risky").count == 1


class TestNullTimers:
    def test_all_noop(self):
        with NULL_TIMERS.span("x"):
            pass
        NULL_TIMERS.start("x")
        NULL_TIMERS.stop("y")  # no stack, no violation
        assert NULL_TIMERS.depth == 0
        assert NULL_TIMERS.stats() == []
        assert NULL_TIMERS.get("x") is None
        assert not NullTimers.enabled


class TestKalmanInstrumentation:
    def test_uninstrumented_filter_carries_no_timers(self):
        kf = build_filter()
        kf.predict()
        assert kf._timers is None  # noqa: SLF001

    def test_instrumented_filter_times_predict_and_update(self):
        timers = SpanTimers()
        kf = build_filter()
        kf.instrument(timers)
        kf.predict()
        kf.update(np.array([1.0]))
        assert timers.get("kalman.predict").count == 1
        assert timers.get("kalman.update").count == 1

    def test_instrumentation_does_not_change_estimates(self):
        plain = build_filter()
        timed = build_filter()
        timed.instrument(SpanTimers())
        for value in (1.0, 2.1, 2.9, 4.2):
            for kf in (plain, timed):
                kf.predict()
                kf.update(np.array([value]))
        assert np.array_equal(plain.x, timed.x)
        assert np.array_equal(plain.p, timed.p)
