"""Tests for the structured event bus."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import Event, EventBus, trace_id


class TestTraceId:
    def test_format(self):
        assert trace_id("s0", 7) == "s0/7"

    def test_distinct_sources_distinct_ids(self):
        assert trace_id("a", 1) != trace_id("b", 1)


class TestEvent:
    def test_as_dict_omits_absent_optionals(self):
        event = Event(seq=0, tick=3, name="x")
        assert event.as_dict() == {"seq": 0, "tick": 3, "name": "x"}

    def test_as_dict_flattens_fields(self):
        event = Event(
            seq=1,
            tick=0,
            name="source.update",
            source_id="s0",
            trace_id="s0/4",
            fields={"k": 4, "gated": False},
        )
        d = event.as_dict()
        assert d["trace_id"] == "s0/4"
        assert d["k"] == 4
        assert d["gated"] is False

    def test_frozen(self):
        event = Event(seq=0, tick=0, name="x")
        with pytest.raises(AttributeError):
            event.name = "y"


class TestEventBus:
    def test_emit_orders_and_counts(self):
        bus = EventBus()
        bus.emit("a", tick=0)
        bus.emit("b", tick=0)
        bus.emit("a", tick=1)
        assert [e.seq for e in bus.events()] == [0, 1, 2]
        assert bus.counts() == {"a": 2, "b": 1}
        assert bus.total_emitted == 3

    def test_name_filter(self):
        bus = EventBus()
        bus.emit("a", tick=0)
        bus.emit("b", tick=0)
        assert [e.name for e in bus.events("a")] == ["a"]

    def test_ring_buffer_bounded_but_counts_survive(self):
        bus = EventBus(buffer_size=4)
        for i in range(10):
            bus.emit("tickle", tick=i)
        assert len(bus.events()) == 4
        assert [e.tick for e in bus.events()] == [6, 7, 8, 9]
        assert bus.counts()["tickle"] == 10
        assert bus.total_emitted == 10

    def test_bad_buffer_size_rejected(self):
        with pytest.raises(ConfigurationError):
            EventBus(buffer_size=0)

    def test_subscribers_see_every_event(self):
        bus = EventBus(buffer_size=2)
        seen = []
        bus.subscribe(seen.append)
        for i in range(5):
            bus.emit("e", tick=i)
        assert len(seen) == 5  # not truncated by the ring buffer

    def test_clear_keeps_subscribers(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit("e", tick=0)
        bus.clear()
        assert bus.events() == []
        assert bus.counts() == {}
        bus.emit("e", tick=1)
        assert len(seen) == 2


class TestDroppedTracking:
    def test_no_drops_before_wrap(self):
        bus = EventBus(buffer_size=4)
        for i in range(4):
            bus.emit("e", tick=i)
        assert bus.total_dropped == 0

    def test_wrap_counts_evicted_events(self):
        bus = EventBus(buffer_size=4)
        for i in range(10):
            bus.emit("e", tick=i)
        assert bus.total_dropped == 6
        assert bus.total_emitted == 10
        assert len(bus.events()) == 4

    def test_clear_resets_drop_count(self):
        bus = EventBus(buffer_size=2)
        for i in range(5):
            bus.emit("e", tick=i)
        bus.clear()
        assert bus.total_dropped == 0
        bus.emit("e", tick=9)
        assert bus.total_dropped == 0
