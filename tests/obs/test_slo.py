"""Tests for the declarative SLO engine and burn-rate alert lifecycle."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    DEFAULT_RULES,
    FEDERATION_RULES,
    SLOAlert,
    SLORule,
    Telemetry,
)


def ratio_rule(**overrides):
    base = dict(
        name="delivery",
        kind="ratio",
        objective=0.9,
        good="good_total",
        bad=("bad_total",),
        short_window=4,
        long_window=8,
        burn_threshold=1.0,
        for_ticks=2,
        clear_ticks=3,
    )
    base.update(overrides)
    return SLORule(**base)


class TestRuleValidation:
    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="kind"):
            SLORule(name="x", kind="vibes", objective=1.0)

    def test_ratio_needs_good_and_bad(self):
        with pytest.raises(ConfigurationError, match="good and bad"):
            SLORule(name="x", kind="ratio", objective=0.9)

    def test_ratio_objective_must_be_fractional(self):
        with pytest.raises(ConfigurationError, match="objective"):
            ratio_rule(objective=1.0)

    def test_quantile_and_bound_need_metric(self):
        for kind in ("quantile", "bound"):
            with pytest.raises(ConfigurationError, match="metric"):
                SLORule(name="x", kind=kind, objective=5.0)

    def test_window_ordering(self):
        with pytest.raises(ConfigurationError, match="short_window"):
            ratio_rule(short_window=16, long_window=8)

    def test_default_rule_sets_are_valid(self):
        assert {r.name for r in DEFAULT_RULES} == {
            "delivery-ratio", "staleness-p99",
        }
        assert {r.name for r in FEDERATION_RULES} == {
            "consensus-error-bound",
        }


class TestAlertLifecycle:
    def run_alert(self, breaches, rule=None):
        tel = Telemetry()
        alert = SLOAlert(rule or ratio_rule())
        for tick, breached in enumerate(breaches):
            alert.observe(breached, tick, tel)
        return tel, alert

    def test_pending_then_firing_then_resolved(self):
        tel, alert = self.run_alert(
            [False, True, True, True, False, False, False]
        )
        assert [t["to"] for t in alert.transitions] == [
            "pending", "firing", "resolved",
        ]
        assert [t["tick"] for t in alert.transitions] == [1, 2, 6]
        assert alert.state == "ok"  # resolved resets for the next incident
        assert [e.name for e in tel.bus.events()] == [
            "slo.pending", "slo.firing", "slo.resolved",
        ]
        [counter] = tel.metrics.counters()
        assert counter.name == "slo_alerts_total"
        assert counter.value == 1

    def test_blip_resolves_from_pending_without_firing(self):
        _, alert = self.run_alert([True] + [False] * 5)
        assert [t["to"] for t in alert.transitions] == [
            "pending", "resolved",
        ]

    def test_breach_streak_resets_on_clean_tick(self):
        # for_ticks=2 with alternating breaches never reaches firing.
        _, alert = self.run_alert([True, False, True, False, True, False])
        assert not any(t["to"] == "firing" for t in alert.transitions)

    def test_fired_between_and_resolved_after(self):
        _, alert = self.run_alert(
            [True, True, True] + [False] * 4
        )
        assert alert.fired_between(0, 2)
        assert not alert.fired_between(3, 99)
        assert alert.resolved_after(2)
        assert not alert.resolved_after(50)

    def test_as_dict_shape(self):
        _, alert = self.run_alert([True, True])
        out = alert.as_dict()
        assert out["name"] == "delivery"
        assert out["state"] == "firing"
        assert "last" not in out  # no engine evaluated burn values here
        assert len(out["transitions"]) == 2


class TestSLOEngine:
    def drive(self, tel, good_per_tick, bad_per_tick, ticks, start=0):
        for tick in range(start, start + ticks):
            if good_per_tick:
                tel.count("good_total", amount=good_per_tick)
            if bad_per_tick:
                tel.count("bad_total", amount=bad_per_tick)
            tel.set_tick(tick + 1)

    def test_ratio_rule_fires_and_resolves_on_real_history(self):
        tel = Telemetry()
        alert = tel.slo.add_rule(ratio_rule())
        self.drive(tel, good_per_tick=10, bad_per_tick=0, ticks=20)
        assert alert.state == "ok"
        # Heavy losses: burn far above threshold in both windows.
        self.drive(tel, good_per_tick=5, bad_per_tick=5, ticks=10, start=20)
        assert any(t["to"] == "firing" for t in alert.transitions)
        assert alert.last_values["burn_short"] > 1.0
        # Clean traffic again: the short window cools, alert resolves.
        self.drive(tel, good_per_tick=10, bad_per_tick=0, ticks=20, start=30)
        assert alert.resolved_after(20)

    def test_ratio_burn_zero_without_traffic(self):
        tel = Telemetry()
        alert = tel.slo.add_rule(ratio_rule())
        for tick in range(10):
            tel.set_tick(tick)
        tel.sample_now()
        assert alert.state == "ok"
        assert alert.transitions == []

    def test_quantile_rule_breaches_on_windowed_p99(self):
        tel = Telemetry()
        rule = SLORule(
            name="lat-p99", kind="quantile", metric="lat_ticks",
            q=0.99, objective=10.0, short_window=4,
            for_ticks=1, clear_ticks=2,
        )
        alert = tel.slo.add_rule(rule)
        for tick in range(10):
            tel.observe("lat_ticks", 2.0)
            tel.set_tick(tick + 1)
        assert alert.state == "ok"
        for tick in range(10, 14):
            tel.observe("lat_ticks", 500.0)
            tel.set_tick(tick + 1)
        assert any(t["to"] == "firing" for t in alert.transitions)

    def test_bound_rule_tracks_gauge_extreme(self):
        tel = Telemetry()
        rule = SLORule(
            name="depth-bound", kind="bound", metric="depth",
            objective=8.0, short_window=4, for_ticks=1, clear_ticks=2,
        )
        alert = tel.slo.add_rule(rule)
        for tick in range(6):
            tel.gauge("depth", 3.0)
            tel.set_tick(tick + 1)
        assert alert.state == "ok"
        tel.gauge("depth", 20.0)
        tel.set_tick(7)
        tel.gauge("depth", 20.0)
        tel.set_tick(8)
        assert alert.state == "firing"

    def test_install_defaults_and_report(self):
        tel = Telemetry()
        tel.slo.install_defaults(federation=True)
        report = tel.slo.report()
        names = [r["name"] for r in report["rules"]]
        assert names == sorted(names)
        assert "consensus-error-bound" in names
        assert all(r["state"] == "ok" for r in report["rules"])
