"""Tests for causal-tree trace reconstruction."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    Event,
    build_trace,
    collect_trace,
    read_jsonl_events,
    render_trace,
    trace_ids,
)


def event(seq, tick, name, trace="s0/1", source_id="s0", **fields):
    return Event(
        seq=seq, tick=tick, name=name, source_id=source_id,
        trace_id=trace, fields=fields,
    )


def federation_hop_events():
    """One update's journey, deliberately emitted out of causal order."""
    return [
        event(3, 11, "server.apply"),
        event(1, 10, "fabric.delivered"),
        event(0, 10, "source.update", k=10),
        event(2, 11, "federation.ingress", peer="p1"),
        event(4, 12, "federation.replica_apply", peer="p2"),
        event(5, 13, "fabric.ack_delivered"),
        event(6, 9, "source.update", trace="s9/7", source_id="s9"),
    ]


class TestCollect:
    def test_filters_by_trace_and_orders_causally(self):
        ordered = collect_trace(federation_hop_events(), "s0/1")
        assert [e.name for e in ordered] == [
            "source.update",
            "fabric.delivered",
            "federation.ingress",
            "server.apply",
            "federation.replica_apply",
            "fabric.ack_delivered",
        ]

    def test_same_tick_ties_break_on_stage_order(self):
        # Emission order says apply-then-deliver; causality disagrees.
        events = [
            event(0, 5, "server.apply"),
            event(1, 5, "fabric.delivered"),
            event(2, 5, "source.update"),
        ]
        ordered = collect_trace(events, "s0/1")
        assert [e.name for e in ordered] == [
            "source.update", "fabric.delivered", "server.apply",
        ]

    def test_accepts_plain_dicts_from_jsonl(self):
        rows = [e.as_dict() for e in federation_hop_events()]
        ordered = collect_trace(rows, "s0/1")
        assert len(ordered) == 6
        assert all(isinstance(e, Event) for e in ordered)

    def test_trace_ids_ordered_by_first_appearance(self):
        assert trace_ids(federation_hop_events()) == ["s0/1", "s9/7"]


class TestBuildAndRender:
    def test_hops_carry_tick_deltas(self):
        hops = build_trace(federation_hop_events(), "s0/1")
        assert [h.dt for h in hops] == [0, 0, 1, 0, 1, 1]
        assert hops[0].as_dict()["dt_ticks"] == 0

    def test_unknown_trace_is_empty(self):
        assert build_trace(federation_hop_events(), "nope/0") == []
        assert "no events" in render_trace([], "nope/0")

    def test_render_shows_every_hop_with_timing(self):
        text = render_trace(federation_hop_events(), "s0/1")
        assert text.startswith("trace s0/1 (6 hops)")
        assert "source.update [s0]  k=10" in text
        assert "( +1t) federation.ingress" in text
        assert text.count("├─") == 5
        assert text.count("└─") == 1


class TestReadJsonl:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        rows = [e.as_dict() for e in federation_hop_events()]
        path.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        loaded = read_jsonl_events(path)
        assert len(loaded) == len(rows)
        assert [e.name for e in collect_trace(loaded, "s9/7")] == [
            "source.update"
        ]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"seq": 0, "tick": 1, "name": "a"}\n\n')
        assert len(read_jsonl_events(path)) == 1

    def test_bad_json_names_the_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"seq": 0, "tick": 1, "name": "a"}\n{oops\n')
        with pytest.raises(ConfigurationError, match=":2:"):
            read_jsonl_events(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ConfigurationError, match="objects"):
            read_jsonl_events(path)
