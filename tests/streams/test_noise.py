"""Unit tests for noise and fault injection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.streams.base import stream_from_values
from repro.streams.noise import (
    add_gaussian_noise,
    add_spikes,
    drop_records,
    freeze_sensor,
)


@pytest.fixture
def clean():
    return stream_from_values(np.zeros(500), name="clean")


class TestGaussianNoise:
    def test_noise_scale(self, clean):
        noisy = add_gaussian_noise(clean, std=2.0, seed=0)
        assert np.isclose(noisy.component(0).std(), 2.0, rtol=0.15)

    def test_zero_std_is_identity(self, clean):
        noisy = add_gaussian_noise(clean, std=0.0, seed=0)
        assert np.array_equal(noisy.values(), clean.values())

    def test_name_annotated(self, clean):
        assert "noise" in add_gaussian_noise(clean, 1.0, seed=0).name

    def test_reproducible(self, clean):
        a = add_gaussian_noise(clean, 1.0, seed=42)
        b = add_gaussian_noise(clean, 1.0, seed=42)
        assert np.array_equal(a.values(), b.values())

    def test_negative_std_rejected(self, clean):
        with pytest.raises(ConfigurationError):
            add_gaussian_noise(clean, std=-1.0)


class TestSpikes:
    def test_spike_rate(self, clean):
        spiked = add_spikes(clean, rate=0.1, magnitude=100.0, seed=1)
        hit = np.sum(np.abs(spiked.component(0)) > 50.0)
        assert 20 <= hit <= 90  # ~50 expected of 500

    def test_magnitude(self, clean):
        spiked = add_spikes(clean, rate=1.0, magnitude=7.0, seed=1)
        assert np.allclose(np.abs(spiked.component(0)), 7.0)

    def test_zero_rate_is_identity(self, clean):
        spiked = add_spikes(clean, rate=0.0, magnitude=100.0, seed=1)
        assert np.array_equal(spiked.values(), clean.values())

    def test_rate_validated(self, clean):
        with pytest.raises(ConfigurationError):
            add_spikes(clean, rate=1.5, magnitude=1.0)


class TestDropRecords:
    def test_drop_rate(self, clean):
        dropped = drop_records(clean, rate=0.2, seed=3)
        assert 330 <= len(dropped) <= 460

    def test_indices_preserved(self, clean):
        dropped = drop_records(clean, rate=0.5, seed=3)
        ks = [r.k for r in dropped]
        assert ks == sorted(ks)
        assert len(set(ks)) == len(ks)

    def test_zero_rate_keeps_all(self, clean):
        assert len(drop_records(clean, rate=0.0, seed=0)) == 500

    def test_rate_validated(self, clean):
        with pytest.raises(ConfigurationError):
            drop_records(clean, rate=1.0)


class TestFreezeSensor:
    def test_frozen_window_repeats_value(self):
        stream = stream_from_values(np.arange(20, dtype=float))
        frozen = freeze_sensor(stream, start=5, length=10)
        values = frozen.component(0)
        assert np.allclose(values[5:15], 5.0)
        assert np.allclose(values[15:], np.arange(15, 20))

    def test_freeze_past_end_is_clipped(self):
        stream = stream_from_values(np.arange(10, dtype=float))
        frozen = freeze_sensor(stream, start=8, length=100)
        assert np.allclose(frozen.component(0)[8:], 8.0)

    def test_zero_length_is_identity(self):
        stream = stream_from_values(np.arange(10, dtype=float))
        frozen = freeze_sensor(stream, start=3, length=0)
        assert np.array_equal(frozen.values(), stream.values())

    def test_validation(self):
        stream = stream_from_values(np.arange(5, dtype=float))
        with pytest.raises(ConfigurationError):
            freeze_sensor(stream, start=-1, length=2)
