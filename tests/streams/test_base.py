"""Unit tests for stream records, materialized streams and cursors."""

import numpy as np
import pytest

from repro.errors import DimensionError, StreamExhaustedError
from repro.streams.base import (
    MaterializedStream,
    StreamCursor,
    StreamRecord,
    stream_from_values,
)


class TestStreamRecord:
    def test_scalar_value_normalised_to_1d(self):
        record = StreamRecord(k=0, timestamp=0.0, value=3.0)
        assert record.value.shape == (1,)
        assert record.dim == 1
        assert record.scalar() == 3.0

    def test_vector_value(self):
        record = StreamRecord(k=1, timestamp=0.1, value=np.array([1.0, 2.0]))
        assert record.dim == 2

    def test_scalar_accessor_rejects_vectors(self):
        record = StreamRecord(k=0, timestamp=0.0, value=np.array([1.0, 2.0]))
        with pytest.raises(DimensionError):
            record.scalar()

    def test_rejects_2d_value(self):
        with pytest.raises(DimensionError):
            StreamRecord(k=0, timestamp=0.0, value=np.zeros((2, 2)))

    def test_frozen(self):
        record = StreamRecord(k=0, timestamp=0.0, value=1.0)
        with pytest.raises(AttributeError):
            record.k = 5


class TestMaterializedStream:
    def make(self, n=10, dim=2):
        return stream_from_values(
            np.arange(n * dim, dtype=float).reshape(n, dim),
            name="test",
            sampling_interval=0.5,
        )

    def test_length_and_dim(self):
        stream = self.make()
        assert len(stream) == 10
        assert stream.dim == 2

    def test_iteration_order(self):
        stream = self.make(n=5, dim=1)
        ks = [r.k for r in stream]
        assert ks == [0, 1, 2, 3, 4]

    def test_timestamps_use_interval(self):
        stream = self.make(n=4)
        assert np.allclose(stream.timestamps(), [0.0, 0.5, 1.0, 1.5])

    def test_values_shape(self):
        assert self.make().values().shape == (10, 2)

    def test_component_extraction(self):
        stream = self.make(n=3, dim=2)
        assert np.allclose(stream.component(1), [1.0, 3.0, 5.0])

    def test_component_out_of_range(self):
        with pytest.raises(DimensionError):
            self.make().component(5)

    def test_slicing_returns_stream(self):
        head = self.make()[:3]
        assert isinstance(head, MaterializedStream)
        assert len(head) == 3
        assert head.name == "test"

    def test_head(self):
        assert len(self.make().head(4)) == 4

    def test_indexing_returns_record(self):
        assert self.make()[2].k == 2

    def test_mixed_dims_rejected(self):
        records = [
            StreamRecord(k=0, timestamp=0.0, value=1.0),
            StreamRecord(k=1, timestamp=1.0, value=np.array([1.0, 2.0])),
        ]
        with pytest.raises(DimensionError):
            MaterializedStream(records)

    def test_empty_stream(self):
        stream = MaterializedStream([])
        assert len(stream) == 0
        assert stream.dim == 0
        assert stream.summary()["length"] == 0

    def test_summary_statistics(self):
        stream = stream_from_values(np.array([1.0, 3.0]), name="s")
        summary = stream.summary()
        assert summary["mean"] == 2.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0


class TestStreamFromValues:
    def test_1d_promoted_to_column(self):
        stream = stream_from_values(np.arange(5, dtype=float))
        assert stream.dim == 1

    def test_rejects_3d(self):
        with pytest.raises(DimensionError):
            stream_from_values(np.zeros((2, 2, 2)))

    def test_start_time(self):
        stream = stream_from_values(
            np.arange(3, dtype=float), start_time=100.0, sampling_interval=2.0
        )
        assert np.allclose(stream.timestamps(), [100.0, 102.0, 104.0])


class TestStreamCursor:
    def test_sequential_access(self):
        cursor = StreamCursor(stream_from_values(np.arange(3, dtype=float)))
        assert cursor.next().k == 0
        assert cursor.next().k == 1
        assert not cursor.exhausted

    def test_exhaustion_raises_and_flags(self):
        cursor = StreamCursor(stream_from_values(np.arange(1, dtype=float)))
        cursor.next()
        with pytest.raises(StreamExhaustedError):
            cursor.next()
        assert cursor.exhausted
