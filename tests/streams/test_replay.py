"""Unit tests for trace replay, subsampling and CSV round-tripping."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.streams.base import stream_from_values
from repro.streams.replay import (
    StreamReplayer,
    load_stream_csv,
    save_stream_csv,
    subsample,
)


@pytest.fixture
def stream():
    return stream_from_values(
        np.arange(20, dtype=float), name="seq", sampling_interval=2.0
    )


class TestSubsample:
    def test_stride(self, stream):
        sampled = subsample(stream, 5)
        assert len(sampled) == 4
        assert np.allclose(sampled.component(0), [0.0, 5.0, 10.0, 15.0])

    def test_reindexes_densely(self, stream):
        sampled = subsample(stream, 5)
        assert [r.k for r in sampled] == [0, 1, 2, 3]

    def test_interval_scales(self, stream):
        assert subsample(stream, 4).sampling_interval == 8.0

    def test_stride_one_is_identity(self, stream):
        assert np.array_equal(subsample(stream, 1).values(), stream.values())

    def test_validation(self, stream):
        with pytest.raises(ConfigurationError):
            subsample(stream, 0)


class TestStreamReplayer:
    def test_offset_and_limit(self, stream):
        replayed = list(StreamReplayer(stream, offset=5, limit=3))
        assert [r.k for r in replayed] == [5, 6, 7]

    def test_stride(self, stream):
        replayed = list(StreamReplayer(stream, stride=7))
        assert [r.k for r in replayed] == [0, 7, 14]

    def test_materialize(self, stream):
        mat = StreamReplayer(stream, offset=2, limit=4).materialize()
        assert len(mat) == 4

    def test_unlimited(self, stream):
        assert len(list(StreamReplayer(stream))) == 20

    def test_validation(self, stream):
        with pytest.raises(ConfigurationError):
            StreamReplayer(stream, offset=-1)
        with pytest.raises(ConfigurationError):
            StreamReplayer(stream, limit=-1)
        with pytest.raises(ConfigurationError):
            StreamReplayer(stream, stride=0)


class TestCsvRoundTrip:
    def test_scalar_round_trip(self, stream, tmp_path):
        path = tmp_path / "s.csv"
        save_stream_csv(stream, path)
        loaded = load_stream_csv(path, sampling_interval=2.0)
        assert np.array_equal(loaded.values(), stream.values())
        assert np.array_equal(loaded.timestamps(), stream.timestamps())

    def test_vector_round_trip(self, tmp_path):
        stream = stream_from_values(np.arange(12, dtype=float).reshape(6, 2))
        path = tmp_path / "v.csv"
        save_stream_csv(stream, path)
        loaded = load_stream_csv(path)
        assert loaded.dim == 2
        assert np.array_equal(loaded.values(), stream.values())

    def test_exact_float_preservation(self, tmp_path):
        values = np.array([1.0 / 3.0, np.pi, 1e-300])
        stream = stream_from_values(values)
        path = tmp_path / "f.csv"
        save_stream_csv(stream, path)
        loaded = load_stream_csv(path)
        assert np.array_equal(loaded.component(0), values)

    def test_default_name_is_stem(self, stream, tmp_path):
        path = tmp_path / "mystream.csv"
        save_stream_csv(stream, path)
        assert load_stream_csv(path).name == "mystream"

    def test_headers_only_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("k,timestamp\n")
        with pytest.raises(ConfigurationError):
            load_stream_csv(path)
