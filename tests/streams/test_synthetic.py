"""Unit tests for the synthetic stream generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.streams.synthetic import (
    bursty_count_series,
    piecewise_linear_trajectory,
    random_walk_series,
    sinusoidal_series,
)


class TestPiecewiseLinearTrajectory:
    def test_length_and_dim(self):
        stream = piecewise_linear_trajectory(n=500, seed=1)
        assert len(stream) == 500
        assert stream.dim == 2

    def test_deterministic_with_seed(self):
        a = piecewise_linear_trajectory(n=200, seed=7)
        b = piecewise_linear_trajectory(n=200, seed=7)
        assert np.array_equal(a.values(), b.values())

    def test_different_seeds_differ(self):
        a = piecewise_linear_trajectory(n=200, seed=1)
        b = piecewise_linear_trajectory(n=200, seed=2)
        assert not np.array_equal(a.values(), b.values())

    def test_speed_cap_respected(self):
        dt = 0.1
        stream = piecewise_linear_trajectory(n=1000, max_speed=100.0, dt=dt, seed=3)
        speeds = np.linalg.norm(np.diff(stream.values(), axis=0), axis=1) / dt
        assert speeds.max() <= 100.0 + 1e-9

    def test_is_piecewise_linear(self):
        """Within segments the second difference vanishes."""
        stream = piecewise_linear_trajectory(
            n=500, seed=5, min_segment=50, max_segment=60
        )
        accel = np.diff(stream.values(), axis=0, n=2)
        zero_rows = np.sum(np.linalg.norm(accel, axis=1) < 1e-9)
        # Manoeuvres happen at most every min_segment samples.
        assert zero_rows > 0.8 * len(accel)

    def test_start_position(self):
        stream = piecewise_linear_trajectory(n=10, seed=1, start=(100.0, 200.0))
        first_step = stream.values()[0] - np.array([100.0, 200.0])
        assert np.linalg.norm(first_step) <= 500.0 * 0.1 + 1e-9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            piecewise_linear_trajectory(n=0)
        with pytest.raises(ConfigurationError):
            piecewise_linear_trajectory(n=10, max_speed=0.0)
        with pytest.raises(ConfigurationError):
            piecewise_linear_trajectory(n=10, min_segment=5, max_segment=2)


class TestSinusoidalSeries:
    def test_pure_sinusoid(self):
        stream = sinusoidal_series(n=100, period=20, amplitude=5.0, mean=10.0)
        values = stream.component(0)
        assert np.isclose(values.mean(), 10.0, atol=0.5)
        assert np.isclose(values.max(), 15.0, atol=0.1)

    def test_period_detected_in_fft(self):
        stream = sinusoidal_series(n=400, period=25, amplitude=1.0)
        values = stream.component(0) - stream.component(0).mean()
        spectrum = np.abs(np.fft.rfft(values))
        peak_freq = np.fft.rfftfreq(400)[np.argmax(spectrum[1:]) + 1]
        assert np.isclose(1.0 / peak_freq, 25.0, rtol=0.05)

    def test_drift(self):
        stream = sinusoidal_series(n=100, period=10, amplitude=0.0, drift_per_step=1.0)
        assert np.allclose(np.diff(stream.component(0)), 1.0)

    def test_noise_reproducible(self):
        a = sinusoidal_series(n=50, period=10, noise_std=1.0, seed=4)
        b = sinusoidal_series(n=50, period=10, noise_std=1.0, seed=4)
        assert np.array_equal(a.values(), b.values())

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sinusoidal_series(n=0, period=10)
        with pytest.raises(ConfigurationError):
            sinusoidal_series(n=10, period=0)


class TestRandomWalk:
    def test_zero_std_is_constant(self):
        stream = random_walk_series(n=50, step_std=0.0, start=5.0)
        assert np.allclose(stream.component(0), 5.0)

    def test_steps_have_requested_scale(self):
        stream = random_walk_series(n=5000, step_std=2.0, seed=0)
        steps = np.diff(stream.component(0))
        assert np.isclose(steps.std(), 2.0, rtol=0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            random_walk_series(n=0)
        with pytest.raises(ConfigurationError):
            random_walk_series(n=5, step_std=-1.0)


class TestBurstyCounts:
    def test_non_negative_counts(self):
        stream = bursty_count_series(n=1000, seed=2)
        assert stream.component(0).min() >= 0

    def test_bursts_raise_the_tail(self):
        """With bursts enabled the distribution grows a heavy right tail."""
        quiet = bursty_count_series(
            n=2000, burst_probability=0.0, spike_probability=0.0, seed=1
        )
        bursty = bursty_count_series(
            n=2000, burst_probability=0.05, spike_probability=0.01, seed=1
        )
        q99_quiet = np.percentile(quiet.component(0), 99)
        q99_bursty = np.percentile(bursty.component(0), 99)
        assert q99_bursty > 1.5 * q99_quiet

    def test_reproducible(self):
        a = bursty_count_series(n=300, seed=9)
        b = bursty_count_series(n=300, seed=9)
        assert np.array_equal(a.values(), b.values())

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bursty_count_series(n=0)
        with pytest.raises(ConfigurationError):
            bursty_count_series(n=10, base_rate=0.0)
        with pytest.raises(ConfigurationError):
            bursty_count_series(n=10, burst_min=5, burst_max=2)
