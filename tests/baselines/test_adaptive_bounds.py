"""Unit tests for the adaptive-bound caching extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.adaptive_bounds import AdaptiveBoundScheme
from repro.errors import ConfigurationError
from repro.streams.base import StreamRecord, stream_from_values

finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


def record(k, *values):
    return StreamRecord(k=k, timestamp=float(k), value=np.array(values))


class TestAdaptiveBoundScheme:
    def test_starts_at_max_width(self):
        scheme = AdaptiveBoundScheme(max_width=10.0)
        assert scheme.width == 10.0

    def test_shrinks_on_escape(self):
        scheme = AdaptiveBoundScheme(max_width=10.0, shrink=0.5)
        scheme.observe(record(0, 0.0))
        scheme.observe(record(1, 100.0))
        assert scheme.width == 5.0

    def test_grows_after_quiet_streak(self):
        scheme = AdaptiveBoundScheme(
            max_width=10.0, shrink=0.5, grow=2.0, quiet_streak=3
        )
        scheme.observe(record(0, 0.0))
        scheme.observe(record(1, 100.0))  # shrink to 5
        for k in range(2, 5):  # three quiet readings
            scheme.observe(record(k, 100.0))
        assert scheme.width == 10.0

    def test_width_capped_at_max(self):
        scheme = AdaptiveBoundScheme(max_width=10.0, grow=3.0, quiet_streak=1)
        scheme.observe(record(0, 0.0))
        for k in range(1, 10):
            scheme.observe(record(k, 0.0))
        assert scheme.width == 10.0

    def test_width_floored(self):
        scheme = AdaptiveBoundScheme(
            max_width=10.0, shrink=0.1, min_width_fraction=0.2
        )
        scheme.observe(record(0, 0.0))
        for k in range(1, 10):
            scheme.observe(record(k, 1000.0 * k))
        assert scheme.width >= 2.0

    def test_correctness_never_violated(self):
        """Even while adapting, the cached value stays within max_width/2
        of the reading -- the query-precision guarantee."""
        rng = np.random.default_rng(0)
        scheme = AdaptiveBoundScheme.from_precision(5.0)
        stream = stream_from_values(np.cumsum(rng.normal(0, 3, size=300)))
        for decision in scheme.run(stream):
            error = np.max(np.abs(decision.server_value - decision.source_value))
            assert error <= 5.0 + 1e-9

    def test_fewer_updates_than_static_on_calm_then_volatile(self):
        """Adaptive bounds spend fewer updates than a statically *narrow*
        bound on calm data while staying correct."""
        rng = np.random.default_rng(1)
        calm = rng.normal(0, 0.1, size=300)
        volatile = np.cumsum(rng.normal(0, 5.0, size=100))
        stream = stream_from_values(np.concatenate([calm, volatile]))
        adaptive = AdaptiveBoundScheme.from_precision(5.0)
        updates = sum(d.sent for d in adaptive.run(stream))
        assert updates < len(stream)

    def test_reset(self):
        scheme = AdaptiveBoundScheme(max_width=10.0, shrink=0.5)
        scheme.observe(record(0, 0.0))
        scheme.observe(record(1, 100.0))
        scheme.reset()
        assert scheme.width == 10.0
        assert scheme.updates_sent == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveBoundScheme(max_width=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveBoundScheme(max_width=1.0, shrink=1.0)
        with pytest.raises(ConfigurationError):
            AdaptiveBoundScheme(max_width=1.0, grow=1.0)
        with pytest.raises(ConfigurationError):
            AdaptiveBoundScheme(max_width=1.0, quiet_streak=0)
        with pytest.raises(ConfigurationError):
            AdaptiveBoundScheme(max_width=1.0, min_width_fraction=0.0)
        scheme = AdaptiveBoundScheme(max_width=1.0, dims=2)
        with pytest.raises(ConfigurationError):
            scheme.observe(record(0, 1.0))


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(finite, min_size=1, max_size=50),
    delta=st.floats(min_value=0.1, max_value=100.0),
)
def test_precision_guarantee_property(values, delta):
    scheme = AdaptiveBoundScheme.from_precision(delta)
    stream = stream_from_values(np.array(values))
    for decision in scheme.run(stream):
        error = np.max(np.abs(decision.server_value - decision.source_value))
        assert error <= delta + 1e-9
