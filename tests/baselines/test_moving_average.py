"""Unit tests for the moving-average baselines."""

import numpy as np
import pytest

from repro.baselines.moving_average import (
    ExponentialMovingAverage,
    MovingAverage,
    moving_average_series,
)
from repro.errors import ConfigurationError


class TestMovingAverage:
    def test_matches_numpy_convolution(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=100)
        window = 7
        ours = moving_average_series(data, window)
        for i in range(window - 1, 100):
            expected = data[i - window + 1 : i + 1].mean()
            assert np.isclose(ours[i], expected)

    def test_warmup_uses_partial_window(self):
        ours = moving_average_series(np.array([2.0, 4.0, 6.0]), window=10)
        assert np.allclose(ours, [2.0, 3.0, 4.0])

    def test_value_before_data_raises(self):
        with pytest.raises(ConfigurationError):
            MovingAverage(3).value  # noqa: B018

    def test_primed(self):
        ma = MovingAverage(3)
        assert not ma.primed
        ma.smooth(1.0)
        assert ma.primed

    def test_reset(self):
        ma = MovingAverage(3)
        ma.smooth(5.0)
        ma.reset()
        assert not ma.primed
        assert ma.smooth(1.0) == 1.0

    def test_window_one_is_identity(self):
        ma = MovingAverage(1)
        assert ma.smooth(3.0) == 3.0
        assert ma.smooth(9.0) == 9.0

    def test_window_validated(self):
        with pytest.raises(ConfigurationError):
            MovingAverage(0)

    def test_spike_insensitivity(self):
        """The paper's criticism: a spike barely moves a wide average."""
        ma = MovingAverage(100)
        for _ in range(100):
            ma.smooth(10.0)
        after_spike = ma.smooth(1000.0)
        assert after_spike < 25.0


class TestExponentialMovingAverage:
    def test_alpha_one_tracks_exactly(self):
        ema = ExponentialMovingAverage(alpha=1.0)
        ema.smooth(1.0)
        assert ema.smooth(7.0) == 7.0

    def test_recursive_formula(self):
        ema = ExponentialMovingAverage(alpha=0.5)
        ema.smooth(0.0)
        assert ema.smooth(10.0) == 5.0
        assert ema.smooth(10.0) == 7.5

    def test_first_sample_passthrough(self):
        ema = ExponentialMovingAverage(alpha=0.3)
        assert ema.smooth(42.0) == 42.0

    def test_reset(self):
        ema = ExponentialMovingAverage(alpha=0.3)
        ema.smooth(5.0)
        ema.reset()
        assert not ema.primed

    def test_value_before_data_raises(self):
        with pytest.raises(ConfigurationError):
            ExponentialMovingAverage(0.5).value  # noqa: B018

    def test_alpha_validated(self):
        with pytest.raises(ConfigurationError):
            ExponentialMovingAverage(alpha=0.0)
        with pytest.raises(ConfigurationError):
            ExponentialMovingAverage(alpha=1.5)
