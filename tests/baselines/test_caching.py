"""Unit and property tests for the cached-approximation baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.caching import CachedValueScheme
from repro.errors import ConfigurationError
from repro.streams.base import StreamRecord, stream_from_values

finite = st.floats(min_value=-1e5, max_value=1e5, allow_nan=False)


def record(k, *values):
    return StreamRecord(k=k, timestamp=float(k), value=np.array(values))


class TestCachedValueScheme:
    def test_first_reading_always_transmits(self):
        scheme = CachedValueScheme(width=10.0)
        decision = scheme.observe(record(0, 5.0))
        assert decision.sent
        assert decision.payload_floats == 1

    def test_suppresses_inside_bound(self):
        scheme = CachedValueScheme(width=10.0)
        scheme.observe(record(0, 0.0))
        decision = scheme.observe(record(1, 4.9))
        assert not decision.sent
        assert decision.server_value[0] == 0.0

    def test_transmits_on_escape(self):
        scheme = CachedValueScheme(width=10.0)
        scheme.observe(record(0, 0.0))
        decision = scheme.observe(record(1, 5.1))
        assert decision.sent
        assert decision.server_value[0] == 5.1

    def test_bound_recentres_on_update(self):
        scheme = CachedValueScheme(width=10.0)
        scheme.observe(record(0, 0.0))
        scheme.observe(record(1, 20.0))
        low, high = scheme.bounds
        assert low[0] == 15.0 and high[0] == 25.0

    def test_any_component_triggers(self):
        """Paper Section 5.1: update when either X or Y escapes."""
        scheme = CachedValueScheme(width=10.0, dims=2)
        scheme.observe(record(0, 0.0, 0.0))
        decision = scheme.observe(record(1, 0.0, 6.0))
        assert decision.sent

    def test_from_precision_width(self):
        scheme = CachedValueScheme.from_precision(3.0)
        assert scheme.width == 6.0

    def test_counters(self):
        scheme = CachedValueScheme(width=10.0)
        scheme.observe(record(0, 0.0))
        scheme.observe(record(1, 1.0))
        scheme.observe(record(2, 100.0))
        assert scheme.records_observed == 3
        assert scheme.updates_sent == 2

    def test_reset(self):
        scheme = CachedValueScheme(width=10.0)
        scheme.observe(record(0, 0.0))
        scheme.reset()
        assert scheme.cached_value is None
        assert scheme.updates_sent == 0
        assert scheme.observe(record(0, 1.0)).sent

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CachedValueScheme(width=0.0)
        with pytest.raises(ConfigurationError):
            CachedValueScheme(width=1.0, dims=0)
        scheme = CachedValueScheme(width=1.0, dims=2)
        with pytest.raises(ConfigurationError):
            scheme.observe(record(0, 1.0))

    def test_constant_stream_sends_once(self, constant_stream):
        scheme = CachedValueScheme.from_precision(1.0)
        decisions = scheme.run(constant_stream)
        assert sum(d.sent for d in decisions) == 1

    def test_ramp_updates_periodically(self, ramp_stream):
        # Slope 2/step, delta 3 -> cached value escapes every ceil(3/2)+... steps.
        scheme = CachedValueScheme.from_precision(3.0)
        decisions = scheme.run(ramp_stream)
        updates = sum(d.sent for d in decisions)
        assert 0.4 * len(decisions) <= updates <= 0.6 * len(decisions)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(finite, min_size=1, max_size=60),
    delta=st.floats(min_value=0.01, max_value=1e4),
)
def test_server_error_never_exceeds_precision(values, delta):
    """The invariant the scheme sells: the cached value is always within
    delta of the current reading at decision time."""
    scheme = CachedValueScheme.from_precision(delta)
    stream = stream_from_values(np.array(values))
    for decision in scheme.run(stream):
        error = np.max(np.abs(decision.server_value - decision.source_value))
        assert error <= delta + 1e-9


@settings(max_examples=30, deadline=None)
@given(values=st.lists(finite, min_size=1, max_size=50))
def test_deterministic(values):
    stream = stream_from_values(np.array(values))
    a = CachedValueScheme.from_precision(5.0).run(stream)
    b = CachedValueScheme.from_precision(5.0).run(stream)
    assert [d.sent for d in a] == [d.sent for d in b]
