"""Unit tests for the unscented Kalman filter."""

import math

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.filters.ekf import ExtendedKalmanFilter, coordinated_turn_model
from repro.filters.kalman import KalmanFilter
from repro.filters.ukf import UnscentedKalmanFilter
from tests.filters.test_ekf import linear_as_nonlinear


class TestLinearAgreement:
    def test_ukf_matches_kf_on_linear_system(self):
        """For linear systems the unscented transform is exact, so the UKF
        must agree with the covariance-form KF to numerical precision."""
        model = linear_as_nonlinear()
        ukf = UnscentedKalmanFilter(model, x0=np.array([0.0, 1.0]))
        kf = KalmanFilter(
            phi=np.array([[1.0, 1.0], [0.0, 1.0]]),
            h=np.array([[1.0, 0.0]]),
            q=np.eye(2) * 0.05,
            r=np.eye(1) * 0.05,
            x0=np.array([0.0, 1.0]),
        )
        rng = np.random.default_rng(0)
        for _ in range(40):
            z = rng.normal(size=1)
            ukf.predict()
            kf.predict()
            ukf.update(z)
            kf.update(z)
            assert np.allclose(ukf.x, kf.x, atol=1e-6)
            assert np.allclose(ukf.p, kf.p, atol=1e-6)


class TestNonlinearTracking:
    def test_tracks_coordinated_turn(self):
        dt = 0.5
        model = coordinated_turn_model(dt=dt, q=1e-4, r=0.01)
        x_true = np.array([10.0, 0.0, 2.0, math.pi / 2, 0.1])
        ukf = UnscentedKalmanFilter(
            model,
            x0=np.array([10.0, 0.0, 1.0, math.pi / 2, 0.0]),
            p0=np.eye(5),
        )
        rng = np.random.default_rng(1)
        errors = []
        for _ in range(200):
            x_true = model.f(x_true, 0)
            z = model.h(x_true, 0) + rng.normal(0, 0.1, size=2)
            ukf.predict()
            ukf.update(z)
            errors.append(np.linalg.norm(ukf.x[:2] - x_true[:2]))
        assert np.mean(errors[-50:]) < 0.5

    def test_competitive_with_ekf_on_sharp_turn(self):
        """On an aggressive turn the UKF should be at least in the EKF's
        ballpark (both converge; the UKF needs no Jacobians)."""
        dt = 1.0
        model = coordinated_turn_model(dt=dt, q=1e-4, r=0.01)
        x0 = np.array([0.0, 0.0, 3.0, 0.0, 0.0])
        x_true = np.array([0.0, 0.0, 3.0, 0.0, 0.35])  # sharp turn
        ukf = UnscentedKalmanFilter(model, x0=x0.copy(), p0=np.eye(5))
        ekf = ExtendedKalmanFilter(model, x0=x0.copy(), p0=np.eye(5))
        ukf_err = ekf_err = 0.0
        for _ in range(150):
            x_true = model.f(x_true, 0)
            z = model.h(x_true, 0)
            for filt in (ukf, ekf):
                filt.predict()
                filt.update(z)
            ukf_err += float(np.linalg.norm(ukf.x[:2] - x_true[:2]))
            ekf_err += float(np.linalg.norm(ekf.x[:2] - x_true[:2]))
        assert ukf_err < 2.0 * ekf_err


class TestInterface:
    def test_step_api(self):
        model = coordinated_turn_model()
        ukf = UnscentedKalmanFilter(model, x0=np.zeros(5))
        record = ukf.step(np.array([0.1, 0.2]))
        assert record.updated
        assert record.k == 0
        coasted = ukf.step()
        assert not coasted.updated

    def test_covariance_stays_symmetric_psd(self):
        model = coordinated_turn_model(q=1e-3, r=0.1)
        ukf = UnscentedKalmanFilter(
            model, x0=np.array([0.0, 0.0, 1.0, 0.0, 0.0])
        )
        rng = np.random.default_rng(2)
        for _ in range(100):
            ukf.predict()
            ukf.update(rng.normal(0, 1, size=2))
            assert np.allclose(ukf.p, ukf.p.T)
            assert np.linalg.eigvalsh(ukf.p).min() > -1e-8

    def test_validation(self):
        model = coordinated_turn_model()
        with pytest.raises(DimensionError):
            UnscentedKalmanFilter(model, x0=np.zeros(3))
        ukf = UnscentedKalmanFilter(model, x0=np.zeros(5))
        ukf.predict()
        with pytest.raises(DimensionError):
            ukf.update(np.zeros(3))

    def test_copy_and_digest(self):
        model = coordinated_turn_model()
        ukf = UnscentedKalmanFilter(model, x0=np.zeros(5))
        clone = ukf.copy()
        ukf.predict()
        assert clone.k == 0
        assert ukf.state_digest()[0] == 1

    def test_deterministic(self):
        """Sigma-point arithmetic is deterministic -- mirrorable like the
        linear filter."""
        model = coordinated_turn_model()
        a = UnscentedKalmanFilter(model, x0=np.zeros(5))
        b = UnscentedKalmanFilter(model, x0=np.zeros(5))
        for v in ([1.0, 2.0], [2.0, 2.5], [3.0, 2.0]):
            a.predict()
            a.update(np.array(v))
            b.predict()
            b.update(np.array(v))
        assert a.state_digest() == b.state_digest()
