"""Multi-step endpoint prediction (`predict_k`) and the `phi_power` cache."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.filters.kalman import (
    _PHI_POWER_CACHE,
    phi_power,
)
from repro.filters.models import linear_model, sinusoidal_model


def _primed_filter(model=None, seed=0, warm=20):
    model = model or linear_model(dims=2, dt=0.5)
    rng = np.random.default_rng(seed)
    kf = model.build_filter(rng.normal(size=model.measurement_dim))
    for _ in range(warm):
        kf.predict()
        kf.update(rng.normal(0.0, 2.0, size=model.measurement_dim))
    return kf


def test_phi_power_matches_matrix_power():
    phi = linear_model(dims=2, dt=0.3).phi
    for k in range(0, 20):
        np.testing.assert_allclose(
            phi_power(phi, k),
            np.linalg.matrix_power(phi, k),
            atol=1e-12,
            rtol=0,
        )


def test_phi_power_identity_and_base_cases():
    phi = np.array([[1.0, 2.0], [0.0, 1.0]])
    np.testing.assert_array_equal(phi_power(phi, 0), np.eye(2))
    assert phi_power(phi, 1) is phi or (phi_power(phi, 1) == phi).all()
    with pytest.raises(ConfigurationError):
        phi_power(phi, -1)


def test_phi_power_caches_per_matrix_and_exponent():
    phi = np.array([[1.0, 0.125], [0.0, 1.0]])  # unlikely to collide
    key = (phi.tobytes(), phi.shape, 7)
    _PHI_POWER_CACHE.pop(key, None)
    first = phi_power(phi, 7)
    assert _PHI_POWER_CACHE.get(key) is first  # stored
    assert phi_power(phi, 7) is first  # served from cache


def test_phi_power_builds_incrementally():
    """Power k reuses the cached k-1 (one extra multiply, same values)."""
    phi = np.array([[1.0, 0.0625], [0.0, 1.0]])
    for k in range(2, 40):
        np.testing.assert_allclose(
            phi_power(phi, k),
            np.linalg.matrix_power(phi, k),
            atol=1e-9,
            rtol=0,
        )


def test_predict_k_zero_is_predict_measurement():
    kf = _primed_filter()
    np.testing.assert_array_equal(kf.predict_k(0), kf.predict_measurement())


def test_predict_k_matches_forecast_endpoint():
    kf = _primed_filter()
    for steps in (1, 3, 10, 32):
        horizon = kf.forecast(steps)
        np.testing.assert_allclose(
            kf.predict_k(steps), horizon[-1], atol=1e-9, rtol=0
        )


def test_predict_k_does_not_mutate_filter():
    kf = _primed_filter()
    x, p, k = kf.x, kf.p, kf.k
    kf.predict_k(16)
    np.testing.assert_array_equal(kf.x, x)
    np.testing.assert_array_equal(kf.p, p)
    assert kf.k == k


def test_predict_k_negative_steps_rejected():
    kf = _primed_filter()
    with pytest.raises(ValueError):
        kf.predict_k(-1)


def test_predict_k_time_varying_falls_back_to_loop():
    model = sinusoidal_model(omega=0.2, theta=0.1)
    rng = np.random.default_rng(4)
    kf = model.build_filter(rng.normal(size=model.measurement_dim))
    for _ in range(10):
        kf.predict()
        kf.update(rng.normal(size=model.measurement_dim))
    for steps in (1, 5, 12):
        np.testing.assert_allclose(
            kf.predict_k(steps), kf.forecast(steps)[-1], atol=1e-9, rtol=0
        )


def test_server_predict_k_endpoint():
    """The DKF server exposes the memoised endpoint form."""
    from repro.dkf.config import DKFConfig
    from repro.dkf.server import DKFServer
    from repro.dkf.source import DKFSource
    from repro.errors import UnknownSourceError
    from repro.streams.base import StreamRecord

    model = linear_model(dims=1)
    config = DKFConfig(model=model, delta=1.0)
    server = DKFServer()
    server.register("s0", config)
    with pytest.raises(UnknownSourceError):
        server.predict_k("s0", 3)
    source = DKFSource("s0", config)
    rng = np.random.default_rng(8)
    vals = np.cumsum(rng.normal(0.3, 1.0, 30))
    for k, v in enumerate(vals):
        server.advance_clock(k)
        if server.is_primed("s0"):
            server.tick("s0", k)
        step = source.sample(
            StreamRecord(k=k, timestamp=float(k), value=np.atleast_1d(v))
        )
        if step.message is not None:
            server.receive(step.message)
    np.testing.assert_allclose(
        server.predict_k("s0", 6), server.forecast("s0", 6)[-1],
        atol=1e-9, rtol=0,
    )
    state_filter = server._state("s0").filter
    np.testing.assert_array_equal(
        server.predict_k("s0", 0), state_filter.predict_measurement()
    )
