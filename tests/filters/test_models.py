"""Unit tests for the state-space model zoo."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, DimensionError
from repro.filters.kalman import resolve_matrix
from repro.filters.models import (
    DEFAULT_NOISE,
    acceleration_model,
    constant_model,
    jerk_model,
    kinematic_model,
    linear_model,
    sinusoidal_model,
    smoothing_model,
)


class TestConstantModel:
    def test_paper_eq15_phi(self):
        model = constant_model(dims=2)
        assert np.array_equal(model.phi, np.eye(2))

    def test_h_is_identity(self):
        model = constant_model(dims=3)
        assert np.array_equal(model.h, np.eye(3))

    def test_default_noise_is_paper_value(self):
        model = constant_model(dims=2)
        assert np.allclose(np.diag(model.q), DEFAULT_NOISE)
        assert np.allclose(np.diag(model.r), DEFAULT_NOISE)

    def test_initial_state_is_measurement(self):
        model = constant_model(dims=2)
        x0 = model.initial_state(np.array([3.0, 4.0]))
        assert np.allclose(x0, [3.0, 4.0])

    def test_per_component_noise(self):
        model = constant_model(dims=2, q=np.array([0.1, 0.2]))
        assert np.allclose(np.diag(model.q), [0.1, 0.2])

    def test_negative_noise_rejected(self):
        with pytest.raises(ConfigurationError):
            constant_model(dims=1, q=-0.1)


class TestLinearModel:
    def test_paper_eq14_phi(self):
        dt = 0.1
        model = linear_model(dims=2, dt=dt)
        expected = np.array(
            [
                [1.0, dt, 0.0, 0.0],
                [0.0, 1.0, 0.0, 0.0],
                [0.0, 0.0, 1.0, dt],
                [0.0, 0.0, 0.0, 1.0],
            ]
        )
        assert np.allclose(model.phi, expected)

    def test_paper_eq16_h(self):
        model = linear_model(dims=2, dt=0.1)
        expected = np.array(
            [[1.0, 0.0, 0.0, 0.0], [0.0, 0.0, 1.0, 0.0]]
        )
        assert np.allclose(model.h, expected)

    def test_initializer_zeroes_velocities(self):
        model = linear_model(dims=2, dt=0.1)
        x0 = model.initial_state(np.array([5.0, -7.0]))
        assert np.allclose(x0, [5.0, 0.0, -7.0, 0.0])

    def test_state_and_measurement_dims(self):
        model = linear_model(dims=2)
        assert model.state_dim == 4
        assert model.measurement_dim == 2

    def test_1d_variant(self):
        model = linear_model(dims=1, dt=1.0)
        assert model.state_dim == 2
        assert np.allclose(model.phi, [[1.0, 1.0], [0.0, 1.0]])


class TestKinematicModel:
    def test_order_zero_equals_constant(self):
        k0 = kinematic_model(order=0, dims=2)
        assert np.array_equal(k0.phi, np.eye(2))

    def test_taylor_block_for_jerk(self):
        dt = 2.0
        model = jerk_model(dims=1, dt=dt)
        # P_k = P + P' dt + P'' dt^2/2 + P''' dt^3/6 (Section 4.1).
        expected_row = [1.0, dt, dt**2 / 2, dt**3 / 6]
        assert np.allclose(model.phi[0], expected_row)

    def test_acceleration_dims(self):
        model = acceleration_model(dims=2, dt=0.5)
        assert model.state_dim == 6
        assert model.measurement_dim == 2

    def test_rejects_negative_order(self):
        with pytest.raises(ConfigurationError):
            kinematic_model(order=-1)

    def test_rejects_zero_dims(self):
        with pytest.raises(ConfigurationError):
            kinematic_model(order=1, dims=0)

    def test_measures_positions_only(self):
        model = acceleration_model(dims=2, dt=1.0)
        x = np.arange(6, dtype=float)
        # Positions sit at indices 0 and 3 (per-coordinate blocks).
        assert np.allclose(model.h @ x, [x[0], x[3]])


class TestSinusoidalModel:
    def test_paper_eq17_phi_time_varying(self):
        omega, theta, gamma = 0.3, 0.5, 2.0
        model = sinusoidal_model(omega=omega, theta=theta, gamma=gamma)
        for k in (0, 5, 11):
            phi_k = resolve_matrix(model.phi, k)
            assert np.isclose(phi_k[0, 1], gamma * math.cos(omega * k + theta))
            assert phi_k[0, 0] == 1.0 and phi_k[1, 1] == 1.0 and phi_k[1, 0] == 0.0

    def test_paper_eq18_h(self):
        model = sinusoidal_model(omega=0.1)
        assert np.allclose(model.h, [[1.0, 0.0]])

    def test_initializer_seeds_rate(self):
        model = sinusoidal_model(omega=0.1)
        x0 = model.initial_state(np.array([100.0]))
        assert x0[0] == 100.0
        assert x0[1] != 0.0  # non-degenerate rate seed

    def test_generates_sinusoid_when_rate_matches(self):
        # With s = A*omega and matching phase, iterating the transition
        # reproduces A*sin(omega k + theta) up to discretisation error.
        omega, amplitude = 2 * math.pi / 50, 10.0
        model = sinusoidal_model(omega=omega, theta=0.0)
        x = np.array([0.0, amplitude * omega])
        trace = []
        for k in range(200):
            x = resolve_matrix(model.phi, k) @ x
            trace.append(x[0])
        trace = np.array(trace)
        expected = amplitude * np.sin(omega * np.arange(1, 201))
        # Forward-Euler discretisation drifts the phase slowly; over 200
        # steps the worst error stays under ~15% of the amplitude.
        assert np.max(np.abs(trace - expected)) < 0.2 * amplitude


class TestSmoothingModel:
    def test_q_is_smoothing_factor(self):
        model = smoothing_model(f=1e-7)
        assert model.q[0, 0] == 1e-7

    def test_scalar_constant_structure(self):
        model = smoothing_model(f=0.1)
        assert np.array_equal(model.phi, np.eye(1))
        assert np.array_equal(model.h, np.eye(1))

    def test_negative_f_rejected(self):
        with pytest.raises(ConfigurationError):
            smoothing_model(f=-1.0)


class TestBuildFilter:
    def test_builds_runnable_filter(self):
        model = linear_model(dims=2, dt=0.1)
        kf = model.build_filter(np.array([1.0, 2.0]))
        kf.predict()
        kf.update(np.array([1.1, 2.1]))
        assert kf.k == 1

    def test_p0_scale(self):
        model = constant_model(dims=1)
        kf = model.build_filter(np.array([0.0]), p0_scale=5.0)
        assert kf.p[0, 0] == 5.0

    def test_explicit_p0_overrides_scale(self):
        model = constant_model(dims=1)
        kf = model.build_filter(np.array([0.0]), p0=np.array([[9.0]]), p0_scale=5.0)
        assert kf.p[0, 0] == 9.0

    def test_rejects_wrong_measurement_shape(self):
        model = linear_model(dims=2)
        with pytest.raises(DimensionError):
            model.initial_state(np.array([1.0]))

    def test_initializer_shape_validated(self):
        from repro.filters.models import StateSpaceModel

        model = StateSpaceModel(
            name="bad",
            phi=np.eye(2),
            h=np.eye(2),
            q=np.eye(2),
            r=np.eye(2),
            state_dim=2,
            measurement_dim=2,
            initializer=lambda z: np.zeros(3),
        )
        with pytest.raises(DimensionError):
            model.initial_state(np.array([1.0, 2.0]))
