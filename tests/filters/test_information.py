"""Unit tests for the information-form Kalman filter."""

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.filters.information import InformationFilter
from repro.filters.kalman import KalmanFilter

PHI = np.array([[1.0, 1.0], [0.0, 1.0]])
H = np.array([[1.0, 0.0]])
Q = np.eye(2) * 0.05
R = np.eye(1) * 0.05


def pair(x0=None, p0=None):
    x0 = np.zeros(2) if x0 is None else x0
    p0 = np.eye(2) if p0 is None else p0
    info = InformationFilter(PHI, Q, x0=x0, p0=p0)
    cov = KalmanFilter(PHI, H, Q, R, x0=x0, p0=p0)
    return info, cov


class TestEquivalence:
    def test_matches_covariance_form_exactly(self):
        """Same estimator, different parameterisation: states and
        covariances must agree through a full run."""
        info, cov = pair()
        rng = np.random.default_rng(0)
        for _ in range(50):
            z = rng.normal(size=1)
            info.predict()
            cov.predict()
            info.update(H, R, z)
            cov.update(z)
            assert np.allclose(info.x, cov.x, atol=1e-8)
            assert np.allclose(info.p, cov.p, atol=1e-8)

    def test_coasting_matches(self):
        info, cov = pair(x0=np.array([1.0, 2.0]))
        for _ in range(5):
            info.predict()
            cov.predict()
        assert np.allclose(info.x, cov.x, atol=1e-10)


class TestFusion:
    def test_two_sensors_beat_one(self):
        """Fusing two independent sensors halves the variance."""
        single = InformationFilter(np.eye(1), np.eye(1) * 1e-6, x0=np.zeros(1))
        double = InformationFilter(np.eye(1), np.eye(1) * 1e-6, x0=np.zeros(1))
        h, r = np.eye(1), np.eye(1) * 1.0
        for _ in range(20):
            single.predict()
            double.predict()
            single.update(h, r, np.array([5.0]))
            double.fuse([(h, r, np.array([5.0])), (h, r, np.array([5.0]))])
        assert double.p[0, 0] < single.p[0, 0]

    def test_fusion_order_irrelevant(self):
        """Information addition commutes: sensor order cannot matter."""
        h1, r1, z1 = np.array([[1.0, 0.0]]), np.eye(1) * 0.5, np.array([3.0])
        h2, r2, z2 = np.array([[0.0, 1.0]]), np.eye(1) * 2.0, np.array([-1.0])
        a = InformationFilter(PHI, Q, x0=np.zeros(2))
        b = InformationFilter(PHI, Q, x0=np.zeros(2))
        a.predict()
        b.predict()
        a.fuse([(h1, r1, z1), (h2, r2, z2)])
        b.fuse([(h2, r2, z2), (h1, r1, z1)])
        assert np.allclose(a.x, b.x, atol=1e-12)
        assert np.allclose(a.p, b.p, atol=1e-12)

    def test_heterogeneous_sensors(self):
        """Sensors with different H matrices (observing different state
        components) fuse into one estimate."""
        filt = InformationFilter(PHI, Q, x0=np.zeros(2), p0=np.eye(2) * 100)
        pos_sensor = (np.array([[1.0, 0.0]]), np.eye(1) * 0.1, np.array([10.0]))
        vel_sensor = (np.array([[0.0, 1.0]]), np.eye(1) * 0.1, np.array([2.0]))
        filt.predict()
        filt.fuse([pos_sensor, vel_sensor])
        assert abs(filt.x[0] - 10.0) < 0.5
        assert abs(filt.x[1] - 2.0) < 0.5


class TestInterface:
    def test_state_recovery(self):
        x0 = np.array([3.0, -1.0])
        filt = InformationFilter(PHI, Q, x0=x0, p0=np.eye(2) * 2.0)
        assert np.allclose(filt.x, x0)
        assert np.allclose(filt.p, np.eye(2) * 2.0)
        assert np.allclose(filt.information_matrix, np.eye(2) / 2.0)

    def test_clock(self):
        filt = InformationFilter(PHI, Q, x0=np.zeros(2))
        filt.predict()
        filt.predict()
        assert filt.k == 2

    def test_copy_independent(self):
        filt = InformationFilter(PHI, Q, x0=np.zeros(2))
        clone = filt.copy()
        filt.predict()
        assert clone.k == 0

    def test_validation(self):
        with pytest.raises(DimensionError):
            InformationFilter(np.zeros((2, 3)), Q, x0=np.zeros(2))
        with pytest.raises(DimensionError):
            InformationFilter(PHI, Q, x0=np.zeros(3))
        filt = InformationFilter(PHI, Q, x0=np.zeros(2))
        with pytest.raises(DimensionError):
            filt.update(np.eye(3), np.eye(3), np.zeros(3))
        with pytest.raises(DimensionError):
            filt.update(H, R, np.zeros(2))
