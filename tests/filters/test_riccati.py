"""Unit tests for the Riccati solver and steady-state filter."""

import numpy as np
import pytest
import scipy.linalg

from repro.errors import DimensionError, DivergenceError
from repro.filters.kalman import KalmanFilter
from repro.filters.riccati import (
    SteadyStateKalmanFilter,
    solve_dare,
    steady_state_gain,
)

PHI = np.array([[1.0, 1.0], [0.0, 1.0]])
H = np.array([[1.0, 0.0]])
Q = np.eye(2) * 0.05
R = np.eye(1) * 0.05


class TestSolveDare:
    def test_fixed_point_property(self):
        """The solution must satisfy the DARE when substituted back."""
        p = solve_dare(PHI, H, Q, R)
        s = H @ p @ H.T + R
        gain = p @ H.T @ np.linalg.inv(s)
        p_next = PHI @ (p - gain @ H @ p) @ PHI.T + Q
        assert np.allclose(p, p_next, atol=1e-9)

    def test_matches_scipy(self):
        """Cross-check against scipy's independent DARE solver."""
        ours = solve_dare(PHI, H, Q, R)
        # scipy solves A^T X A - X - A^T X B (...)...; for the filter DARE
        # use the standard transformation with A = phi^T, B = H^T.
        ref = scipy.linalg.solve_discrete_are(PHI.T, H.T, Q, R)
        assert np.allclose(ours, ref, atol=1e-8)

    def test_scalar_closed_form(self):
        """For the scalar constant model the DARE has a closed form:
        x^2 - q x - q r = 0 -> x = (q + sqrt(q^2 + 4 q r)) / 2."""
        q, r = 0.05, 0.05
        p = solve_dare(np.eye(1), np.eye(1), np.eye(1) * q, np.eye(1) * r)
        expected = (q + np.sqrt(q * q + 4 * q * r)) / 2
        assert np.isclose(p[0, 0], expected, atol=1e-10)

    def test_shape_validation(self):
        with pytest.raises(DimensionError):
            solve_dare(np.zeros((2, 3)), H, Q, R)
        with pytest.raises(DimensionError):
            solve_dare(PHI, np.zeros((1, 3)), Q, R)

    def test_non_convergent_raises(self):
        # Unstable, unobservable-through-noise system with no iteration
        # budget must raise rather than loop forever.
        with pytest.raises(DivergenceError):
            solve_dare(
                np.eye(1) * 2.0,
                np.zeros((1, 1)),
                np.eye(1),
                np.eye(1),
                max_iter=10,
            )


class TestSteadyStateGain:
    def test_gain_formula(self):
        gain, p_minus = steady_state_gain(PHI, H, Q, R)
        s = H @ p_minus @ H.T + R
        expected = p_minus @ H.T @ np.linalg.inv(s)
        assert np.allclose(gain, expected)

    def test_time_varying_filter_converges_to_steady_gain(self):
        """The full filter's gain must approach the Riccati gain -- the
        paper's point that stationary noise makes covariance propagation
        predictable offline."""
        gain_ss, _ = steady_state_gain(PHI, H, Q, R)
        kf = KalmanFilter(PHI, H, Q, R, x0=np.zeros(2), p0=np.eye(2) * 10)
        rng = np.random.default_rng(0)
        last_gain = None
        for _ in range(300):
            record = kf.step(rng.normal(size=1))
            last_gain = record.gain
        assert np.allclose(last_gain, gain_ss, atol=1e-6)


class TestSteadyStateKalmanFilter:
    def test_tracks_like_full_filter_asymptotically(self):
        ss = SteadyStateKalmanFilter(PHI, H, Q, R, x0=np.zeros(2))
        full = KalmanFilter(PHI, H, Q, R, x0=np.zeros(2), p0=ss.p_prior)
        rng = np.random.default_rng(5)
        position = 0.0
        for k in range(300):
            position += 1.0
            z = np.array([position + rng.normal(0, 0.2)])
            ss.predict()
            ss.update(z)
            full.predict()
            full.update(z)
        # Same asymptotic behaviour (identical gains in the limit).
        assert np.allclose(ss.x, full.x, atol=0.05)

    def test_precomputed_gain_accepted(self):
        gain, _ = steady_state_gain(PHI, H, Q, R)
        ss = SteadyStateKalmanFilter(PHI, H, Q, R, x0=np.zeros(2), gain=gain)
        assert np.allclose(ss.gain, gain)

    def test_predict_measurement(self):
        ss = SteadyStateKalmanFilter(PHI, H, Q, R, x0=np.array([3.0, 1.0]))
        assert np.isclose(ss.predict_measurement()[0], 3.0)

    def test_dims_and_clock(self):
        ss = SteadyStateKalmanFilter(PHI, H, Q, R, x0=np.zeros(2))
        assert ss.state_dim == 2
        assert ss.measurement_dim == 1
        ss.predict()
        assert ss.k == 1

    def test_validation(self):
        with pytest.raises(DimensionError):
            SteadyStateKalmanFilter(PHI, H, Q, R, x0=np.zeros(3))
        ss = SteadyStateKalmanFilter(PHI, H, Q, R, x0=np.zeros(2))
        with pytest.raises(DimensionError):
            ss.update(np.zeros(2))

    def test_copy_and_digest(self):
        ss = SteadyStateKalmanFilter(PHI, H, Q, R, x0=np.zeros(2))
        clone = ss.copy()
        ss.predict()
        assert clone.k == 0
        assert ss.state_digest()[0] == 1
