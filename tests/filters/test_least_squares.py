"""Unit and property tests for recursive least squares."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionError
from repro.filters.least_squares import RecursiveLeastSquares, batch_least_squares

finite = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestRecursiveLeastSquares:
    def test_fits_scalar_mean(self):
        rls = RecursiveLeastSquares(dim=1)
        for z in (2.0, 4.0, 6.0):
            rls.update(np.array([1.0]), z)
        assert np.isclose(rls.theta[0], 4.0, atol=1e-3)

    def test_fits_line(self):
        rls = RecursiveLeastSquares(dim=2)
        rng = np.random.default_rng(0)
        for _ in range(200):
            x = rng.uniform(-5, 5)
            z = 3.0 * x + 1.5
            rls.update(np.array([x, 1.0]), z)
        assert np.allclose(rls.theta, [3.0, 1.5], atol=1e-3)

    def test_forgetting_tracks_drift(self):
        """With lam < 1 the estimate follows a parameter change; with
        lam = 1 it lags far behind."""
        tracking = RecursiveLeastSquares(dim=1, lam=0.9)
        sluggish = RecursiveLeastSquares(dim=1, lam=1.0)
        for _ in range(100):
            tracking.update(np.array([1.0]), 0.0)
            sluggish.update(np.array([1.0]), 0.0)
        for _ in range(30):
            tracking.update(np.array([1.0]), 10.0)
            sluggish.update(np.array([1.0]), 10.0)
        assert abs(tracking.theta[0] - 10.0) < 0.5
        assert abs(sluggish.theta[0] - 10.0) > 5.0

    def test_weight_influences_estimate(self):
        heavy = RecursiveLeastSquares(dim=1)
        light = RecursiveLeastSquares(dim=1)
        heavy.update(np.array([1.0]), 0.0)
        light.update(np.array([1.0]), 0.0)
        heavy.update(np.array([1.0]), 10.0, weight=100.0)
        light.update(np.array([1.0]), 10.0, weight=0.01)
        assert heavy.theta[0] > light.theta[0]

    def test_count_tracks_samples(self):
        rls = RecursiveLeastSquares(dim=1)
        rls.update(np.array([1.0]), 1.0)
        rls.update(np.array([1.0]), 2.0)
        assert rls.count == 2

    def test_predict(self):
        rls = RecursiveLeastSquares(dim=2, theta0=np.array([2.0, 1.0]))
        assert np.isclose(rls.predict(np.array([3.0, 1.0])), 7.0)

    def test_validation(self):
        with pytest.raises(DimensionError):
            RecursiveLeastSquares(dim=0)
        with pytest.raises(ValueError):
            RecursiveLeastSquares(dim=1, lam=0.0)
        with pytest.raises(ValueError):
            RecursiveLeastSquares(dim=1, lam=1.5)
        rls = RecursiveLeastSquares(dim=2)
        with pytest.raises(DimensionError):
            rls.update(np.array([1.0]), 1.0)
        with pytest.raises(ValueError):
            rls.update(np.array([1.0, 2.0]), 1.0, weight=0.0)
        with pytest.raises(DimensionError):
            rls.predict(np.array([1.0]))


class TestBatchLeastSquares:
    def test_matches_numpy_lstsq(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(50, 3))
        z = rng.normal(size=50)
        ours = batch_least_squares(a, z)
        ref = np.linalg.lstsq(a, z, rcond=None)[0]
        assert np.allclose(ours, ref, atol=1e-8)

    def test_weighted(self):
        # Two conflicting observations; weights pick the winner.
        a = np.array([[1.0], [1.0]])
        z = np.array([0.0, 10.0])
        heavy_second = batch_least_squares(a, z, weights=np.array([1.0, 99.0]))
        assert heavy_second[0] > 9.0

    def test_validation(self):
        with pytest.raises(DimensionError):
            batch_least_squares(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(DimensionError):
            batch_least_squares(np.zeros((3, 2)), np.zeros(3), weights=np.ones(4))
        with pytest.raises(ValueError):
            batch_least_squares(
                np.zeros((2, 1)), np.zeros(2), weights=np.array([1.0, 0.0])
            )


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(
        st.tuples(finite, finite), min_size=3, max_size=30
    )
)
def test_rls_converges_to_batch_solution(data):
    """After all samples, RLS with an uninformative prior matches the
    closed-form least-squares fit."""
    regressors = np.array([[x, 1.0] for x, _ in data])
    observations = np.array([z for _, z in data])
    rls = RecursiveLeastSquares(dim=2, p0_scale=1e9)
    for h, z in zip(regressors, observations):
        rls.update(h, z)
    batch = batch_least_squares(regressors, observations)
    # Rank-deficient inputs (all x equal) make theta non-unique; compare
    # predictions instead of parameters.
    preds_rls = regressors @ rls.theta
    preds_batch = regressors @ batch
    # The finite prior (p0_scale) leaves a regularisation bias that grows
    # with the parameter magnitude -- near-singular designs can demand
    # huge coefficients (e.g. x ~ 1e-4 fitting z = 1) -- so the tolerance
    # scales with both the data and the batch-solution magnitude.
    scale = max(
        1.0,
        float(np.abs(observations).max()),
        float(np.abs(batch).max()),
    )
    assert np.allclose(preds_rls, preds_batch, atol=0.02 * scale)
