"""Unit and property tests for the KF_c stream smoother."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.filters.smoothing import StreamSmoother, smooth_series

finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


class TestStreamSmoother:
    def test_first_sample_passes_through(self):
        smoother = StreamSmoother(f=1e-7)
        assert smoother.smooth(42.0) == 42.0

    def test_primed_state(self):
        smoother = StreamSmoother(f=1e-7)
        assert not smoother.primed
        smoother.smooth(1.0)
        assert smoother.primed
        assert smoother.value == 1.0

    def test_value_before_data_raises(self):
        with pytest.raises(ConfigurationError):
            StreamSmoother(f=1e-7).value  # noqa: B018

    def test_explicit_x0(self):
        smoother = StreamSmoother(f=1e-7, x0=5.0)
        assert smoother.primed
        assert smoother.value == 5.0

    def test_negative_f_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamSmoother(f=-1e-9)

    def test_nonpositive_r_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamSmoother(f=1e-7, r=0.0)

    def test_reset(self):
        smoother = StreamSmoother(f=1e-7)
        smoother.smooth(10.0)
        smoother.reset()
        assert not smoother.primed
        assert smoother.smooth(99.0) == 99.0

    def test_copy_stays_in_lockstep(self):
        """A mirrored copy fed the same inputs produces identical output --
        required when KF_c sits inside the DKF protocol."""
        a = StreamSmoother(f=1e-5)
        a.smooth(1.0)
        b = a.copy()
        for v in (2.0, 5.0, 3.0, 8.0):
            assert a.smooth(v) == b.smooth(v)


class TestSmoothingStrength:
    def test_small_f_smooths_heavily(self):
        rng = np.random.default_rng(0)
        noisy = 100.0 + rng.normal(0, 10, size=500)
        smoothed = smooth_series(noisy, f=1e-9)
        assert smoothed[100:].std() < 0.2 * noisy.std()

    def test_large_f_follows_raw_data(self):
        rng = np.random.default_rng(0)
        noisy = 100.0 + rng.normal(0, 10, size=500)
        smoothed = smooth_series(noisy, f=1e3)
        assert np.allclose(smoothed[1:], noisy[1:], atol=0.5)

    def test_monotone_in_f(self):
        """Output variance is non-decreasing in F (Fig. 12's mechanism)."""
        rng = np.random.default_rng(1)
        noisy = rng.normal(0, 5, size=400)
        stds = [
            smooth_series(noisy, f=f)[50:].std()
            for f in (1e-9, 1e-6, 1e-3, 1e0, 1e3)
        ]
        assert all(a <= b + 1e-9 for a, b in zip(stds, stds[1:]))

    def test_constant_input_is_fixed_point(self):
        smoothed = smooth_series(np.full(100, 7.0), f=1e-3)
        assert np.allclose(smoothed, 7.0)

    def test_smoothed_stays_in_data_hull(self):
        rng = np.random.default_rng(2)
        data = rng.uniform(10, 20, size=300)
        smoothed = smooth_series(data, f=1e-4)
        assert smoothed.min() >= 10 - 1e-9
        assert smoothed.max() <= 20 + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(finite, min_size=2, max_size=50),
    f=st.floats(min_value=1e-9, max_value=1e3),
)
def test_smoother_output_bounded_by_input_hull(values, f):
    """A convex filter can never leave the convex hull of its inputs."""
    smoothed = smooth_series(np.array(values), f=f)
    assert smoothed.min() >= min(values) - 1e-6
    assert smoothed.max() <= max(values) + 1e-6


@settings(max_examples=30, deadline=None)
@given(values=st.lists(finite, min_size=2, max_size=40))
def test_smoother_deterministic(values):
    a = smooth_series(np.array(values), f=1e-5)
    b = smooth_series(np.array(values), f=1e-5)
    assert np.array_equal(a, b)
