"""Unit tests for the RTS fixed-interval smoother."""

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.filters.models import constant_model, linear_model, sinusoidal_model
from repro.filters.rts import OfflineKalmanSmoother


def gappy_ramp_log(n=60, slope=2.0, keep_every=10):
    """A DKF-style update log over a ramp: measurements only at every
    ``keep_every``-th instant."""
    log = []
    for k in range(n):
        if k % keep_every == 0:
            log.append(np.array([slope * k]))
        else:
            log.append(None)
    return log


class TestOfflineSmoother:
    def test_smoothing_interpolates_gaps_on_ramp(self):
        """On a gappy ramp log, the smoother's in-gap values must lie on
        the line (the filter alone lags until each update arrives)."""
        slope = 2.0
        log = gappy_ramp_log(n=60, slope=slope, keep_every=10)
        smoother = OfflineKalmanSmoother(linear_model(dims=1, dt=1.0))
        result = smoother.smooth(log)
        truth = slope * np.arange(60)
        smoothed_err = np.abs(result.smoothed_measurements[:, 0] - truth)
        filtered_err = np.abs(result.filtered_measurements[:, 0] - truth)
        # Settled region: smoothing strictly improves on filtering.
        assert smoothed_err[20:].mean() < filtered_err[20:].mean()

    def test_smoother_at_least_as_good_on_noisy_constant(self):
        rng = np.random.default_rng(0)
        truth = 10.0
        log = [np.array([truth + rng.normal(0, 1.0)]) for _ in range(100)]
        smoother = OfflineKalmanSmoother(constant_model(dims=1, q=1e-3, r=1.0))
        result = smoother.smooth(log)
        smoothed_rmse = np.sqrt(
            np.mean((result.smoothed_measurements[:, 0] - truth) ** 2)
        )
        filtered_rmse = np.sqrt(
            np.mean((result.filtered_measurements[:, 0] - truth) ** 2)
        )
        assert smoothed_rmse <= filtered_rmse + 1e-9

    def test_last_instant_unchanged_by_smoothing(self):
        """RTS cannot improve the final estimate -- no future exists."""
        log = gappy_ramp_log(n=40)
        result = OfflineKalmanSmoother(linear_model(dims=1, dt=1.0)).smooth(log)
        assert np.allclose(
            result.smoothed_states[-1], result.filtered_states[-1]
        )

    def test_covariances_shrink_or_hold(self):
        """Smoothing never increases uncertainty."""
        log = gappy_ramp_log(n=40)
        model = linear_model(dims=1, dt=1.0)
        result = OfflineKalmanSmoother(model).smooth(log)
        # Compare traces: smoothed variance <= filtered prior variance.
        for k in range(40):
            assert (
                np.trace(result.smoothed_covariances[k])
                <= np.trace(np.eye(model.state_dim)) * 1e6
            )
            eigvals = np.linalg.eigvalsh(result.smoothed_covariances[k])
            assert eigvals.min() >= -1e-9

    def test_time_varying_model_supported(self):
        omega = 2 * np.pi / 20
        model = sinusoidal_model(omega=omega, theta=0.0)
        log = [np.array([50 * np.sin(omega * k)]) for k in range(60)]
        result = OfflineKalmanSmoother(model).smooth(log)
        assert result.smoothed_measurements.shape == (60, 1)

    def test_2d_shapes(self):
        model = linear_model(dims=2, dt=0.5)
        log = [np.array([float(k), float(-k)]) for k in range(20)]
        result = OfflineKalmanSmoother(model).smooth(log)
        assert result.smoothed_states.shape == (20, 4)
        assert result.smoothed_measurements.shape == (20, 2)

    def test_validation(self):
        smoother = OfflineKalmanSmoother(constant_model(dims=1))
        with pytest.raises(DimensionError):
            smoother.smooth([])
        with pytest.raises(DimensionError):
            smoother.smooth([None, np.array([1.0])])
