"""Unit tests for noise-parameter tuning and innovation diagnosis."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.filters.models import constant_model, linear_model
from repro.filters.tuning import innovation_diagnosis, tune_noise
from repro.streams.base import stream_from_values
from repro.streams.noise import add_gaussian_noise


def noisy_flat_stream(n=200, noise=2.0, seed=0):
    clean = stream_from_values(np.full(n, 50.0), name="flat")
    return add_gaussian_noise(clean, std=noise, seed=seed)


class TestTuneNoise:
    def test_prediction_objective_prefers_smoothing_on_noisy_static(self):
        """For a static signal in heavy noise, good tuning picks small Q
        relative to R (trust the state, distrust the sensor)."""
        stream = noisy_flat_stream()
        result = tune_noise(
            lambda q, r: constant_model(dims=1, q=q, r=r),
            stream,
            q_grid=[1e-4, 1e-2, 1.0],
            r_grid=[1e-4, 1e-2, 1.0],
        )
        assert result.q < result.r

    def test_updates_objective_counts_updates(self, ramp_stream):
        result = tune_noise(
            lambda q, r: linear_model(dims=1, dt=1.0, q=q, r=r),
            ramp_stream,
            q_grid=[1e-3, 1e-1],
            r_grid=[1e-3, 1e-1],
            objective="updates",
            delta=1.0,
        )
        assert result.objective == "updates"
        assert result.score >= 1  # at least the priming update

    def test_grid_fully_evaluated(self, ramp_stream):
        result = tune_noise(
            lambda q, r: constant_model(dims=1, q=q, r=r),
            ramp_stream,
            q_grid=[1e-2, 1e-1],
            r_grid=[1e-2, 1e-1, 1.0],
        )
        assert len(result.grid) == 6
        assert result.score == min(g[2] for g in result.grid)

    def test_validation(self, ramp_stream):
        builder = lambda q, r: constant_model(dims=1, q=q, r=r)  # noqa: E731
        with pytest.raises(ConfigurationError):
            tune_noise(builder, ramp_stream, objective="nonsense")
        with pytest.raises(ConfigurationError):
            tune_noise(builder, ramp_stream, objective="updates")  # no delta
        with pytest.raises(ConfigurationError):
            tune_noise(builder, ramp_stream.head(2))
        with pytest.raises(ConfigurationError):
            tune_noise(builder, ramp_stream, q_grid=[0.0], r_grid=[1.0])


class TestInnovationDiagnosis:
    def test_consistent_filter_diagnosed_consistent(self):
        """A filter whose R matches the true noise is consistent."""
        true_noise = 1.0
        stream = noisy_flat_stream(n=400, noise=true_noise)
        model = constant_model(dims=1, q=1e-6, r=true_noise**2)
        result = innovation_diagnosis(model, stream)
        assert result["verdict"] == "consistent"

    def test_overconfident_filter_detected(self):
        """R far smaller than the true noise inflates NIS."""
        stream = noisy_flat_stream(n=400, noise=3.0)
        model = constant_model(dims=1, q=1e-6, r=1e-3)
        result = innovation_diagnosis(model, stream)
        assert result["verdict"] == "overconfident"
        assert result["mean_nis"] > 3.0

    def test_underconfident_filter_detected(self):
        """R far larger than the true noise deflates NIS."""
        stream = noisy_flat_stream(n=400, noise=0.1)
        model = constant_model(dims=1, q=1e-6, r=100.0)
        result = innovation_diagnosis(model, stream)
        assert result["verdict"] == "underconfident"

    def test_short_stream_rejected(self):
        stream = noisy_flat_stream(n=5)
        with pytest.raises(ConfigurationError):
            innovation_diagnosis(constant_model(dims=1), stream, warmup=10)

    def test_diagnosis_guides_correction(self):
        """The documented repair loop: scale R by the NIS excess, and the
        re-diagnosed filter becomes consistent."""
        stream = noisy_flat_stream(n=400, noise=2.0)
        r0 = 0.05  # the paper's default -- overconfident for noise std 2
        first = innovation_diagnosis(
            constant_model(dims=1, q=1e-6, r=r0), stream
        )
        assert first["verdict"] == "overconfident"
        corrected_r = r0 * first["mean_nis"] / first["expected"]
        second = innovation_diagnosis(
            constant_model(dims=1, q=1e-6, r=corrected_r), stream
        )
        assert second["verdict"] == "consistent"
