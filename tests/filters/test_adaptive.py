"""Unit tests for innovation-based adaptive noise estimation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.filters.adaptive import AdaptiveNoiseKalmanFilter


def make_filter(q0=0.5, r0=0.5, **kwargs):
    return AdaptiveNoiseKalmanFilter(
        phi=np.eye(1),
        h=np.eye(1),
        q0=np.array([[q0]]),
        r0=np.array([[r0]]),
        x0=np.zeros(1),
        p0=np.eye(1),
        **kwargs,
    )


class TestAdaptation:
    def test_r_estimate_moves_toward_truth(self):
        """Feeding a constant-state signal with known measurement noise,
        the adapted R should approach the true variance."""
        true_r = 4.0
        rng = np.random.default_rng(0)
        akf = make_filter(q0=1e-4, r0=0.5, window=50, adapt_q=False)
        for _ in range(800):
            z = np.array([10.0 + rng.normal(0, np.sqrt(true_r))])
            akf.step(z)
        assert 0.25 * true_r < akf.r[0, 0] < 4.0 * true_r
        # And it is much closer to truth than the initial guess was.
        assert abs(akf.r[0, 0] - true_r) < abs(0.5 - true_r)

    def test_q_adaptation_reacts_to_process_drift(self):
        """A drifting state inflates innovations; adapted Q must grow
        above its initial underestimate."""
        rng = np.random.default_rng(1)
        akf = make_filter(q0=1e-6, r0=0.01, window=30, adapt_r=False)
        x_true = 0.0
        for _ in range(400):
            x_true += rng.normal(0, 1.0)  # large process noise
            akf.step(np.array([x_true + rng.normal(0, 0.1)]))
        assert akf.q[0, 0] > 1e-4

    def test_estimates_stay_psd(self):
        rng = np.random.default_rng(2)
        akf = make_filter(window=10)
        for _ in range(200):
            akf.step(rng.normal(size=1) * 10)
        assert np.linalg.eigvalsh(akf.q).min() > 0
        assert np.linalg.eigvalsh(akf.r).min() > 0

    def test_tracking_beats_fixed_misspecified_filter(self):
        """On a random-walk signal with badly underestimated Q, the
        adaptive filter tracks better than the frozen one."""
        from repro.filters.kalman import KalmanFilter

        rng = np.random.default_rng(3)
        walk = np.cumsum(rng.normal(0, 2.0, size=600))
        noisy = walk + rng.normal(0, 0.5, size=600)

        frozen = KalmanFilter(
            np.eye(1), np.eye(1), np.eye(1) * 1e-6, np.eye(1) * 0.25,
            x0=np.array([noisy[0]]),
        )
        # Adapt Q only: with both enabled the mismatch energy is split
        # between Q and R, and inflating R fights the tracking gain.
        adaptive = make_filter(q0=1e-6, r0=0.25, window=30, adapt_r=False)
        adaptive.filter.set_state(np.array([noisy[0]]))

        err_frozen, err_adaptive = 0.0, 0.0
        for truth, z in zip(walk[1:], noisy[1:]):
            frozen.predict()
            frozen.update(np.array([z]))
            adaptive.step(np.array([z]))
            err_frozen += abs(frozen.x[0] - truth)
            err_adaptive += abs(adaptive.x[0] - truth)
        assert err_adaptive < err_frozen


class TestInterface:
    def test_step_coasting(self):
        akf = make_filter()
        record = akf.step()
        assert not record.updated
        assert akf.k == 1

    def test_predict_and_update_passthrough(self):
        akf = make_filter()
        akf.predict()
        akf.update(np.array([1.0]))
        assert akf.k == 1
        assert akf.x.shape == (1,)
        assert akf.p.shape == (1, 1)

    def test_no_adaptation_before_window_fills(self):
        akf = make_filter(window=50)
        r_before = akf.r.copy()
        for _ in range(10):
            akf.step(np.array([5.0]))
        assert np.array_equal(akf.r, r_before)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_filter(window=1)
        with pytest.raises(ConfigurationError):
            make_filter(forgetting=0.0)
        with pytest.raises(ConfigurationError):
            make_filter(forgetting=1.5)
