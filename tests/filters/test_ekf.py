"""Unit tests for the extended Kalman filter."""

import math

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.filters.ekf import (
    ExtendedKalmanFilter,
    NonlinearModel,
    coordinated_turn_model,
)
from repro.filters.kalman import KalmanFilter


def linear_as_nonlinear(dt=1.0, q=0.05, r=0.05):
    """A linear constant-velocity system expressed through the EKF API."""
    phi = np.array([[1.0, dt], [0.0, 1.0]])
    h = np.array([[1.0, 0.0]])
    return NonlinearModel(
        name="linear-as-ekf",
        f=lambda x, k: phi @ x,
        h=lambda x, k: h @ x,
        q=np.eye(2) * q,
        r=np.eye(1) * r,
        state_dim=2,
        measurement_dim=1,
        f_jacobian=lambda x, k: phi,
        h_jacobian=lambda x, k: h,
    )


class TestLinearEquivalence:
    def test_ekf_matches_kf_on_linear_system(self):
        """On a linear system the EKF must coincide with the standard KF."""
        model = linear_as_nonlinear()
        ekf = ExtendedKalmanFilter(model, x0=np.array([0.0, 1.0]))
        kf = KalmanFilter(
            phi=np.array([[1.0, 1.0], [0.0, 1.0]]),
            h=np.array([[1.0, 0.0]]),
            q=np.eye(2) * 0.05,
            r=np.eye(1) * 0.05,
            x0=np.array([0.0, 1.0]),
        )
        rng = np.random.default_rng(1)
        for _ in range(50):
            z = rng.normal(size=1)
            ekf.predict()
            kf.predict()
            ekf.update(z)
            kf.update(z)
            assert np.allclose(ekf.x, kf.x, atol=1e-10)
            assert np.allclose(ekf.p, kf.p, atol=1e-10)

    def test_numerical_jacobian_fallback_matches_analytic(self):
        analytic = linear_as_nonlinear()
        numeric = NonlinearModel(
            name="numeric",
            f=analytic.f,
            h=analytic.h,
            q=analytic.q,
            r=analytic.r,
            state_dim=2,
            measurement_dim=1,
        )
        a = ExtendedKalmanFilter(analytic, x0=np.array([0.0, 1.0]))
        b = ExtendedKalmanFilter(numeric, x0=np.array([0.0, 1.0]))
        for z in ([0.9], [2.1], [3.2]):
            a.predict()
            b.predict()
            a.update(np.array(z))
            b.update(np.array(z))
        assert np.allclose(a.x, b.x, atol=1e-5)


class TestCoordinatedTurn:
    def test_tracks_circular_motion(self):
        """The EKF should track a platform moving on a circle -- the
        non-linear case the paper's footnote describes."""
        dt = 0.5
        model = coordinated_turn_model(dt=dt, q=1e-4, r=0.01)
        speed, turn_rate = 2.0, 0.1
        x_true = np.array([10.0, 0.0, speed, math.pi / 2, turn_rate])
        ekf = ExtendedKalmanFilter(
            model,
            x0=np.array([10.0, 0.0, 1.0, math.pi / 2, 0.0]),
            p0=np.eye(5),
        )
        rng = np.random.default_rng(3)
        errors = []
        for _ in range(200):
            x_true = model.f(x_true, 0)
            z = model.h(x_true, 0) + rng.normal(0, 0.1, size=2)
            ekf.predict()
            ekf.update(z)
            errors.append(np.linalg.norm(ekf.x[:2] - x_true[:2]))
        # Converged tracking: late errors well inside the noise floor x3.
        assert np.mean(errors[-50:]) < 0.5

    def test_estimates_turn_rate(self):
        dt = 0.5
        model = coordinated_turn_model(dt=dt, q=1e-4, r=0.01)
        turn_rate = 0.2
        x_true = np.array([0.0, 0.0, 3.0, 0.0, turn_rate])
        ekf = ExtendedKalmanFilter(
            model, x0=np.array([0.0, 0.0, 3.0, 0.0, 0.0]), p0=np.eye(5)
        )
        for _ in range(300):
            x_true = model.f(x_true, 0)
            ekf.predict()
            ekf.update(model.h(x_true, 0))
        assert abs(ekf.x[4] - turn_rate) < 0.02

    def test_jacobian_consistency(self):
        """Analytic Jacobians must match finite differences."""
        from repro.filters.ekf import _numerical_jacobian

        model = coordinated_turn_model(dt=0.7)
        x = np.array([1.0, 2.0, 3.0, 0.4, 0.05])
        assert np.allclose(
            model.f_jacobian(x, 0),
            _numerical_jacobian(model.f, x, 0, 5),
            atol=1e-4,
        )
        assert np.allclose(
            model.h_jacobian(x, 0),
            _numerical_jacobian(model.h, x, 0, 2),
            atol=1e-6,
        )


class TestInterface:
    def test_rejects_wrong_x0(self):
        with pytest.raises(DimensionError):
            ExtendedKalmanFilter(coordinated_turn_model(), x0=np.zeros(3))

    def test_rejects_wrong_measurement(self):
        ekf = ExtendedKalmanFilter(coordinated_turn_model(), x0=np.zeros(5))
        ekf.predict()
        with pytest.raises(DimensionError):
            ekf.update(np.zeros(3))

    def test_step_api(self):
        ekf = ExtendedKalmanFilter(coordinated_turn_model(), x0=np.zeros(5))
        record = ekf.step(np.array([0.1, 0.2]))
        assert record.updated
        assert record.k == 0

    def test_forecast_shape_and_purity(self):
        ekf = ExtendedKalmanFilter(
            coordinated_turn_model(), x0=np.array([0.0, 0.0, 1.0, 0.0, 0.0])
        )
        forecast = ekf.forecast(5)
        assert forecast.shape == (5, 2)
        assert ekf.k == 0

    def test_copy_and_digest(self):
        ekf = ExtendedKalmanFilter(coordinated_turn_model(), x0=np.zeros(5))
        clone = ekf.copy()
        ekf.predict()
        assert clone.k == 0
        assert clone.state_digest() != ekf.state_digest()
