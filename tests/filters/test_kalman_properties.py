"""Property-based tests (hypothesis) on the Kalman filter core."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.kalman import KalmanFilter
from repro.filters.least_squares import RecursiveLeastSquares

finite_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)
small_positive = st.floats(min_value=1e-3, max_value=10.0)


def scalar_filter(q, r, x0=0.0, p0=1.0):
    return KalmanFilter(
        phi=np.eye(1),
        h=np.eye(1),
        q=np.array([[q]]),
        r=np.array([[r]]),
        x0=np.array([x0]),
        p0=np.array([[p0]]),
    )


@settings(max_examples=40, deadline=None)
@given(
    measurements=st.lists(finite_floats, min_size=1, max_size=40),
    q=small_positive,
    r=small_positive,
)
def test_covariance_stays_symmetric_psd(measurements, q, r):
    """P_k remains a valid covariance under any measurement sequence."""
    kf = scalar_filter(q, r)
    for z in measurements:
        kf.predict()
        kf.update(np.array([z]))
        p = kf.p
        assert np.allclose(p, p.T)
        assert np.linalg.eigvalsh(p).min() >= -1e-10


@settings(max_examples=40, deadline=None)
@given(
    measurements=st.lists(finite_floats, min_size=2, max_size=40),
    q=small_positive,
    r=small_positive,
)
def test_estimate_stays_within_measurement_hull(measurements, q, r):
    """For a scalar constant model started at the first measurement, the
    estimate is always a convex combination of observed data."""
    kf = scalar_filter(q, r, x0=measurements[0])
    lo, hi = measurements[0], measurements[0]
    for z in measurements[1:]:
        lo, hi = min(lo, z), max(hi, z)
        kf.predict()
        kf.update(np.array([z]))
        assert lo - 1e-9 <= kf.x[0] <= hi + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    value=finite_floats,
    q=small_positive,
    r=small_positive,
    n=st.integers(min_value=5, max_value=50),
)
def test_constant_signal_converges_to_truth(value, q, r, n):
    """Feeding a constant value drives the estimate to that value."""
    kf = scalar_filter(q, r, x0=value + 10.0)
    for _ in range(n):
        kf.predict()
        kf.update(np.array([value]))
    # Steady-state gain is at least q-dependent; after predict+update the
    # estimate error shrinks geometrically.
    final_error = abs(kf.x[0] - value)
    assert final_error < 10.0  # strictly closer than the initial offset
    # And a long run shrinks the initial 10-unit offset by >= 99%: the
    # worst-case steady gain over the strategy's (q, r) range is ~0.01, so
    # 500 further cycles guarantee (1 - K)^500 < 0.01.
    for _ in range(500):
        kf.predict()
        kf.update(np.array([value]))
    assert abs(kf.x[0] - value) < 0.1


@settings(max_examples=30, deadline=None)
@given(
    measurements=st.lists(finite_floats, min_size=1, max_size=30),
    r=small_positive,
)
def test_zero_process_noise_kf_matches_rls(measurements, r):
    """With Q = 0 the scalar KF is exactly recursive least squares.

    This is the paper's Section 3.2 claim that least squares is a special
    case of Kalman filtering (case 4).
    """
    p0 = 1e6
    kf = scalar_filter(q=0.0, r=r, x0=0.0, p0=p0)
    rls = RecursiveLeastSquares(dim=1, p0_scale=p0 / r)
    for z in measurements:
        kf.predict()
        kf.update(np.array([z]))
        rls.update(np.array([1.0]), z)
        assert np.isclose(kf.x[0], rls.theta[0], rtol=1e-6, atol=1e-6)


@settings(max_examples=25, deadline=None)
@given(
    measurements=st.lists(finite_floats, min_size=1, max_size=25),
    q=small_positive,
    r=small_positive,
)
def test_determinism(measurements, q, r):
    """Identical inputs produce bit-identical state -- the mirror property."""
    a = scalar_filter(q, r)
    b = scalar_filter(q, r)
    for z in measurements:
        a.predict()
        a.update(np.array([z]))
        b.predict()
        b.update(np.array([z]))
    assert a.state_digest() == b.state_digest()


@settings(max_examples=25, deadline=None)
@given(
    q=small_positive,
    r=small_positive,
    n=st.integers(min_value=1, max_value=30),
)
def test_coasting_variance_grows_monotonically(q, r, n):
    """Without measurements, uncertainty can only grow."""
    kf = scalar_filter(q, r)
    last = kf.p[0, 0]
    for _ in range(n):
        kf.predict()
        current = kf.p[0, 0]
        assert current >= last
        last = current
