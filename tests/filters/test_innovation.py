"""Unit tests for innovation monitoring and adaptive sampling control."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.filters.innovation import AdaptiveSamplingController, InnovationMonitor


class TestInnovationMonitor:
    def test_empty_stats(self):
        monitor = InnovationMonitor()
        stats = monitor.stats()
        assert stats.count == 0
        assert np.isnan(stats.mean_nis)

    def test_records_and_counts(self):
        monitor = InnovationMonitor(window=10)
        s = np.eye(1)
        for v in (0.1, -0.2, 0.3):
            monitor.record(np.array([v]), s)
        assert monitor.total_observed == 3
        assert monitor.stats().count == 3

    def test_window_rolls(self):
        monitor = InnovationMonitor(window=5)
        s = np.eye(1)
        for i in range(20):
            monitor.record(np.array([float(i)]), s)
        assert monitor.stats().count == 5
        assert monitor.total_observed == 20

    def test_outlier_flagging(self):
        monitor = InnovationMonitor(window=10, outlier_nis=9.0)
        s = np.eye(1)
        assert not monitor.record(np.array([1.0]), s)  # NIS = 1
        assert monitor.record(np.array([4.0]), s)  # NIS = 16
        assert monitor.outlier_count == 1

    def test_nis_uses_covariance(self):
        monitor = InnovationMonitor(outlier_nis=9.0)
        # Same innovation, large covariance -> small NIS -> not an outlier.
        assert not monitor.record(np.array([4.0]), np.eye(1) * 100.0)

    def test_mean_nis_near_dimension_for_matched_noise(self):
        """For N(0, S) innovations, E[NIS] equals the dimension m."""
        rng = np.random.default_rng(0)
        monitor = InnovationMonitor(window=500, outlier_nis=1e9)
        s = np.diag([2.0, 0.5])
        chol = np.linalg.cholesky(s)
        for _ in range(500):
            monitor.record(chol @ rng.normal(size=2), s)
        assert abs(monitor.stats().mean_nis - 2.0) < 0.3

    def test_whiteness_autocorrelation_small_for_iid(self):
        rng = np.random.default_rng(1)
        monitor = InnovationMonitor(window=400)
        for _ in range(400):
            monitor.record(rng.normal(size=1), np.eye(1))
        assert abs(monitor.stats().autocorr_lag1) < 0.15

    def test_health_band(self):
        monitor = InnovationMonitor(window=10)
        assert monitor.is_healthy()  # vacuous before data
        for _ in range(10):
            monitor.record(np.array([1.0]), np.eye(1))  # NIS = 1 = m
        assert monitor.is_healthy()
        monitor2 = InnovationMonitor(window=10)
        for _ in range(10):
            monitor2.record(np.array([10.0]), np.eye(1))  # NIS = 100
        assert not monitor2.is_healthy()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InnovationMonitor(window=1)
        with pytest.raises(ConfigurationError):
            InnovationMonitor(outlier_nis=0.0)


class TestAdaptiveSamplingController:
    def test_starts_at_min_interval(self):
        controller = AdaptiveSamplingController(delta=1.0, min_interval=2)
        assert controller.interval == 2

    def test_quiet_stream_stretches(self):
        controller = AdaptiveSamplingController(delta=10.0, max_interval=32)
        for _ in range(20):
            controller.observe(0.1)  # far inside delta
        assert controller.interval == 32

    def test_busy_stream_shrinks(self):
        controller = AdaptiveSamplingController(delta=10.0, max_interval=32)
        for _ in range(20):
            controller.observe(0.1)
        controller.observe(20.0)  # prediction blown
        assert controller.interval < 32
        for _ in range(5):
            controller.observe(20.0)
        assert controller.interval == 1

    def test_middle_band_holds_steady(self):
        controller = AdaptiveSamplingController(
            delta=10.0, quiet_fraction=0.25, busy_fraction=0.75
        )
        before = controller.interval
        controller.observe(5.0)  # ratio 0.5: between the thresholds
        assert controller.interval == before

    def test_interval_respects_bounds(self):
        controller = AdaptiveSamplingController(
            delta=1.0, min_interval=2, max_interval=8
        )
        for _ in range(50):
            controller.observe(0.0)
        assert controller.interval == 8
        for _ in range(50):
            controller.observe(100.0)
        assert controller.interval == 2

    def test_reset(self):
        controller = AdaptiveSamplingController(delta=1.0, max_interval=16)
        for _ in range(20):
            controller.observe(0.0)
        controller.reset()
        assert controller.interval == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveSamplingController(delta=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveSamplingController(delta=1.0, min_interval=0)
        with pytest.raises(ConfigurationError):
            AdaptiveSamplingController(delta=1.0, min_interval=5, max_interval=2)
        with pytest.raises(ConfigurationError):
            AdaptiveSamplingController(
                delta=1.0, quiet_fraction=0.8, busy_fraction=0.5
            )
