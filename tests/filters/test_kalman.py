"""Unit tests for the discrete Kalman filter core."""

import numpy as np
import pytest

from repro.errors import DimensionError, DivergenceError, NotPositiveDefiniteError
from repro.filters.kalman import KalmanFilter, check_covariance, resolve_matrix


def scalar_filter(q=0.05, r=0.05, x0=0.0, p0=1.0):
    return KalmanFilter(
        phi=np.eye(1),
        h=np.eye(1),
        q=np.array([[q]]),
        r=np.array([[r]]),
        x0=np.array([x0]),
        p0=np.array([[p0]]),
    )


class TestConstruction:
    def test_dimensions_recorded(self):
        kf = KalmanFilter(
            phi=np.eye(4),
            h=np.zeros((2, 4)),
            q=np.eye(4),
            r=np.eye(2),
            x0=np.zeros(4),
        )
        assert kf.state_dim == 4
        assert kf.measurement_dim == 2
        assert kf.k == 0

    def test_default_p0_is_identity(self):
        kf = KalmanFilter(np.eye(2), np.eye(2), np.eye(2), np.eye(2), np.zeros(2))
        assert np.array_equal(kf.p, np.eye(2))

    def test_rejects_non_square_phi(self):
        with pytest.raises(DimensionError):
            KalmanFilter(np.zeros((2, 3)), np.eye(2), np.eye(2), np.eye(2), np.zeros(2))

    def test_rejects_wrong_x0(self):
        with pytest.raises(DimensionError):
            KalmanFilter(np.eye(2), np.eye(2), np.eye(2), np.eye(2), np.zeros(3))

    def test_rejects_wrong_h_columns(self):
        with pytest.raises(DimensionError):
            KalmanFilter(np.eye(2), np.eye(3), np.eye(2), np.eye(3), np.zeros(2))

    def test_rejects_wrong_q_shape(self):
        with pytest.raises(DimensionError):
            KalmanFilter(np.eye(2), np.eye(2), np.eye(3), np.eye(2), np.zeros(2))

    def test_rejects_wrong_r_shape(self):
        with pytest.raises(DimensionError):
            KalmanFilter(np.eye(2), np.eye(2), np.eye(2), np.eye(3), np.zeros(2))

    def test_rejects_indefinite_p0(self):
        with pytest.raises(NotPositiveDefiniteError):
            KalmanFilter(
                np.eye(2),
                np.eye(2),
                np.eye(2),
                np.eye(2),
                np.zeros(2),
                p0=np.array([[1.0, 0.0], [0.0, -1.0]]),
            )


class TestResolveMatrix:
    def test_constant_passthrough(self):
        m = np.eye(2)
        assert np.array_equal(resolve_matrix(m, 5), m)

    def test_callable_evaluated_at_k(self):
        result = resolve_matrix(lambda k: np.eye(2) * k, 3)
        assert np.array_equal(result, np.eye(2) * 3)

    def test_result_is_float(self):
        assert resolve_matrix(np.eye(2, dtype=int), 0).dtype == float


class TestCheckCovariance:
    def test_symmetrises(self):
        p = np.array([[1.0, 0.1], [0.0, 1.0]])
        sym = check_covariance(p)
        assert np.allclose(sym, sym.T)

    def test_rejects_negative_eigenvalue(self):
        with pytest.raises(NotPositiveDefiniteError):
            check_covariance(np.array([[1.0, 0.0], [0.0, -0.5]]))

    def test_rejects_non_square(self):
        with pytest.raises(DimensionError):
            check_covariance(np.zeros((2, 3)))

    def test_accepts_psd_boundary(self):
        check_covariance(np.zeros((3, 3)))  # PSD with zero eigenvalues.


class TestPredict:
    def test_state_propagates_through_phi(self):
        kf = KalmanFilter(
            phi=np.array([[1.0, 1.0], [0.0, 1.0]]),
            h=np.array([[1.0, 0.0]]),
            q=np.zeros((2, 2)),
            r=np.eye(1),
            x0=np.array([0.0, 2.0]),
        )
        kf.predict()
        assert np.allclose(kf.x, [2.0, 2.0])
        kf.predict()
        assert np.allclose(kf.x, [4.0, 2.0])

    def test_covariance_grows_by_q(self):
        kf = scalar_filter(q=0.5, p0=1.0)
        kf.predict()
        assert np.isclose(kf.p[0, 0], 1.5)

    def test_clock_advances(self):
        kf = scalar_filter()
        kf.predict()
        kf.predict()
        assert kf.k == 2

    def test_coasting_posterior_equals_prior(self):
        kf = scalar_filter()
        kf.predict()
        assert np.array_equal(kf.x, kf.x_prior)
        assert np.array_equal(kf.p, kf.p_prior)


class TestUpdate:
    def test_hand_computed_scalar_cycle(self):
        # One predict/correct cycle, checked against the closed-form
        # equations (Eq. 8, 11, 12) computed by hand.
        kf = scalar_filter(q=0.1, r=0.2, x0=1.0, p0=0.5)
        kf.predict()  # x- = 1.0, P- = 0.6
        z = 2.0
        k_gain = 0.6 / (0.6 + 0.2)  # = 0.75
        expected_x = 1.0 + k_gain * (z - 1.0)  # = 1.75
        expected_p = (1 - k_gain) * 0.6  # = 0.15
        kf.update(np.array([z]))
        assert np.isclose(kf.x[0], expected_x)
        assert np.isclose(kf.p[0, 0], expected_p)

    def test_update_moves_toward_measurement(self):
        kf = scalar_filter(x0=0.0)
        kf.predict()
        kf.update(np.array([10.0]))
        assert 0.0 < kf.x[0] < 10.0

    def test_small_r_trusts_measurement(self):
        kf = scalar_filter(r=1e-12, x0=0.0)
        kf.predict()
        kf.update(np.array([10.0]))
        assert np.isclose(kf.x[0], 10.0, atol=1e-6)

    def test_large_r_ignores_measurement(self):
        kf = scalar_filter(r=1e12, x0=0.0, p0=1.0)
        kf.predict()
        kf.update(np.array([10.0]))
        assert abs(kf.x[0]) < 1e-6

    def test_rejects_wrong_measurement_shape(self):
        kf = scalar_filter()
        kf.predict()
        with pytest.raises(DimensionError):
            kf.update(np.array([1.0, 2.0]))

    def test_rejects_nan_measurement(self):
        kf = scalar_filter()
        kf.predict()
        with pytest.raises(DivergenceError):
            kf.update(np.array([np.nan]))

    def test_joseph_form_keeps_covariance_symmetric(self):
        rng = np.random.default_rng(0)
        kf = KalmanFilter(
            phi=np.array([[1.0, 0.1], [0.0, 1.0]]),
            h=np.array([[1.0, 0.0]]),
            q=np.eye(2) * 0.05,
            r=np.eye(1) * 0.05,
            x0=np.zeros(2),
        )
        for _ in range(200):
            kf.predict()
            kf.update(rng.normal(size=1))
        assert np.allclose(kf.p, kf.p.T)
        assert np.linalg.eigvalsh(kf.p).min() >= -1e-12


class TestStep:
    def test_step_without_measurement_coasts(self):
        kf = scalar_filter(x0=5.0)
        record = kf.step()
        assert not record.updated
        assert record.innovation is None
        assert np.isclose(record.z_pred[0], 5.0)

    def test_step_with_measurement_updates(self):
        kf = scalar_filter(x0=0.0)
        record = kf.step(np.array([1.0]))
        assert record.updated
        assert np.isclose(record.innovation[0], 1.0)
        assert record.gain is not None

    def test_step_records_time_index(self):
        kf = scalar_filter()
        assert kf.step().k == 0
        assert kf.step().k == 1

    def test_step_equivalent_to_predict_update(self):
        kf1 = scalar_filter(x0=1.0)
        kf2 = scalar_filter(x0=1.0)
        kf1.step(np.array([3.0]))
        kf2.predict()
        kf2.update(np.array([3.0]))
        assert np.allclose(kf1.x, kf2.x)
        assert np.allclose(kf1.p, kf2.p)


class TestForecast:
    def test_linear_extrapolation(self):
        kf = KalmanFilter(
            phi=np.array([[1.0, 1.0], [0.0, 1.0]]),
            h=np.array([[1.0, 0.0]]),
            q=np.zeros((2, 2)),
            r=np.eye(1),
            x0=np.array([0.0, 3.0]),
        )
        forecast = kf.forecast(4)
        assert np.allclose(forecast[:, 0], [3.0, 6.0, 9.0, 12.0])

    def test_forecast_does_not_mutate(self):
        kf = scalar_filter(x0=7.0)
        x_before = kf.x
        kf.forecast(10)
        assert np.array_equal(kf.x, x_before)
        assert kf.k == 0

    def test_zero_steps(self):
        assert scalar_filter().forecast(0).shape == (0, 1)

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            scalar_filter().forecast(-1)


class TestTimeVarying:
    def test_callable_phi_uses_clock(self):
        seen = []

        def phi(k):
            seen.append(k)
            return np.eye(1)

        kf = KalmanFilter(phi, np.eye(1), np.eye(1) * 0.1, np.eye(1), np.zeros(1))
        kf.predict()
        kf.predict()
        assert 0 in seen and 1 in seen


class TestTimeVaryingForecast:
    def test_forecast_uses_future_time_indices(self):
        """A time-varying phi must be evaluated at the *future* indices
        during forecasting, not frozen at the current clock."""
        seen = []

        def phi(k):
            seen.append(k)
            return np.eye(1)

        kf = KalmanFilter(phi, np.eye(1), np.eye(1) * 0.1, np.eye(1), np.zeros(1))
        kf.predict()  # consumes phi(0); clock now 1
        seen.clear()
        kf.forecast(3)
        assert seen == [1, 2, 3]

    def test_sinusoidal_forecast_oscillates(self):
        """Forecasting through the Example 2 model produces a curved,
        non-monotone trajectory -- impossible with a cached value."""
        import math

        from repro.filters.models import sinusoidal_model

        omega = 2 * math.pi / 24
        model = sinusoidal_model(omega=omega, theta=0.0)
        kf = model.build_filter(np.array([100.0]))
        kf.set_state(np.array([100.0, 50.0 * omega]))
        forecast = kf.forecast(48)[:, 0]
        diffs = np.diff(forecast)
        assert (diffs > 0).any() and (diffs < 0).any()


class TestCopyAndDigest:
    def test_copy_is_independent(self):
        kf = scalar_filter(x0=1.0)
        clone = kf.copy()
        kf.predict()
        kf.update(np.array([5.0]))
        assert np.isclose(clone.x[0], 1.0)
        assert clone.k == 0

    def test_digest_matches_for_identical_histories(self):
        a, b = scalar_filter(x0=1.0), scalar_filter(x0=1.0)
        for z in (1.5, 2.5, 0.5):
            a.predict()
            a.update(np.array([z]))
            b.predict()
            b.update(np.array([z]))
        assert a.state_digest() == b.state_digest()

    def test_digest_differs_after_divergent_input(self):
        a, b = scalar_filter(x0=1.0), scalar_filter(x0=1.0)
        a.predict()
        a.update(np.array([2.0]))
        b.predict()
        b.update(np.array([3.0]))
        assert a.state_digest() != b.state_digest()


class TestDivergenceDetection:
    def test_unstable_system_raises(self):
        kf = KalmanFilter(
            phi=np.array([[1e200]]),
            h=np.eye(1),
            q=np.eye(1),
            r=np.eye(1),
            x0=np.array([1.0]),
        )
        with pytest.raises(DivergenceError):
            kf.predict()
            kf.predict()


class TestInnovationCovariance:
    def test_formula(self):
        kf = scalar_filter(q=0.1, r=0.2, p0=0.5)
        kf.predict()
        # S = H P H^T + R = 0.6 + 0.2
        assert np.isclose(kf.innovation_covariance()[0, 0], 0.8)


class TestSetState:
    def test_overwrites_state(self):
        kf = scalar_filter()
        kf.set_state(np.array([9.0]), np.array([[2.0]]))
        assert kf.x[0] == 9.0
        assert kf.p[0, 0] == 2.0

    def test_keeps_covariance_when_omitted(self):
        kf = scalar_filter(p0=3.0)
        kf.set_state(np.array([1.0]))
        assert kf.p[0, 0] == 3.0

    def test_rejects_bad_shape(self):
        with pytest.raises(DimensionError):
            scalar_filter().set_state(np.array([1.0, 2.0]))


class TestNonFiniteMeasurements:
    def test_nan_measurement_raises_typed_error(self):
        from repro.errors import NonFiniteMeasurementError

        kf = scalar_filter()
        kf.predict()
        with pytest.raises(NonFiniteMeasurementError):
            kf.update(np.array([np.nan]))

    def test_inf_measurement_raises_typed_error(self):
        from repro.errors import NonFiniteMeasurementError

        kf = scalar_filter()
        kf.predict()
        with pytest.raises(NonFiniteMeasurementError):
            kf.update(np.array([np.inf]))

    def test_rejected_measurement_leaves_state_untouched(self):
        from repro.errors import NonFiniteMeasurementError

        kf = scalar_filter()
        kf.predict()
        kf.update(np.array([1.0]))
        kf.predict()
        x_before = kf.x.copy()
        p_before = kf.p.copy()
        k_before = kf.k
        with pytest.raises(NonFiniteMeasurementError):
            kf.update(np.array([np.nan]))
        assert np.array_equal(kf.x, x_before)
        assert np.array_equal(kf.p, p_before)
        assert kf.k == k_before
        # The filter keeps working after the reject.
        kf.update(np.array([1.1]))
        assert np.all(np.isfinite(kf.x))

    def test_nonfinite_is_a_divergence_error(self):
        # Callers catching the broad divergence family keep working.
        from repro.errors import NonFiniteMeasurementError

        assert issubclass(NonFiniteMeasurementError, DivergenceError)
