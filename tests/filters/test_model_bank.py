"""Unit tests for online model selection over a filter bank."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, DimensionError
from repro.filters.model_bank import ModelBank
from repro.filters.models import (
    acceleration_model,
    constant_model,
    linear_model,
    sinusoidal_model,
)


def bank_2d(forgetting=0.98):
    return ModelBank(
        [
            constant_model(dims=2),
            linear_model(dims=2, dt=0.1),
        ],
        forgetting=forgetting,
    )


class TestConstruction:
    def test_requires_models(self):
        with pytest.raises(ConfigurationError):
            ModelBank([])

    def test_requires_shared_measurement_dim(self):
        with pytest.raises(DimensionError):
            ModelBank([constant_model(dims=1), constant_model(dims=2)])

    def test_requires_unique_names(self):
        with pytest.raises(ConfigurationError):
            ModelBank([constant_model(dims=2), constant_model(dims=2)])

    def test_forgetting_validated(self):
        with pytest.raises(ConfigurationError):
            ModelBank([constant_model(dims=2)], forgetting=0.0)

    def test_unprimed_operations_raise(self):
        bank = bank_2d()
        with pytest.raises(ConfigurationError):
            bank.step(np.zeros(2))
        with pytest.raises(ConfigurationError):
            bank.best_filter()
        with pytest.raises(ConfigurationError):
            bank.predict_measurement()


class TestSelection:
    def test_linear_wins_on_ramp(self):
        bank = bank_2d()
        bank.prime(np.zeros(2))
        for k in range(1, 200):
            bank.step(np.array([k * 1.0, k * 2.0]))
        assert "linear" in bank.best().name

    def test_constant_wins_on_static_signal(self):
        rng = np.random.default_rng(0)
        bank = bank_2d()
        bank.prime(np.array([5.0, 5.0]))
        for _ in range(200):
            bank.step(np.array([5.0, 5.0]) + rng.normal(0, 0.05, 2))
        assert "constant" in bank.best().name

    def test_sinusoidal_wins_on_sinusoid(self):
        omega = 2 * math.pi / 30
        bank = ModelBank(
            [
                linear_model(dims=1, dt=1.0),
                sinusoidal_model(omega=omega, theta=0.0),
            ]
        )
        bank.prime(np.array([0.0]))
        for k in range(1, 300):
            bank.step(np.array([50.0 * math.sin(omega * k)]))
        assert "sinusoidal" in bank.best().name

    def test_forgetting_allows_regime_switch(self):
        """After a long static phase followed by a ramp, a forgetting bank
        re-selects the linear model."""
        bank = bank_2d(forgetting=0.9)
        bank.prime(np.zeros(2))
        for _ in range(150):
            bank.step(np.zeros(2))
        assert "constant" in bank.best().name
        for k in range(1, 150):
            bank.step(np.array([5.0 * k, 5.0 * k]))
        assert "linear" in bank.best().name


class TestPosteriors:
    def test_posteriors_sum_to_one(self):
        bank = bank_2d()
        bank.prime(np.zeros(2))
        for k in range(50):
            bank.step(np.array([float(k), float(k)]))
        total = sum(p.probability for p in bank.posteriors())
        assert np.isclose(total, 1.0)

    def test_posterior_order_matches_models(self):
        bank = bank_2d()
        bank.prime(np.zeros(2))
        names = [p.name for p in bank.posteriors()]
        assert names == ["constant[2d]", "linear[2d,dt=0.1]"]

    def test_mixture_prediction_between_candidates(self):
        bank = bank_2d()
        bank.prime(np.array([0.0, 0.0]))
        for k in range(1, 100):
            bank.step(np.array([k * 1.0, 0.0]))
        mixture = bank.predict_measurement()
        # Linear dominates; its one-step prediction leads the constant one.
        assert mixture[0] > 90.0


class TestLockstep:
    def test_coasting_advances_all_filters(self):
        bank = bank_2d()
        bank.prime(np.zeros(2))
        bank.step(None)
        bank.step(None)
        assert bank.k == 2

    def test_copy_is_deterministic_mirror(self):
        bank = bank_2d()
        bank.prime(np.zeros(2))
        for k in range(20):
            bank.step(np.array([float(k), float(k)]))
        clone = bank.copy()
        bank.step(np.array([99.0, 99.0]))
        clone.step(np.array([99.0, 99.0]))
        assert np.allclose(
            bank.predict_measurement(), clone.predict_measurement()
        )

    def test_reprime_resets_scores(self):
        bank = bank_2d()
        bank.prime(np.zeros(2))
        for k in range(50):
            bank.step(np.array([float(k), float(k)]))
        bank.prime(np.zeros(2))
        probs = [p.probability for p in bank.posteriors()]
        assert np.isclose(probs[0], probs[1])
