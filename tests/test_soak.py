"""Soak test: every feature enabled at once, over a long multi-source run.

One engine drives five heterogeneous sources with per-attribute
precisions, smoothing, lossy and delayed links, query churn
(submit/retire mid-run), and aggregate queries on top -- the closest the
suite gets to a production deployment.  The assertions are the global
invariants that must survive the interaction of all features.
"""

import math

import numpy as np
import pytest

from repro.dsms.aggregates import AggregateQuery, answer_aggregate
from repro.dsms.engine import StreamEngine
from repro.dsms.network import LinkConfig
from repro.dsms.query import ContinuousQuery
from repro.dkf.protocol import random_loss
from repro.filters.models import constant_model, linear_model, sinusoidal_model
from repro.datasets import (
    http_traffic_dataset,
    moving_object_dataset,
    power_load_dataset,
)
from repro.streams.base import stream_from_values
from repro.streams.noise import add_spikes

N = 1200


@pytest.fixture(scope="module")
def soak_engine():
    engine = StreamEngine()
    omega = 2 * math.pi / 24

    engine.add_source(
        "vehicle", linear_model(dims=2, dt=0.1), moving_object_dataset(n=N)
    )
    engine.add_source(
        "zone-a",
        sinusoidal_model(omega=omega, theta=-8 * omega),
        power_load_dataset(n=N, seed=1),
    )
    engine.add_source(
        "zone-b",
        linear_model(dims=1, dt=1.0),
        power_load_dataset(n=N, seed=2),
        link=LinkConfig(loss_fn=random_loss(rate=0.1, seed=3)),
    )
    engine.add_source(
        "gateway",
        linear_model(dims=1, dt=1.0),
        http_traffic_dataset(n=N),
    )
    rng = np.random.default_rng(4)
    spiky = add_spikes(
        stream_from_values(np.cumsum(rng.normal(0, 1, N)), name="walk"),
        rate=0.02,
        magnitude=40.0,
        seed=5,
    )
    engine.add_source("sensor-x", constant_model(dims=1), spiky)

    engine.submit_query(ContinuousQuery("vehicle", delta=3.0, query_id="veh"))
    engine.submit_query(ContinuousQuery("zone-a", delta=50.0, query_id="za"))
    engine.submit_query(ContinuousQuery("zone-b", delta=50.0, query_id="zb"))
    engine.submit_query(
        ContinuousQuery("gateway", delta=10.0, smoothing_f=1e-5, query_id="gw")
    )
    engine.submit_query(ContinuousQuery("sensor-x", delta=5.0, query_id="sx"))

    # First third of the run.
    engine.run(max_ticks=N // 3)
    # Query churn: a tighter vehicle query arrives, an old one retires.
    engine.submit_query(ContinuousQuery("vehicle", delta=1.0, query_id="veh2"))
    engine.retire_query("za")
    engine.submit_query(ContinuousQuery("zone-a", delta=100.0, query_id="za2"))
    # Run to completion, then let the transport settle so every pending
    # retransmission resolves before the invariants are checked.
    engine.run()
    engine.settle()
    return engine


class TestSoak:
    def test_all_sources_exhausted(self, soak_engine):
        report = soak_engine.report()
        # vehicle reinstalled mid-run -> its reading counter restarted;
        # every stream nevertheless drained (ticks prove progression).
        assert soak_engine.ticks >= N
        assert report.updates_sent > 0

    def test_no_source_desynced(self, soak_engine):
        for source_id in soak_engine.server.source_ids:
            assert not soak_engine.server.stats(source_id)["desynced"], source_id

    def test_lossy_link_healed(self, soak_engine):
        stats = soak_engine.fabric.stats_for("zone-b")
        assert stats.lost > 0
        # Every discovered loss cut a resync retransmission; resyncs can
        # themselves be lost (and re-cut), so the counts need not match
        # one-to-one -- what matters is that recovery ran and converged.
        assert stats.resyncs > 0
        assert soak_engine.report().retransmits > 0
        assert not soak_engine.server.stats("zone-b")["desynced"]
        assert soak_engine.sources["zone-b"].pending_acks == 0

    def test_answers_available_for_all_queries(self, soak_engine):
        answers = {a.query_id: a for a in soak_engine.answers()}
        assert {"veh", "veh2", "zb", "gw", "sx", "za2"} <= set(answers)
        # The vehicle's two queries share one installed filter at the
        # tighter precision.
        assert answers["veh"].precision == 1.0
        assert answers["veh2"].precision == 1.0

    def test_aggregates_on_top(self, soak_engine):
        query = AggregateQuery("avg", ("zone-a", "zone-b"), query_id="load-avg")
        answer = answer_aggregate(soak_engine, query)
        assert np.isfinite(answer.value)
        assert answer.error_bound == (100.0 + 50.0) / 2
        # Zonal load lives in the hundreds-to-thousands band.
        assert 0 < answer.value < 5000

    def test_energy_accounting_complete(self, soak_engine):
        report = soak_engine.report()
        assert set(report.per_source_energy) == set(
            soak_engine.server.source_ids
        )
        assert report.total_energy_joules > 0
        assert report.bytes_delivered == soak_engine.fabric.total_bytes()
