"""Tests for the per-step trace collectors."""

import numpy as np

from repro.metrics.collectors import RunTrace, collect_trace
from repro.scheme import SchemeDecision


def decision(k, sent, value=0.0):
    v = np.array([value])
    return SchemeDecision(
        k=k, sent=sent, raw_value=v, source_value=v, server_value=v
    )


class TestEmptyTrace:
    def test_summary_of_empty_trace(self):
        trace = RunTrace(scheme="s", stream="t", decisions=[])
        summary = trace.summary()
        assert summary["steps"] == 0
        assert summary["updates"] == 0
        assert summary["update_percentage"] == 0.0
        assert summary["average_error"] == 0.0
        assert summary["max_error"] == 0.0
        assert summary["median_gap"] == 0.0

    def test_empty_series_shapes(self):
        trace = RunTrace(scheme="s", stream="t", decisions=[])
        assert len(trace) == 0
        assert trace.errors().shape == (0,)
        assert trace.sent_mask.shape == (0,)
        assert trace.update_instants.shape == (0,)
        assert trace.inter_update_gaps().shape == (0,)


class TestSummaryConsistency:
    def test_summary_matches_series(self):
        decisions = [
            decision(0, True),
            decision(1, False),
            decision(2, False),
            decision(3, True),
            decision(4, False),
            decision(5, True),
        ]
        trace = RunTrace(scheme="s", stream="t", decisions=decisions)
        summary = trace.summary()
        assert summary["steps"] == 6
        assert summary["updates"] == 3
        assert summary["update_percentage"] == 50.0
        # Gaps between instants (0, 3, 5) are 2 and 1 suppressed steps.
        assert list(trace.inter_update_gaps()) == [2, 1]
        assert summary["median_gap"] == 1.5

    def test_single_update_has_no_gap(self):
        trace = RunTrace(
            scheme="s", stream="t", decisions=[decision(0, True)]
        )
        assert trace.inter_update_gaps().shape == (0,)
        assert trace.summary()["median_gap"] == 0.0
