"""Unit tests for the ASCII chart renderer."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.ascii_plot import render_series, render_sweep_table, sparkline
from repro.metrics.compare import SweepTable
from repro.metrics.evaluation import EvaluationResult


class TestSparkline:
    def test_length_matches_width(self):
        line = sparkline(np.sin(np.linspace(0, 10, 500)), width=40)
        assert len(line) == 40

    def test_short_series_uncompressed(self):
        line = sparkline(np.array([1.0, 2.0, 3.0]), width=40)
        assert len(line) == 3

    def test_constant_series_flat(self):
        line = sparkline(np.full(100, 5.0), width=20)
        assert set(line) == {" "}

    def test_extremes_hit_extreme_glyphs(self):
        line = sparkline(np.array([0.0, 1.0]))
        assert line[0] == " "
        assert line[-1] == "@"

    def test_empty_series(self):
        assert sparkline(np.array([])) == ""


class TestRenderSeries:
    def test_contains_marks_and_legend(self):
        xs = np.arange(1.0, 6.0)
        chart = render_series(
            {"alpha": (xs, xs), "beta": (xs, xs[::-1])},
            x_label="delta",
            y_label="pct",
        )
        assert "o=alpha" in chart
        assert "x=beta" in chart
        assert "delta" in chart
        assert "pct" in chart

    def test_monotone_series_renders_monotone(self):
        xs = np.arange(1.0, 11.0)
        chart = render_series({"up": (xs, xs)}, width=20, height=10)
        rows = [line.split("|", 1)[1] for line in chart.splitlines() if "|" in line]
        cols = [row.index("o") for row in rows if "o" in row]
        # Higher rows (earlier lines) hold larger x positions.
        assert cols == sorted(cols, reverse=True)

    def test_log_x_axis_labels(self):
        xs = np.array([1e-9, 1e-5, 1e-1])
        chart = render_series(
            {"s": (xs, np.array([1.0, 2.0, 3.0]))}, log_x=True, x_label="F"
        )
        assert "1e-09" in chart
        assert "0.1" in chart

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            render_series(
                {"s": (np.array([0.0, 1.0]), np.array([1.0, 2.0]))}, log_x=True
            )

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            render_series({})

    def test_too_many_series_rejected(self):
        xs = np.array([1.0, 2.0])
        series = {f"s{i}": (xs, xs) for i in range(9)}
        with pytest.raises(ConfigurationError):
            render_series(series)


class TestRenderSweepTable:
    def make_table(self):
        table = SweepTable(
            parameter="delta", values=[], metric="update_percentage"
        )
        for delta, (a, b) in [(1.0, (90, 30)), (10.0, (50, 10))]:
            table.add_row(
                delta,
                [
                    EvaluationResult(
                        scheme=name, stream="s", readings=100, updates=v,
                        update_fraction=v / 100, average_error=0.0,
                        max_error=0.0, average_raw_error=0.0, payload_floats=0,
                    )
                    for name, v in [("caching", a), ("dkf", b)]
                ],
            )
        return table

    def test_renders_all_schemes(self):
        chart = render_sweep_table(self.make_table())
        assert "o=caching" in chart
        assert "x=dkf" in chart
        assert "%upd" in chart
