"""Unit tests for the evaluation metrics and trace collectors."""

import numpy as np

from repro.baselines.caching import CachedValueScheme
from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.filters.models import constant_model, linear_model
from repro.metrics.collectors import collect_trace
from repro.metrics.compare import SweepTable, format_results, format_table
from repro.metrics.evaluation import error_series, evaluate_scheme
from repro.streams.base import stream_from_values


def ramp(n=100, slope=2.0):
    return stream_from_values(np.arange(n, dtype=float) * slope, name="ramp")


class TestEvaluateScheme:
    def test_update_percentage_definition(self):
        """Paper Section 5: percentage = sent / readings."""
        stream = ramp(100)
        result = evaluate_scheme(CachedValueScheme.from_precision(3.0), stream)
        assert result.readings == 100
        assert result.update_fraction == result.updates / 100
        assert result.update_percentage == 100 * result.update_fraction

    def test_average_error_definition(self):
        """Paper Section 5: average of per-step |source - server| summed
        over components."""
        stream = stream_from_values(np.array([0.0, 1.0, 2.0]), name="s")
        scheme = CachedValueScheme.from_precision(10.0)
        result = evaluate_scheme(scheme, stream)
        # One update (priming at 0); errors are 0, 1, 2 -> mean 1.0.
        assert result.updates == 1
        assert np.isclose(result.average_error, 1.0)
        assert np.isclose(result.max_error, 2.0)

    def test_2d_error_sums_components(self):
        """Section 5.1: total error = |dx| + |dy|."""
        values = np.array([[0.0, 0.0], [1.0, 2.0]])
        stream = stream_from_values(values, name="2d")
        scheme = CachedValueScheme.from_precision(10.0, dims=2)
        result = evaluate_scheme(scheme, stream)
        assert np.isclose(result.max_error, 3.0)  # |1| + |2|

    def test_raw_vs_smoothed_error(self, http_traffic_small):
        cfg = DKFConfig(
            model=constant_model(dims=1), delta=5.0, smoothing_f=1e-7
        )
        result = evaluate_scheme(DKFSession(cfg), http_traffic_small)
        # Smoothed error obeys the bound; raw error is much larger because
        # the answers track the smoothed stream.
        assert result.average_error <= 5.0
        assert result.average_raw_error > result.average_error

    def test_suppression_percentage(self):
        stream = ramp(100)
        result = evaluate_scheme(CachedValueScheme.from_precision(3.0), stream)
        assert np.isclose(
            result.suppression_percentage, 100 - result.update_percentage
        )

    def test_reset_allows_reuse(self):
        scheme = CachedValueScheme.from_precision(3.0)
        first = evaluate_scheme(scheme, ramp(50))
        second = evaluate_scheme(scheme, ramp(50))
        assert first.updates == second.updates

    def test_as_dict_round_trip(self):
        result = evaluate_scheme(CachedValueScheme.from_precision(3.0), ramp(20))
        d = result.as_dict()
        assert d["scheme"] == result.scheme
        assert d["updates"] == result.updates

    def test_error_series_length(self):
        series = error_series(CachedValueScheme.from_precision(3.0), ramp(42))
        assert series.shape == (42,)


class TestRunTrace:
    def test_update_instants(self):
        trace = collect_trace(CachedValueScheme.from_precision(0.5), ramp(10))
        # Slope 2 > delta 0.5: every reading updates.
        assert np.array_equal(trace.update_instants, np.arange(10))

    def test_gaps_on_perfect_model(self):
        cfg = DKFConfig(model=linear_model(dims=1, dt=1.0), delta=1.0)
        trace = collect_trace(DKFSession(cfg), ramp(100))
        # Slope acquired within a handful of updates, all near the start;
        # the rest of the ramp is silent (the open-ended tail is not part
        # of inter_update_gaps, so check the last update instant instead).
        assert len(trace.update_instants) <= 10
        assert trace.update_instants[-1] < 50

    def test_value_series_shapes(self):
        trace = collect_trace(CachedValueScheme.from_precision(1.0), ramp(30))
        assert trace.server_values().shape == (30, 1)
        assert trace.source_values().shape == (30, 1)
        assert trace.raw_values().shape == (30, 1)

    def test_summary_keys(self):
        trace = collect_trace(CachedValueScheme.from_precision(1.0), ramp(30))
        summary = trace.summary()
        assert summary["steps"] == 30
        assert 0 <= summary["update_percentage"] <= 100


class TestSweepTable:
    def make_results(self, names, value):
        from repro.metrics.evaluation import EvaluationResult

        return [
            EvaluationResult(
                scheme=n, stream="s", readings=10, updates=int(value),
                update_fraction=value / 10, average_error=0.0, max_error=0.0,
                average_raw_error=0.0, payload_floats=0,
            )
            for n in names
        ]

    def test_add_rows_and_column_access(self):
        table = SweepTable(parameter="delta", values=[], metric="updates")
        table.add_row(1.0, self.make_results(["a", "b"], 5))
        table.add_row(2.0, self.make_results(["a", "b"], 3))
        assert table.column("a") == [5, 3]
        assert table.row(2.0) == {"a": 3, "b": 3}

    def test_column_order_enforced(self):
        import pytest

        table = SweepTable(parameter="delta", values=[], metric="updates")
        table.add_row(1.0, self.make_results(["a", "b"], 5))
        with pytest.raises(ValueError):
            table.add_row(2.0, self.make_results(["b", "a"], 3))

    def test_format_table_renders(self):
        table = SweepTable(parameter="delta", values=[], metric="updates")
        table.add_row(1.0, self.make_results(["a"], 5))
        text = format_table(table)
        assert "delta" in text and "a" in text and "5" in text

    def test_format_results_renders(self):
        text = format_results(self.make_results(["scheme-x"], 5))
        assert "scheme-x" in text

    def test_format_empty_table_headers_only(self):
        table = SweepTable(parameter="delta", values=[], metric="updates")
        table.columns = ["a"]
        text = format_table(table)
        assert "delta" in text and "a" in text

    def test_format_precision_applied(self):
        table = SweepTable(parameter="delta", values=[], metric="update_fraction")
        table.add_row(1.0, self.make_results(["a"], 3))
        text = format_table(table, precision=4)
        assert "0.3000" in text

    def test_row_for_unknown_value_raises(self):
        import pytest

        table = SweepTable(parameter="delta", values=[], metric="updates")
        table.add_row(1.0, self.make_results(["a"], 3))
        with pytest.raises(ValueError):
            table.row(99.0)
        with pytest.raises(ValueError):
            table.column("ghost")
