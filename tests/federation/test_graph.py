"""Tests for the peer graph: topology, rendezvous placement, weights."""

import pytest

from repro.errors import ConfigurationError
from repro.federation import PeerGraph
from repro.federation.graph import peer_link_id


def full(n=3):
    return PeerGraph([f"p{i}" for i in range(n)], topology="full")


def ring(n=5):
    return PeerGraph([f"p{i}" for i in range(n)], topology="ring")


class TestConstruction:
    def test_duplicate_peers_rejected(self):
        with pytest.raises(ConfigurationError):
            PeerGraph(["p0", "p0"])

    def test_empty_peer_list_rejected(self):
        with pytest.raises(ConfigurationError):
            PeerGraph([])

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            PeerGraph(["p0"], topology="torus")

    def test_unknown_peer_rejected(self):
        with pytest.raises(ConfigurationError):
            full().neighbors("ghost")

    def test_full_mesh_neighbors(self):
        graph = full(4)
        for peer in graph.peer_ids:
            assert sorted(graph.neighbors(peer)) == sorted(
                p for p in graph.peer_ids if p != peer
            )

    def test_ring_neighbors_are_adjacent(self):
        graph = ring(5)
        assert graph.neighbors("p0") == ["p1", "p4"]
        assert graph.neighbors("p2") == ["p1", "p3"]
        assert all(graph.degree(p) == 2 for p in graph.peer_ids)

    def test_single_peer_ring_has_no_neighbors(self):
        assert PeerGraph(["p0"], topology="ring").neighbors("p0") == []

    def test_peer_link_id_is_directed(self):
        assert peer_link_id("p0", "p1") == "p0>p1"
        assert peer_link_id("p0", "p1") != peer_link_id("p1", "p0")


class TestRendezvousPlacement:
    def test_ranking_is_deterministic_across_instances(self):
        a, b = full(5), full(5)
        for sid in ("s0", "s1", "temp-sensor-7"):
            assert a.rank(sid) == b.rank(sid)
            assert a.home(sid) == a.rank(sid)[0]

    def test_placement_spreads_across_peers(self):
        graph = full(3)
        homes = {graph.home(f"s{i}") for i in range(32)}
        assert homes == set(graph.peer_ids)

    def test_removing_a_peer_rehomes_only_its_sources(self):
        """The rendezvous property: survivors keep every placement."""
        before = full(5)
        after = PeerGraph([f"p{i}" for i in range(5) if i != 2])
        for i in range(64):
            sid = f"s{i}"
            if before.home(sid) != "p2":
                assert after.home(sid) == before.home(sid)
            else:
                # Orphans land on their next-ranked survivor.
                survivors = [p for p in before.rank(sid) if p != "p2"]
                assert after.home(sid) == survivors[0]

    def test_full_mesh_replicas_are_next_ranks(self):
        graph = full(4)
        for i in range(16):
            sid = f"s{i}"
            assert graph.replicas(sid, 2) == graph.rank(sid)[1:3]

    def test_ring_replicas_are_neighbors_of_home(self):
        """Frames are forwarded over single links, never relayed -- so a
        replica must be directly adjacent to the home peer."""
        graph = ring(6)
        for i in range(24):
            sid = f"s{i}"
            neighbors = set(graph.neighbors(graph.home(sid)))
            assert set(graph.replicas(sid, 2)) <= neighbors

    def test_replicas_respect_home_override(self):
        """After failover the replica chain hangs off the new home."""
        graph = ring(6)
        new_home = "p3"
        chain = graph.replicas("s0", 2, home=new_home)
        assert set(chain) <= set(graph.neighbors(new_home))


class TestMetropolisWeights:
    @pytest.mark.parametrize("graph", [full(3), full(5), ring(5), ring(7)])
    def test_weights_sum_to_one(self, graph):
        for peer in graph.peer_ids:
            weights = graph.metropolis_weights(peer)
            assert abs(sum(weights.values()) - 1.0) < 1e-12
            assert peer in weights

    @pytest.mark.parametrize("graph", [full(4), ring(6)])
    def test_weight_matrix_is_doubly_stochastic(self, graph):
        """Metropolis weights are symmetric across edges, so column sums
        equal row sums equal 1 -- the diffusion stability condition."""
        rows = {p: graph.metropolis_weights(p) for p in graph.peer_ids}
        for a in graph.peer_ids:
            for b in graph.neighbors(a):
                assert rows[a][b] == rows[b][a]
            column = sum(rows[b].get(a, 0.0) for b in graph.peer_ids)
            assert abs(column - 1.0) < 1e-12


class TestComponents:
    def test_all_links_up_is_one_component(self):
        graph = full(4)
        components = graph.components(lambda a, b: True)
        assert components == [set(graph.peer_ids)]

    def test_severed_peer_forms_its_own_island(self):
        graph = full(4)

        def link_up(a, b):
            return "p3" not in (a, b)

        components = graph.components(link_up)
        assert components == [{"p0", "p1", "p2"}, {"p3"}]

    def test_asymmetric_cut_still_splits(self):
        """Components model mutual reachability: a one-way link does not
        join two islands."""
        graph = full(2)
        components = graph.components(lambda a, b: (a, b) == ("p0", "p1"))
        assert components == [{"p0"}, {"p1"}]

    def test_ordering_is_deterministic(self):
        graph = ring(6)

        def link_up(a, b):
            return {a, b} not in ({"p0", "p1"}, {"p3", "p4"})

        first = graph.components(link_up)
        second = graph.components(link_up)
        assert first == second
        sizes = [len(c) for c in first]
        assert sizes == sorted(sizes, reverse=True)
