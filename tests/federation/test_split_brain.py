"""Split-brain drill: both partitioned halves answer, heal reconciles
bit-deterministically, and nobody fails over a home that is merely
unreachable (alive behind the cut)."""

import numpy as np
import pytest

from repro.dsms.faults import FaultSchedule
from repro.dsms.query import ContinuousQuery
from repro.federation import FederatedCluster, FederationConfig
from repro.filters.models import constant_model
from repro.streams.base import stream_from_values

TICKS = 240
CUT_AT = 80
HEAL_AT = 160


def workload(n_streams=6, seed=2024):
    rng = np.random.default_rng(seed)
    return {
        f"s{i}": np.cumsum(rng.normal(0.0, 0.4, size=TICKS))
        for i in range(n_streams)
    }


def build(truth):
    cluster = FederatedCluster(
        FederationConfig(peers=3, replication=1, consensus_every=8)
    )
    for sid, values in truth.items():
        cluster.add_source(
            sid,
            constant_model(q=0.2, r=1.0),
            stream_from_values(values, name=sid),
        )
        cluster.submit_query(ContinuousQuery(sid, delta=1.0, query_id=f"q-{sid}"))
    # Isolate one peer with its own homed sources on its side of the
    # cut: a true split brain, where both sides still have work.
    island = next(
        p
        for p in sorted(cluster.peers)
        if any(cluster.home_of(sid) == p for sid in truth)
    )
    island_side = {island} | {
        sid for sid in truth if cluster.home_of(sid) == island
    }
    far_side = (set(cluster.peers) | set(truth)) - island_side
    cluster.inject_faults(
        FaultSchedule(seed=7).partition(
            island_side, far_side, at=CUT_AT, heal_at=HEAL_AT
        )
    )
    return cluster, island


def drill(truth):
    cluster, island = build(truth)
    mid = None
    for _ in range(TICKS):
        cluster.step()
        if cluster.ticks == (CUT_AT + HEAL_AT) // 2:
            mid = {
                "island": sorted(
                    (a.source_id, a.degraded, a.consensus_error)
                    for a in cluster.answers(island)
                ),
                "mainland": sorted(
                    {
                        a.source_id
                        for pid, node in cluster.peers.items()
                        if pid != island and node.alive
                        for a in cluster.answers(pid)
                    }
                ),
                "failovers": cluster.report().failovers,
            }
    cluster.run()
    cluster.settle()
    finals = sorted(
        (a.source_id, a.value, a.precision, a.consensus_error)
        for a in cluster.answers()
    )
    return cluster, island, mid, finals


class TestSplitBrain:
    @pytest.fixture(scope="class")
    def outcome(self):
        truth = workload()
        cluster, island, mid, finals = drill(truth)
        return {
            "truth": truth,
            "cluster": cluster,
            "island": island,
            "mid": mid,
            "finals": finals,
        }

    def test_partition_took_effect(self, outcome):
        report = outcome["cluster"].report()
        assert report.split_brain_ticks == HEAL_AT - CUT_AT

    def test_no_failover_of_an_alive_home(self, outcome):
        """Unreachable is not dead: a partitioned home keeps its
        streams, so heal needs no epoch reconciliation at all."""
        assert outcome["mid"]["failovers"] == 0
        assert outcome["cluster"].report().failovers == 0

    def test_island_keeps_answering_its_own_streams(self, outcome):
        cluster, island = outcome["cluster"], outcome["island"]
        island_homes = {
            sid for sid in outcome["truth"] if cluster.home_of(sid) == island
        }
        assert island_homes, "island homed no streams (bad drill layout)"
        answered = {sid for sid, _, _ in outcome["mid"]["island"]}
        assert island_homes <= answered

    def test_mainland_keeps_answering_everything_it_holds(self, outcome):
        cluster, island = outcome["cluster"], outcome["island"]
        mainland_homes = {
            sid for sid in outcome["truth"] if cluster.home_of(sid) != island
        }
        assert mainland_homes <= set(outcome["mid"]["mainland"])

    def test_cross_partition_views_are_honestly_widened(self, outcome):
        """Any island answer for a stream homed across the cut must be
        flagged degraded and carry a positive consensus bound -- the
        "within δ" guarantee cannot be claimed over a severed link."""
        cluster, island = outcome["cluster"], outcome["island"]
        foreign = [
            (sid, degraded, bound)
            for sid, degraded, bound in outcome["mid"]["island"]
            if cluster.home_of(sid) != island
        ]
        for sid, degraded, bound in foreign:
            assert degraded, sid
            assert bound > 0.0, sid

    def test_all_streams_converge_after_heal(self, outcome):
        truth = outcome["truth"]
        assert {row[0] for row in outcome["finals"]} == set(truth)
        for sid, value, precision, consensus_error in outcome["finals"]:
            err = abs(value[0] - truth[sid][-1])
            assert err <= precision + consensus_error + 1e-9, sid

    def test_heal_is_bit_deterministic(self, outcome):
        """The reconcile leaves no hidden state: an identical second run
        reproduces every final answer bit for bit."""
        _, _, mid, finals = drill(outcome["truth"])
        assert finals == outcome["finals"]
        assert mid == outcome["mid"]

    def test_conservation_holds_through_the_cut(self, outcome):
        """Frames stranded mid-pipe by the cut are in_flight or already
        flushed after heal -- never silently dropped (satellite 2's law,
        federated edition)."""
        report = outcome["cluster"].report()
        assert report.source_offered == (
            report.source_delivered + report.source_lost
            + report.source_corrupted + report.source_in_flight
        )
        assert report.peer_offered == (
            report.peer_delivered + report.peer_lost
            + report.peer_corrupted + report.peer_in_flight
        )
