"""Tests for information-form consensus fusion primitives."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.federation import (
    ConsensusRoundInfo,
    fuse_information,
    information_form,
    staleness_drift,
    zhat_spread,
)
from repro.filters.models import constant_model, linear_model


def filter_with(x, p, model=None):
    model = model or constant_model(q=0.2, r=1.0)
    flt = model.build_filter(np.zeros(model.measurement_dim))
    flt.set_state(np.atleast_1d(x), np.atleast_2d(p))
    return flt


class TestInformationForm:
    def test_round_trips_through_fusion(self):
        flt = filter_with([2.5], [[0.8]])
        x, p = fuse_information([information_form(flt)])
        assert np.allclose(x, flt.x)
        assert np.allclose(p, flt.p)

    def test_round_trips_multidimensional(self):
        model = linear_model(dims=1, dt=1.0)
        flt = model.build_filter(np.zeros(model.measurement_dim))
        flt.set_state(
            np.array([1.0, -0.5]), np.array([[2.0, 0.3], [0.3, 1.0]])
        )
        x, p = fuse_information([information_form(flt)])
        assert np.allclose(x, flt.x)
        assert np.allclose(p, flt.p)

    def test_singular_covariance_rejected(self):
        flt = filter_with([1.0], [[0.0]])
        with pytest.raises(ConfigurationError):
            information_form(flt)


class TestFuseInformation:
    def test_identical_estimates_fuse_to_themselves(self):
        pair = information_form(filter_with([3.0], [[0.5]]))
        x, p = fuse_information([pair, pair, pair])
        assert np.allclose(x, [3.0])
        assert np.allclose(p, [[0.5]])

    def test_certainty_weighted_average(self):
        """A tight estimate dominates the information average: the fused
        mean lands closer to it than the arithmetic midpoint."""
        tight = information_form(filter_with([0.0], [[0.1]]))
        loose = information_form(filter_with([10.0], [[10.0]]))
        x, _p = fuse_information([tight, loose])
        assert x[0] < 5.0

    def test_weights_are_normalised_defensively(self):
        pairs = [
            information_form(filter_with([1.0], [[1.0]])),
            information_form(filter_with([3.0], [[1.0]])),
        ]
        halved = fuse_information(pairs, weights=[0.25, 0.25])
        uniform = fuse_information(pairs, weights=[0.5, 0.5])
        assert np.allclose(halved[0], uniform[0])
        assert np.allclose(halved[1], uniform[1])

    def test_empty_input_rejected(self):
        with pytest.raises(ConfigurationError):
            fuse_information([])

    def test_mismatched_weights_rejected(self):
        pair = information_form(filter_with([1.0], [[1.0]]))
        with pytest.raises(ConfigurationError):
            fuse_information([pair], weights=[0.5, 0.5])

    def test_non_positive_weight_sum_rejected(self):
        pair = information_form(filter_with([1.0], [[1.0]]))
        with pytest.raises(ConfigurationError):
            fuse_information([pair, pair], weights=[0.0, 0.0])


class TestZhatSpread:
    def test_single_participant_has_no_disagreement(self):
        assert zhat_spread([np.array([4.0])]) == 0.0
        assert zhat_spread([]) == 0.0

    def test_spread_is_max_component_range(self):
        zhats = [
            np.array([1.0, 5.0]),
            np.array([1.5, 2.0]),
            np.array([0.5, 3.0]),
        ]
        assert zhat_spread(zhats) == pytest.approx(3.0)

    def test_agreeing_participants_spread_zero(self):
        z = np.array([2.0])
        assert zhat_spread([z, z.copy(), z.copy()]) == 0.0


class TestStalenessDrift:
    def test_constant_model_drift_is_sqrt_q(self):
        drift = staleness_drift(constant_model(q=0.2, r=1.0))
        assert drift == pytest.approx(np.sqrt(0.2))

    def test_drift_is_nonnegative_for_linear_model(self):
        assert staleness_drift(linear_model(dims=1, dt=1.0)) >= 0.0


class TestConsensusRoundInfo:
    def test_bound_grows_with_staleness(self):
        info = ConsensusRoundInfo(
            round_index=3, at_tick=40, participants=2,
            residual=0.5, best_last_seq=39,
        )
        assert info.bound(40, drift_per_tick=0.1) == pytest.approx(0.5)
        assert info.bound(45, drift_per_tick=0.1) == pytest.approx(1.0)

    def test_bound_never_credits_the_future(self):
        info = ConsensusRoundInfo(
            round_index=0, at_tick=10, participants=3,
            residual=0.25, best_last_seq=9,
        )
        assert info.bound(5, drift_per_tick=1.0) == pytest.approx(0.25)
