"""Oracle property (satellite 3): crash -> failover -> heal leaves every
stream's fused estimate within its *reported* ``precision +
consensus_error`` of a never-crashed single-server oracle fed the same
seeded workload.

The single-server :class:`~repro.dsms.engine.StreamEngine` is the
oracle: no peers, no faults, a perfect network.  The federated cluster
must advertise bounds honest enough to cover whatever the crash and the
re-homing cost it -- the check is against the *reported* bound, so an
optimistic consensus_error fails the suite, not just a bad estimate.
"""

import numpy as np
import pytest

from repro.dsms.engine import StreamEngine
from repro.dsms.faults import FaultSchedule
from repro.dsms.query import ContinuousQuery
from repro.federation import FederatedCluster, FederationConfig
from repro.filters.models import constant_model
from repro.streams.base import stream_from_values

TICKS = 300


def workload(n_streams=6, seed=10):
    return {
        f"s{i}": np.cumsum(
            np.random.default_rng(seed + i).normal(0.0, 0.3, size=TICKS)
        )
        for i in range(n_streams)
    }


def populate(system, truth):
    for sid, values in truth.items():
        system.add_source(
            sid,
            constant_model(q=0.2, r=1.0),
            stream_from_values(values, name=sid),
        )
        system.submit_query(ContinuousQuery(sid, delta=1.0, query_id=f"q-{sid}"))
    return system


def oracle_answers(truth):
    engine = populate(StreamEngine(), truth)
    engine.run()
    engine.settle()
    return {a.source_id: a for a in engine.answers()}


class TestOracleProperty:
    @pytest.fixture(scope="class")
    def truth(self):
        return workload()

    @pytest.fixture(scope="class")
    def oracle(self, truth):
        return oracle_answers(truth)

    def federated(self, truth, schedule=None):
        cluster = populate(
            FederatedCluster(
                FederationConfig(peers=3, replication=1, consensus_every=8)
            ),
            truth,
        )
        if schedule is not None:
            cluster.inject_faults(schedule)
        cluster.run()
        cluster.settle()
        return cluster

    def assert_covered(self, cluster, oracle):
        answers = {a.source_id: a for a in cluster.answers()}
        assert set(answers) == set(oracle)
        for sid, fed in answers.items():
            gap = abs(fed.value[0] - oracle[sid].value[0])
            bound = fed.precision + fed.consensus_error + 1e-9
            assert gap <= bound, (
                f"{sid}: federated answer strays {gap:.4f} from the "
                f"oracle, advertised bound only {bound:.4f}"
            )

    def test_healthy_cluster_matches_oracle(self, truth, oracle):
        """No faults: every home runs the same lock-step protocol as the
        single server, so the answers agree to the bit -- consensus
        fusion must never contaminate a live home's filter."""
        cluster = self.federated(truth)
        answers = {a.source_id: a for a in cluster.answers()}
        for sid, fed in answers.items():
            assert fed.value == oracle[sid].value
            assert fed.consensus_error == 0.0

    def test_crash_failover_heal_stays_within_reported_bound(self, truth, oracle):
        cluster = self.federated(
            truth,
            FaultSchedule(seed=7).crash("p0", at=100, restart_at=200),
        )
        assert cluster.report().failovers >= 1
        self.assert_covered(cluster, oracle)

    def test_crash_plus_partition_stays_within_reported_bound(self, truth, oracle):
        """The CI drill shape: a kill and a later cut on one run."""
        schedule = (
            FaultSchedule(seed=7)
            .crash("p0", at=75, restart_at=150)
            .partition({"p1"}, {"p0", "p2"}, at=190, heal_at=250)
        )
        cluster = self.federated(truth, schedule)
        report = cluster.report()
        assert report.failovers >= 1
        assert report.split_brain_ticks > 0
        self.assert_covered(cluster, oracle)

    def test_terminal_crash_still_covered(self, truth, oracle):
        cluster = self.federated(
            truth, FaultSchedule(seed=7).crash("p1", at=120)
        )
        self.assert_covered(cluster, oracle)
