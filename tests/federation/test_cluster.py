"""Tests for the federated cluster facade: placement, replication,
consensus bookkeeping and the traffic conservation law."""

import numpy as np
import pytest

from repro.dsms.query import ContinuousQuery
from repro.errors import ConfigurationError
from repro.federation import FederatedCluster, FederationConfig
from repro.filters.models import constant_model
from repro.streams.base import stream_from_values


def workload(n_streams=6, ticks=160, seed=2024):
    rng = np.random.default_rng(seed)
    return {
        f"s{i}": np.cumsum(rng.normal(0.0, 0.4, size=ticks))
        for i in range(n_streams)
    }


def build_cluster(truth, peers=3, replication=1, telemetry=None, **cfg):
    cluster = FederatedCluster(
        FederationConfig(peers=peers, replication=replication, **cfg),
        telemetry=telemetry,
    )
    for sid, values in truth.items():
        cluster.add_source(
            sid,
            constant_model(q=0.2, r=1.0),
            stream_from_values(values, name=sid),
        )
        cluster.submit_query(ContinuousQuery(sid, delta=1.0, query_id=f"q-{sid}"))
    return cluster


def finals(cluster):
    return sorted(
        (a.source_id, a.value, a.precision, a.consensus_error)
        for a in cluster.answers()
    )


class TestConfigValidation:
    def test_replication_capped_by_peers(self):
        with pytest.raises(ConfigurationError):
            FederationConfig(peers=3, replication=3)

    def test_synchronous_peer_links_rejected(self):
        from repro.dsms.network import LinkConfig

        with pytest.raises(ConfigurationError):
            FederationConfig(peer_link=LinkConfig(latency_ticks=0))

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            FederationConfig(topology="torus")


class TestPlacement:
    def test_homes_match_rendezvous_ranking(self):
        truth = workload()
        cluster = build_cluster(truth)
        for sid in truth:
            assert cluster.home_of(sid) == cluster.graph.home(sid)
            assert cluster.replicas_of(sid) == cluster.graph.replicas(sid, 1)

    def test_replica_holds_a_primed_bank(self):
        truth = workload(n_streams=4)
        cluster = build_cluster(truth)
        cluster.run()
        cluster.settle()
        for sid in truth:
            for replica in cluster.replicas_of(sid):
                server = cluster.peer(replica).server
                assert sid in server.source_ids
                assert server.is_primed(sid)

    def test_source_id_colliding_with_link_syntax_rejected(self):
        cluster = build_cluster({})
        with pytest.raises(ConfigurationError):
            cluster.add_source(
                "a>b",
                constant_model(q=0.2, r=1.0),
                stream_from_values(np.zeros(4), name="bad"),
            )

    def test_source_id_colliding_with_peer_id_rejected(self):
        cluster = build_cluster({})
        with pytest.raises(ConfigurationError):
            cluster.add_source(
                "p0",
                constant_model(q=0.2, r=1.0),
                stream_from_values(np.zeros(4), name="bad"),
            )


class TestHealthyRun:
    def test_every_query_answered_within_bound(self):
        truth = workload()
        cluster = build_cluster(truth)
        cluster.run()
        cluster.settle()
        answers = {a.source_id: a for a in cluster.answers()}
        assert set(answers) == set(truth)
        for sid, answer in answers.items():
            # A live home serves its own lock-step filter: no consensus
            # widening, and the estimate sits within the installed δ.
            assert answer.consensus_error == 0.0
            assert not answer.degraded
            err = abs(answer.value[0] - truth[sid][-1])
            assert err <= answer.precision + 1e-9

    def test_conservation_law_on_both_fabrics(self):
        cluster = build_cluster(workload())
        cluster.run()
        cluster.settle()
        report = cluster.report()
        assert report.source_offered == (
            report.source_delivered + report.source_lost
            + report.source_corrupted + report.source_in_flight
        )
        assert report.peer_offered == (
            report.peer_delivered + report.peer_lost
            + report.peer_corrupted + report.peer_in_flight
        )
        assert report.peer_offered > 0  # replication actually happened

    def test_consensus_rounds_run_on_cadence(self):
        cluster = build_cluster(workload(), consensus_every=8)
        cluster.run()
        cluster.settle()
        assert cluster.report().consensus_rounds > 0

    def test_consensus_can_be_disabled(self):
        truth = workload(n_streams=4)
        cluster = build_cluster(truth, consensus_every=0)
        cluster.run()
        cluster.settle()
        assert cluster.report().consensus_rounds == 0
        assert {a.source_id for a in cluster.answers()} == set(truth)

    def test_replica_answers_carry_honest_widening(self):
        truth = workload(n_streams=4)
        cluster = build_cluster(truth)
        cluster.run()
        cluster.settle()
        for sid in truth:
            replica = cluster.replicas_of(sid)[0]
            answer = cluster.answer(f"q-{sid}", peer_id=replica)
            assert answer.consensus_error > 0.0
            assert answer.degraded  # not the home: guarantee is wider
            err = abs(answer.value[0] - truth[sid][-1])
            assert err <= answer.precision + answer.consensus_error + 1e-9

    def test_proxied_answers_add_one_hop_of_drift(self):
        truth = workload(n_streams=4)
        cluster = build_cluster(truth, replication=0)
        cluster.run()
        cluster.settle()
        for sid in truth:
            home = cluster.home_of(sid)
            other = next(p for p in cluster.peers if p != home)
            direct = cluster.answer(f"q-{sid}", peer_id=home)
            proxied = cluster.answer(f"q-{sid}", peer_id=other)
            assert proxied.value == direct.value
            assert proxied.consensus_error > direct.consensus_error


class TestSinglePeerDegeneratesToEngine:
    def test_one_peer_no_consensus_error(self):
        truth = workload(n_streams=3)
        cluster = build_cluster(truth, peers=1, replication=0)
        cluster.run()
        cluster.settle()
        answers = cluster.answers()
        assert len(answers) == len(truth)
        assert all(a.consensus_error == 0.0 for a in answers)
        assert cluster.report().peer_offered == 0


class TestDeterminism:
    def test_identical_builds_identical_outcomes(self):
        truth = workload()
        first = build_cluster(truth)
        first.run()
        first.settle()
        second = build_cluster(truth)
        second.run()
        second.settle()
        assert finals(first) == finals(second)
        assert first.report() == second.report()

    def test_report_round_trips_to_dict(self):
        cluster = build_cluster(workload(n_streams=3))
        cluster.run()
        cluster.settle()
        report = cluster.report().to_dict()
        assert report["peers"] == 3
        assert sorted(report) == sorted(
            type(cluster.report()).__dataclass_fields__
        )
