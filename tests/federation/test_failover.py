"""Failover drill: killing one peer of three loses zero streams.

The acceptance scenario from the federation issue: a 3-peer cluster
takes a mid-run peer kill; every stream homed on the victim must be
re-homed to the freshest replica, every final answer must sit within
its advertised ``precision + consensus_error`` of the truth, and the
failover must be visible in telemetry.
"""

import numpy as np
import pytest

from repro.dsms.faults import FaultSchedule
from repro.dsms.query import ContinuousQuery
from repro.federation import FederatedCluster, FederationConfig
from repro.filters.models import constant_model
from repro.obs import Telemetry
from repro.streams.base import stream_from_values

TICKS = 240
CRASH_AT = 60
RESTART_AT = 120


def workload(n_streams=6, seed=2024):
    rng = np.random.default_rng(seed)
    return {
        f"s{i}": np.cumsum(rng.normal(0.0, 0.4, size=TICKS))
        for i in range(n_streams)
    }


def build(truth, telemetry=None, restart_at=RESTART_AT):
    cluster = FederatedCluster(
        FederationConfig(peers=3, replication=1, consensus_every=8),
        telemetry=telemetry,
    )
    for sid, values in truth.items():
        cluster.add_source(
            sid,
            constant_model(q=0.2, r=1.0),
            stream_from_values(values, name=sid),
        )
        cluster.submit_query(ContinuousQuery(sid, delta=1.0, query_id=f"q-{sid}"))
    homes = {sid: cluster.home_of(sid) for sid in truth}
    counts = {p: sum(1 for h in homes.values() if h == p) for p in cluster.peers}
    victim = max(sorted(counts), key=lambda p: counts[p])
    schedule = FaultSchedule(seed=7).crash(
        victim, at=CRASH_AT, restart_at=restart_at
    )
    cluster.inject_faults(schedule)
    return cluster, victim


class TestCrashFailover:
    @pytest.fixture(scope="class")
    def drill(self):
        truth = workload()
        telemetry = Telemetry()
        cluster, victim = build(truth, telemetry=telemetry)
        orphans = sorted(
            sid for sid in truth if cluster.home_of(sid) == victim
        )
        replicas_before = {sid: cluster.replicas_of(sid) for sid in orphans}
        cluster.run()
        cluster.settle()
        return {
            "truth": truth,
            "cluster": cluster,
            "victim": victim,
            "orphans": orphans,
            "replicas_before": replicas_before,
            "telemetry": telemetry,
        }

    def test_zero_streams_lost(self, drill):
        answered = {a.source_id for a in drill["cluster"].answers()}
        assert answered == set(drill["truth"])

    def test_orphans_rehomed_off_the_victim(self, drill):
        assert drill["orphans"], "drill victim homed no streams"
        cluster, victim = drill["cluster"], drill["victim"]
        for sid in drill["orphans"]:
            assert cluster.home_of(sid) != victim

    def test_promotion_went_to_a_pre_crash_replica(self, drill):
        """With k=1 the only warm bank is the replica: promotion must
        pick it rather than re-priming a cold rendezvous survivor."""
        cluster = drill["cluster"]
        for sid in drill["orphans"]:
            assert cluster.home_of(sid) in drill["replicas_before"][sid]

    def test_failovers_counted_with_latency(self, drill):
        report = drill["cluster"].report()
        assert report.failovers >= len(drill["orphans"])
        assert report.peer_crashes >= 1
        assert len(report.rehome_latency_ticks) >= 1
        assert all(t >= 0 for t in report.rehome_latency_ticks)

    def test_final_answers_within_advertised_bound(self, drill):
        truth = drill["truth"]
        for a in drill["cluster"].answers():
            err = abs(a.value[0] - truth[a.source_id][-1])
            assert err <= a.precision + a.consensus_error + 1e-9, a.source_id

    def test_victim_rejoined_at_higher_epoch(self, drill):
        victim = drill["cluster"].peer(drill["victim"])
        assert victim.alive
        assert victim.epoch >= 1
        assert victim.crashes == 1

    def test_no_failback_after_restart(self, drill):
        """Re-homing is sticky: the restarted victim rejoins as a
        replica-capable peer but does not steal its old streams back."""
        cluster, victim = drill["cluster"], drill["victim"]
        assert all(
            cluster.home_of(sid) != victim for sid in drill["orphans"]
        )

    def test_failover_visible_in_telemetry(self, drill):
        counters: dict[str, int] = {}
        for counter in drill["telemetry"].metrics.counters():
            counters[counter.name] = counters.get(counter.name, 0) + counter.value
        assert counters.get("fed_failovers_total", 0) >= 1
        assert counters.get("fed_peer_crashes_total", 0) >= 1
        assert counters.get("fed_peer_rejoins_total", 0) >= 1

    def test_conservation_law_survives_the_crash(self, drill):
        report = drill["cluster"].report()
        assert report.source_offered == (
            report.source_delivered + report.source_lost
            + report.source_corrupted + report.source_in_flight
        )
        assert report.peer_offered == (
            report.peer_delivered + report.peer_lost
            + report.peer_corrupted + report.peer_in_flight
        )


class TestTerminalCrash:
    def test_dead_forever_peer_still_fails_over(self):
        """A peer that never restarts: its streams re-home and answer;
        frames racing into the dead host are counted, not vanished."""
        truth = workload(n_streams=6, seed=9)
        cluster, victim = build(truth, restart_at=None)
        cluster.run()
        cluster.settle()
        answered = {a.source_id for a in cluster.answers()}
        assert answered == set(truth)
        report = cluster.report()
        assert report.failovers >= 1
        assert all(cluster.home_of(sid) != victim for sid in truth)
        assert report.dropped_at_dead_peer >= 0


class TestFailoverDeterminism:
    def test_same_seed_same_story(self):
        truth = workload()
        first, _ = build(truth)
        first.run()
        first.settle()
        second, _ = build(truth)
        second.run()
        second.settle()
        assert first.report() == second.report()
        a = sorted((x.source_id, x.value, x.consensus_error) for x in first.answers())
        b = sorted((x.source_id, x.value, x.consensus_error) for x in second.answers())
        assert a == b
