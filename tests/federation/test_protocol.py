"""Tests for the peer-to-peer wire codec (tags 0x10-0x13)."""

import numpy as np
import pytest

from repro.dkf.protocol import ResyncMessage, UpdateMessage
from repro.errors import ConfigurationError, CorruptMessageError
from repro.federation.protocol import (
    ConsensusShare,
    PeerHeartbeat,
    RehomeClaim,
    ReplicaFrame,
    decode_peer_frame,
    encode_peer_frame,
)

LINKS = ["p0>p1", "p1>p0", "p0>p2"]
STREAMS = ["s0", "s1"]
PEERS = ["p0", "p1", "p2"]


def decode(data, state_dim=None):
    return decode_peer_frame(
        data, link_ids=LINKS, stream_ids=STREAMS, peer_ids=PEERS,
        state_dim=state_dim,
    )


def replica_frame(payload=None):
    payload = payload or UpdateMessage(
        source_id="s0", seq=7, k=12, value=np.array([3.25])
    )
    return ReplicaFrame(link_id="p0>p1", seq=4, k=12, payload=payload)


def consensus_share(n=2, m=1):
    y = np.arange(1, n * n + 1, dtype=float).reshape(n, n)
    y = (y + y.T) / 2.0  # symmetric, as P^-1 always is
    return ConsensusShare(
        link_id="p1>p0",
        seq=9,
        k=40,
        stream_id="s1",
        round_index=5,
        y=y,
        yv=np.linspace(-1.0, 1.0, n),
        zhat=np.full(m, 0.125),
        last_seq=31,
        staleness=2,
    )


class TestRoundTrip:
    def test_replica_update_round_trips(self):
        frame = replica_frame()
        out = decode(encode_peer_frame(frame))
        assert isinstance(out, ReplicaFrame)
        assert (out.link_id, out.seq, out.k) == ("p0>p1", 4, 12)
        assert out.stream_id == "s0"
        payload = out.payload
        assert isinstance(payload, UpdateMessage)
        assert (payload.source_id, payload.seq, payload.k) == ("s0", 7, 12)
        assert np.array_equal(payload.value, frame.payload.value)

    def test_replica_resync_round_trips(self):
        payload = ResyncMessage(
            source_id="s1", seq=3, k=8,
            x=np.array([1.0, -2.0]),
            p=np.array([[2.0, 0.5], [0.5, 1.0]]),
            value=np.array([0.75]),
        )
        out = decode(
            encode_peer_frame(replica_frame(payload)), state_dim=2
        )
        assert isinstance(out.payload, ResyncMessage)
        assert np.array_equal(out.payload.x, payload.x)
        assert np.array_equal(out.payload.p, payload.p)

    def test_consensus_share_round_trips(self):
        frame = consensus_share()
        out = decode(encode_peer_frame(frame))
        assert isinstance(out, ConsensusShare)
        assert out.stream_id == "s1"
        assert out.round_index == 5
        assert out.last_seq == 31
        assert out.staleness == 2
        assert np.allclose(out.y, frame.y)
        assert np.allclose(out.yv, frame.yv)
        assert np.allclose(out.zhat, frame.zhat)

    def test_heartbeat_round_trips(self):
        frame = PeerHeartbeat(
            link_id="p0>p2", seq=1, k=16, peer_id="p0", epoch=3
        )
        out = decode(encode_peer_frame(frame))
        assert out == frame

    def test_rehome_claim_round_trips(self):
        frame = RehomeClaim(
            link_id="p1>p0", seq=2, k=90, stream_id="s0",
            new_home="p1", epoch=1, last_seq=88,
        )
        out = decode(encode_peer_frame(frame))
        assert out == frame


class TestSizeAccounting:
    @pytest.mark.parametrize(
        "frame",
        [
            replica_frame(),
            consensus_share(),
            consensus_share(n=3, m=2),
            PeerHeartbeat(link_id="p0>p1", seq=0, k=0, peer_id="p2", epoch=0),
            RehomeClaim(
                link_id="p0>p2", seq=0, k=0, stream_id="s0",
                new_home="p2", epoch=2, last_seq=10,
            ),
        ],
    )
    def test_encoded_length_equals_size_bytes(self, frame):
        assert len(encode_peer_frame(frame)) == frame.size_bytes


class TestRejection:
    def test_bit_flip_anywhere_is_rejected(self):
        encoded = bytearray(encode_peer_frame(consensus_share()))
        for position in range(0, len(encoded), 7):
            flipped = bytearray(encoded)
            flipped[position] ^= 0x40
            with pytest.raises(CorruptMessageError):
                decode(bytes(flipped))

    def test_truncated_frame_is_rejected(self):
        encoded = encode_peer_frame(
            PeerHeartbeat(link_id="p0>p1", seq=0, k=0, peer_id="p0", epoch=0)
        )
        with pytest.raises((ConfigurationError, CorruptMessageError)):
            decode(encoded[:6])

    def test_unresolvable_stream_hash_is_rejected(self):
        encoded = encode_peer_frame(replica_frame())
        with pytest.raises(ConfigurationError):
            decode_peer_frame(
                encoded, link_ids=LINKS, stream_ids=[], peer_ids=PEERS
            )

    def test_unresolvable_link_hash_is_rejected(self):
        encoded = encode_peer_frame(replica_frame())
        with pytest.raises(ConfigurationError):
            decode_peer_frame(
                encoded, link_ids=["px>py"], stream_ids=STREAMS,
                peer_ids=PEERS,
            )

    def test_non_peer_frame_rejected_at_encode(self):
        with pytest.raises(ConfigurationError):
            encode_peer_frame(
                UpdateMessage(source_id="s0", seq=0, k=0, value=np.zeros(1))
            )
