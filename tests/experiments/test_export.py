"""Unit tests for the figure-data CSV exporter."""

import csv

import numpy as np

from repro.experiments import example1
from repro.experiments.export import export_all, export_results, export_table
from repro.experiments.table1 import matrix
from repro.streams.replay import load_stream_csv


class TestExportTable:
    def test_round_trips_values(self, tmp_path):
        table = example1.figure4_updates(n=300, deltas=[1.0, 5.0])
        path = tmp_path / "fig4.csv"
        export_table(table, path)
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["delta"] + table.columns
        assert float(rows[1][0]) == 1.0
        assert float(rows[1][1]) == table.cells[0][0]


class TestExportResults:
    def test_header_and_rows(self, tmp_path):
        results = matrix(
            sizes={"moving-object": 200, "power-load": 200, "http-traffic": 200}
        )
        path = tmp_path / "table1.csv"
        export_results(results, path)
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0][0] == "scheme"
        assert len(rows) == len(results) + 1


class TestExportAll:
    def test_writes_every_figure(self, tmp_path):
        sizes = {"moving-object": 200, "power-load": 240, "http-traffic": 200}
        files = export_all(tmp_path, sizes=sizes)
        names = {p.name for p in files}
        assert {
            "fig03_dataset.csv",
            "fig04_updates.csv",
            "fig05_error.csv",
            "fig06_dataset.csv",
            "fig07_updates.csv",
            "fig08_error.csv",
            "fig09_dataset.csv",
            "fig11_updates.csv",
            "fig12_smoothing.csv",
            "table1_matrix.csv",
        } == names
        for path in files:
            assert path.exists()
            assert path.stat().st_size > 0

    def test_dataset_csv_loadable(self, tmp_path):
        sizes = {"moving-object": 150, "power-load": 150, "http-traffic": 150}
        export_all(tmp_path, sizes=sizes)
        stream = load_stream_csv(tmp_path / "fig03_dataset.csv")
        assert len(stream) == 150
        assert stream.dim == 2
        assert np.all(np.isfinite(stream.values()))
