"""Shape tests for the experiment harness: each figure's qualitative
claims must hold on reduced-size runs (full-size runs live in
``benchmarks/``)."""

import numpy as np
import pytest

from repro.experiments import example1, example2, example3, table1

# Reduced sizes keep the suite fast while preserving the shapes.
N1, N2, N3 = 1500, 2000, 1500


@pytest.fixture(scope="module")
def fig4():
    return example1.figure4_updates(n=N1, deltas=[1.0, 3.0, 10.0, 30.0])


@pytest.fixture(scope="module")
def fig5():
    return example1.figure5_error(n=N1, deltas=[1.0, 3.0, 10.0, 30.0])


@pytest.fixture(scope="module")
def fig7():
    return example2.figure7_updates(n=N2, deltas=[20.0, 50.0, 100.0])


@pytest.fixture(scope="module")
def fig11():
    return example3.figure11_updates(n=N3, deltas=[0.1, 0.5, 2.0])


@pytest.fixture(scope="module")
def fig12():
    return example3.figure12_smoothing_sweep(
        n=N3, factors=[1e-9, 1e-5, 1e-1]
    )


class TestExample1:
    def test_fig3_dataset_summary(self):
        summary = example1.figure3_dataset(n=500)
        assert summary["length"] == 500
        assert summary["dim"] == 2

    def test_fig4_linear_beats_caching_at_moderate_delta(self, fig4):
        """The headline claim: ~75% fewer updates at delta = 3."""
        row = fig4.row(3.0)
        assert row["dkf-linear"] < 0.5 * row["caching"]

    def test_fig4_constant_matches_caching(self, fig4):
        """Caching and constant-KF travel together.  With the paper's
        Q = R = 0.05 the constant model's sub-unity gain costs it a few
        extra updates at large delta, so the tolerance scales with the
        caching level."""
        for delta in fig4.values:
            row = fig4.row(delta)
            tolerance = max(8.0, 0.35 * row["caching"])
            assert abs(row["dkf-constant"] - row["caching"]) < tolerance

    def test_fig4_updates_decrease_with_delta(self, fig4):
        for scheme in fig4.columns:
            series = fig4.column(scheme)
            assert series[0] >= series[-1]

    def test_fig5_errors_grow_with_delta(self, fig5):
        for scheme in fig5.columns:
            series = fig5.column(scheme)
            assert series[-1] > series[0]

    def test_fig5_errors_bounded_by_2delta(self, fig5):
        """Per-component error <= delta, so the summed 2-D error <= 2
        delta."""
        for delta, cells in zip(fig5.values, fig5.cells):
            for value in cells:
                assert value <= 2 * delta + 1e-9


class TestExample2:
    def test_fig6_dataset_summary(self):
        summary = example2.figure6_dataset(n=500)
        assert summary["length"] == 500

    def test_fig7_sinusoidal_beats_linear_beats_caching(self, fig7):
        for delta in fig7.values:
            row = fig7.row(delta)
            assert row["dkf-sinusoidal"] < row["dkf-linear"]
            assert row["dkf-linear"] < row["caching"]

    def test_fig8_errors_bounded(self):
        table = example2.figure8_error(n=N2, deltas=[50.0])
        for value in table.cells[0]:
            assert value <= 50.0 + 1e-9


class TestExample3:
    def test_fig9_dataset_summary(self):
        summary = example3.figure9_dataset(n=500)
        assert summary["length"] == 500

    def test_fig10_low_f_matches_moving_average(self):
        result = example3.figure10_smoothing(n=N3, f=1e-9)
        assert result["rms_distance_relative"] < 0.1

    def test_fig10_high_f_diverges_from_moving_average(self):
        matched = example3.figure10_smoothing(n=N3, f=1e-9)
        diverged = example3.figure10_smoothing(n=N3, f=1e-1)
        assert (
            diverged["rms_distance_relative"]
            > 3 * matched["rms_distance_relative"]
        )

    def test_fig11_linear_wins_at_tight_precision(self, fig11):
        row = fig11.row(0.1)
        assert row["dkf-linear"] < row["caching"]
        assert row["dkf-linear"] < row["dkf-constant"]

    def test_fig12_updates_monotone_in_f(self, fig12):
        """Lowering F reduces update traffic (the paper's Fig. 12)."""
        for scheme in fig12.columns:
            series = fig12.column(scheme)
            assert series == sorted(series)


class TestTable1:
    def test_matrix_covers_all_datasets_and_schemes(self):
        results = table1.matrix(
            sizes={"moving-object": 600, "power-load": 600, "http-traffic": 600}
        )
        streams = {r.stream for r in results}
        assert streams == {"moving-object", "power-load", "http-traffic"}
        schemes = {r.scheme for r in results}
        assert {"caching", "adaptive-caching", "dkf-constant", "dkf-linear"} <= schemes

    def test_best_dkf_never_loses_to_caching(self):
        results = table1.matrix(
            sizes={"moving-object": 600, "power-load": 600, "http-traffic": 600}
        )
        by_stream = {}
        for r in results:
            by_stream.setdefault(r.stream, {})[r.scheme] = r
        for stream, rows in by_stream.items():
            best_dkf = min(
                v.update_fraction
                for k, v in rows.items()
                if k.startswith("dkf")
            )
            assert best_dkf <= rows["caching"].update_fraction + 0.02


class TestRunnerMechanics:
    def test_sweep_column_stability(self):
        table = example1.figure4_updates(n=400, deltas=[1.0, 5.0])
        assert table.columns == ["caching", "dkf-constant", "dkf-linear"]
        assert len(table.values) == 2
