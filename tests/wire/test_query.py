"""The TCP query API: dispatch semantics and a live socket round trip.

Most cases drive :meth:`QueryServer.dispatch_line` directly -- the
protocol is line-in, JSON-out, so the dispatch table is testable
without a socket.  One test runs the full stack: a real listener, a
real client connection, malformed lines mixed with good ones, and the
staleness/quarantine honesty flags served over the wire.
"""

import asyncio
import json

import numpy as np

from repro.dkf.config import DKFConfig
from repro.dkf.protocol import UpdateMessage
from repro.filters.models import constant_model
from repro.resilience import DivergenceWatchdog, WatchdogPolicy
from repro.wire.config import WireConfig
from repro.wire.query import QueryServer, query_line
from repro.wire.server import WireServer

SOURCE = "s0"


def _served_server(watchdog=None):
    config = WireConfig(
        sources=1, ticks=8, ramp_ticks=1, tick_seconds=0.5
    )
    server = WireServer(config, watchdog=watchdog)
    dkf_config = DKFConfig(model=constant_model(dims=1), delta=1.0)
    server.register(SOURCE, dkf_config)
    return config, server


def _prime(server, value=4.0, k=1):
    server.dkf.receive(
        UpdateMessage(
            source_id=SOURCE, seq=0, k=k, value=np.array([value])
        )
    )
    server.dkf.take_outbox()


def test_dispatch_answer_carries_honesty_flags():
    config, server = _served_server()
    query = QueryServer(server, config)
    before = query.dispatch_line(
        json.dumps({"op": "answer", "source_id": SOURCE}).encode()
    )
    assert before["primed"] is False
    assert before["degraded"] is True
    assert "value" not in before

    _prime(server, value=4.0, k=1)
    server.dkf.advance_clock(3)
    after = query.dispatch_line(
        json.dumps({"op": "answer", "source_id": SOURCE}).encode()
    )
    assert after["primed"] is True
    assert after["value"] == [4.0]
    # Contact landed at clock 0; 3 ticks of silence at 0.5 s/tick.
    assert after["staleness_ms"] == 1500.0
    assert after["suspect"] is False
    assert after["quarantined"] is False
    assert after["confidence"] > 0


def test_dispatch_quarantine_flag_reads_watchdog():
    watchdog = DivergenceWatchdog(WatchdogPolicy())
    config, server = _served_server(watchdog=watchdog)
    watchdog.register(SOURCE)
    _prime(server)
    query = QueryServer(server, config)
    # Walk the escalation ladder to the quarantine rung: resync ->
    # reprime -> quarantine, one rung per elapsed grace window.
    grace = watchdog.policy.escalation_grace_ticks
    tick = 1
    while not watchdog.is_quarantined(SOURCE):
        watchdog.apply_faults(SOURCE, tick, ["nis_spike"])
        tick += grace
        assert tick < 100, "watchdog never reached quarantine"
    out = query.dispatch_line(
        json.dumps({"op": "answer", "source_id": SOURCE}).encode()
    )
    assert out["quarantined"] is True


def test_dispatch_forecast_and_stats():
    config, server = _served_server()
    _prime(server, value=7.5)
    query = QueryServer(server, config)
    forecast = query.dispatch_line(
        json.dumps(
            {"op": "forecast", "source_id": SOURCE, "steps": 3}
        ).encode()
    )
    assert forecast["steps"] == 3
    assert len(forecast["forecast"]) == 3
    # Constant model: the forecast holds the last estimate.
    assert all(
        abs(row[0] - 7.5) < 1.0 for row in forecast["forecast"]
    )
    stats = query.dispatch_line(b'{"op": "stats"}')
    assert stats["queries_served"] >= 1
    assert "wire" in stats and "inbox_depth" in stats


def test_dispatch_rejects_garbage_without_dropping_state():
    config, server = _served_server()
    query = QueryServer(server, config)
    assert "error" in query.dispatch_line(b"not json at all")
    assert "error" in query.dispatch_line(b"[1, 2, 3]")
    assert "error" in query.dispatch_line(b'{"op": "warp"}')
    assert "error" in query.dispatch_line(b'{"op": "answer"}')
    assert "error" in query.dispatch_line(
        b'{"op": "answer", "source_id": "nope"}'
    )
    assert "error" in query.dispatch_line(
        b'{"op": "forecast", "source_id": "s0", "steps": 0}'
    )
    assert "error" in query.dispatch_line(
        b'{"op": "answers", "limit": -2}'
    )
    # The server still answers a good request afterwards.
    assert query.dispatch_line(b'{"op": "ping"}')["ok"] is True


def test_dispatch_non_object_json_is_typed_rejection():
    # Valid JSON that is not an object must answer with an error and a
    # typed not_object ledger entry -- never raise, never be treated as
    # a request (pins the adversarial-input contract).
    config, server = _served_server()
    query = QueryServer(server, config)
    for line in (b"[1, 2, 3]", b'"just a string"', b"42", b"null"):
        out = query.dispatch_line(line)
        assert out == {"error": "request must be a JSON object"}
    assert query.poison.reasons["not_object"] == 4
    # Malformed and pathologically nested JSON land under bad_json.
    assert "error" in query.dispatch_line(b'{"op": "ping"')
    assert "nested" in query.dispatch_line(
        b"[" * 50_000 + b"]" * 50_000
    )["error"]
    assert query.poison.reasons["bad_json"] == 2


def test_idle_timeout_evicts_slow_loris():
    asyncio.run(_idle_timeout_case())


async def _idle_timeout_case():
    config, server = _served_server()
    config = WireConfig(
        sources=1, ticks=8, ramp_ticks=1, tick_seconds=0.5,
        query_idle_timeout_s=0.2,
    )
    query = QueryServer(server, config)
    host, port = await query.start()
    try:
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b'{"op": "ans')  # half a request, then silence
        await writer.drain()
        # The server owes us one error line and then EOF, well before a
        # 30 s default would allow.
        line = await asyncio.wait_for(reader.readline(), 5.0)
        assert json.loads(line) == {"error": "idle timeout"}
        assert await asyncio.wait_for(reader.read(), 5.0) == b""
        writer.close()
        await writer.wait_closed()
        assert query.poison.reasons["idle_timeout"] == 1
    finally:
        await query.close()


def test_connection_cap_rejects_excess_admissions():
    asyncio.run(_connection_cap_case())


async def _connection_cap_case():
    config, server = _served_server()
    config = WireConfig(
        sources=1, ticks=8, ramp_ticks=1, tick_seconds=0.5,
        query_max_connections=1,
    )
    query = QueryServer(server, config)
    host, port = await query.start()
    try:
        r1, w1 = await asyncio.open_connection(host, port)
        w1.write(b'{"op": "ping"}\n')
        await w1.drain()
        assert json.loads(await r1.readline())["ok"] is True
        # Second concurrent connection: one error line, then close.
        r2, w2 = await asyncio.open_connection(host, port)
        line = await asyncio.wait_for(r2.readline(), 5.0)
        assert json.loads(line) == {"error": "too many connections"}
        assert await asyncio.wait_for(r2.read(), 5.0) == b""
        for writer in (w1, w2):
            writer.close()
            await writer.wait_closed()
        assert query.poison.reasons["too_many_connections"] == 1
        # The capped peer did not poison service for the survivor: a
        # fresh connection after w2 closes is admitted again.
        pong = await query_line(host, port, {"op": "ping"})
        assert pong["ok"] is True
    finally:
        await query.close()


def test_rate_limit_token_bucket_per_peer():
    asyncio.run(_rate_limit_case())


async def _rate_limit_case():
    config, server = _served_server()
    config = WireConfig(
        sources=1, ticks=8, ramp_ticks=1, tick_seconds=0.5,
        query_rate_limit_per_s=0.001, query_rate_burst=2.0,
    )
    query = QueryServer(server, config)
    host, port = await query.start()
    try:
        reader, writer = await asyncio.open_connection(host, port)
        replies = []
        for _ in range(4):
            writer.write(b'{"op": "ping"}\n')
            await writer.drain()
            replies.append(json.loads(await reader.readline()))
        # Burst of 2 admitted, refill is negligible: the rest are typed
        # refusals on a connection that stays open.
        assert [r.get("ok") for r in replies[:2]] == [True, True]
        assert all(
            r == {"error": "rate limited"} for r in replies[2:]
        )
        assert query.poison.reasons["rate_limited"] == 2
        writer.close()
        await writer.wait_closed()
    finally:
        await query.close()


def test_query_over_real_tcp_socket():
    asyncio.run(_tcp_roundtrip())


async def _tcp_roundtrip():
    config, server = _served_server()
    _prime(server, value=2.5)
    query = QueryServer(server, config)
    host, port = await query.start()
    try:
        pong = await query_line(host, port, {"op": "ping"})
        assert pong["ok"] is True
        answer = await query_line(
            host, port, {"op": "answer", "source_id": SOURCE}
        )
        assert answer["value"] == [2.5]
        # A malformed line on a persistent connection must not poison
        # the next request.
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(b"garbage\n")
            writer.write(b'{"op": "ping"}\n')
            await writer.drain()
            first = json.loads(await reader.readline())
            second = json.loads(await reader.readline())
            assert "error" in first
            assert second["ok"] is True
        finally:
            writer.close()
            await writer.wait_closed()
    finally:
        await query.close()
