"""Seeded adversarial-input fuzzing: nothing raises past a handler.

Both attack surfaces are driven directly, no sockets: the UDP decode
path through :meth:`WireServer._apply_datagram` and the TCP dispatch
table through :meth:`QueryServer.dispatch_line`.  The contract under
test is *totality* -- every hostile input maps to a typed rejection in
the :class:`~repro.wire.datagram.PoisonLedger` (or a valid response),
and the books still balance afterwards.
"""

import json
import zlib

import numpy as np

from repro.dkf.config import DKFConfig
from repro.dkf.protocol import UpdateMessage, encode_message
from repro.filters.models import constant_model
from repro.obs import Telemetry
from repro.wire.config import WireConfig
from repro.wire.datagram import PoisonLedger
from repro.wire.query import QueryServer
from repro.wire.server import WireServer

SOURCES = ("s0", "s1", "s2")
ADDR = ("127.0.0.1", 49152)


def _server(**overrides) -> tuple[WireConfig, WireServer]:
    defaults = dict(
        sources=len(SOURCES), ticks=8, ramp_ticks=1, tick_seconds=0.5
    )
    defaults.update(overrides)
    config = WireConfig(**defaults)
    server = WireServer(config)
    server.register_fleet(
        SOURCES, DKFConfig(model=constant_model(dims=1), delta=1.0)
    )
    return config, server


def test_poison_ledger_counts_and_exports():
    telemetry = Telemetry()
    ledger = PoisonLedger(telemetry)
    for reason in ("corrupt", "corrupt", "bad_json"):
        ledger.reject(reason)
    assert ledger.total == 3
    assert ledger.reasons == {"corrupt": 2, "bad_json": 1}
    assert list(ledger.as_dict()) == ["bad_json", "corrupt"]
    # The labelled counter family reached the registry.
    assert (
        telemetry.metrics.counter(
            "frames_rejected_total", {"reason": "corrupt"}
        ).value
        == 2
    )


def test_datagram_fuzz_never_escapes_and_books_balance():
    _, server = _server()
    rng = np.random.default_rng(1234)
    offered = 0
    for _ in range(400):
        kind = int(rng.integers(0, 4))
        if kind == 0:  # random bytes: CRC rejects
            payload = rng.bytes(int(rng.integers(1, 120)))
        elif kind == 1:  # truncated valid frame: CRC rejects
            frame = encode_message(
                UpdateMessage(
                    source_id="s0", seq=1, k=1, value=np.array([0.0])
                )
            )
            payload = frame[: int(rng.integers(1, len(frame)))]
        elif kind == 2:  # intact CRC, unregistered source
            payload = encode_message(
                UpdateMessage(
                    source_id=f"ghost-{int(rng.integers(0, 5))}",
                    seq=0,
                    k=1,
                    value=np.array([1.0]),
                )
            )
        else:  # intact CRC, forged far-future sampling instant
            payload = encode_message(
                UpdateMessage(
                    source_id="s1",
                    seq=0,
                    k=server.dkf.clock
                    + server._config.max_future_ticks
                    + 1000,
                    value=np.array([2.0]),
                )
            )
        server._apply_datagram(payload, ADDR)  # must never raise
        offered += 1
    counters = server.counters
    assert (
        counters.frames_decoded
        + counters.frames_corrupt
        + counters.frames_unknown
        == offered
    )
    # Every refusal is typed; future-epoch gets the sharper reason even
    # though it shares the unknown conservation bucket.
    reasons = server.poison.reasons
    assert reasons["corrupt"] > 0
    assert reasons["unknown"] > 0
    assert reasons["future_epoch"] > 0
    assert (
        reasons["unknown"] + reasons["future_epoch"]
        == counters.frames_unknown
    )
    # A legitimate frame still lands afterwards.
    before = counters.frames_decoded
    server._apply_datagram(
        encode_message(
            UpdateMessage(
                source_id="s2", seq=0, k=1, value=np.array([3.0])
            )
        ),
        ADDR,
    )
    assert counters.frames_decoded == before + 1


def test_future_epoch_frames_do_not_reach_the_filter():
    _, server = _server()
    server.dkf.advance_clock(5)
    server._apply_datagram(
        encode_message(
            UpdateMessage(
                source_id="s0",
                seq=0,
                k=2_000_000,
                value=np.array([9.0]),
            )
        ),
        ADDR,
    )
    assert server.poison.reasons == {"future_epoch": 1}
    assert not server.dkf.is_primed("s0")
    # A plausible straggler (within the future window) still applies.
    server._apply_datagram(
        encode_message(
            UpdateMessage(
                source_id="s0", seq=0, k=7, value=np.array([9.0])
            )
        ),
        ADDR,
    )
    assert server.dkf.is_primed("s0")


def test_dispatch_line_fuzz_total_over_seeded_garbage():
    config, server = _server()
    query = QueryServer(server, config)
    rng = np.random.default_rng(99)
    ops = ("answer", "answers", "forecast", "stats", "ping", "warp", 7)
    lines: list[bytes] = [
        rng.bytes(40),
        b"\xff\xfe\x00",
        b"{" * 2000,
        b"[" * 30_000 + b"]" * 30_000,
        b'{"op": "answer", "source_id": ' + b'"x"' * 1 + b"}",
        json.dumps({"op": "forecast", "source_id": "s0",
                    "steps": 10**9}).encode(),
    ]
    for _ in range(200):
        request = {
            "op": ops[int(rng.integers(0, len(ops)))],
            "source_id": ["s0", 5, None, ["a"]][int(rng.integers(0, 4))],
            "steps": int(rng.integers(-3, 4)),
            "limit": [1, -1, "all", 2**40][int(rng.integers(0, 4))],
        }
        lines.append(json.dumps(request).encode())
    for line in lines:
        out = query.dispatch_line(line)  # must never raise
        assert isinstance(out, dict)
        assert out.keys() & {"error", "ok", "answers", "forecast",
                             "source_id", "tick"}
    assert query.poison.reasons["bad_json"] >= 2


def test_dispatch_handler_error_is_caught_and_typed():
    config, server = _server()
    query = QueryServer(server, config)
    server.dkf.liveness = None  # sabotage: handler bug, not input error
    out = query.dispatch_line(
        b'{"op": "answer", "source_id": "s0"}'
    )
    assert out == {"error": "internal error"}
    assert query.poison.reasons["handler_error"] == 1


def test_fuzz_replay_is_deterministic_per_seed():
    # The same seed must offer byte-identical garbage: the chaos
    # report's fuzz_plan_digest depends on it.
    def run(seed: int) -> int:
        rng = np.random.default_rng(seed)
        digest = 0
        for _ in range(100):
            digest = zlib.crc32(
                rng.bytes(int(rng.integers(1, 64))), digest
            )
        return digest

    assert run(7) == run(7)
    assert run(7) != run(8)
