"""The wall-clock runtime end to end, and the scheduler seam.

A small :class:`~repro.wire.runtime.AsyncRuntime` run with each fleet
flavour must finish its horizon over real sockets with the books
balanced; the tick backend must satisfy the same
:class:`~repro.wire.scheduler.Scheduler` contract by delegating to the
unchanged engine.  Also covers the backpressure path end to end: a
drain budget far below the offered load must trip the overload
controller and widen δ on the fleet.
"""

import numpy as np
import pytest

from repro.dsms.engine import StreamEngine
from repro.dsms.query import ContinuousQuery
from repro.filters.models import constant_model
from repro.obs import Telemetry
from repro.streams.base import stream_from_values
from repro.wire.config import WireConfig
from repro.wire.fleet import LiteFleet, StepperFleet
from repro.wire.runtime import AsyncRuntime
from repro.wire.scheduler import Scheduler, TickScheduler


def _small_config(**overrides) -> WireConfig:
    defaults = dict(
        sources=50,
        ticks=14,
        tick_seconds=0.03,
        seed=11,
        update_prob=0.3,
        ramp_ticks=4,
        heartbeat_interval_ticks=6,
        query_rate=100.0,
    )
    defaults.update(overrides)
    return WireConfig(**defaults)


def test_async_runtime_lite_fleet_end_to_end():
    config = _small_config()
    telemetry = Telemetry(time_unit="ms")
    runtime = AsyncRuntime(config, telemetry=telemetry)
    assert runtime.run() == config.ticks

    report = runtime.report()
    assert report["backend"] == "wall-clock"
    assert report["ticks"] == config.ticks
    assert runtime.primed == config.sources
    # Real datagrams crossed real sockets, and every received one is
    # accounted for.
    server = runtime.server.counters
    fleet = runtime.fleet.counters
    assert server.frames_decoded > 0
    assert fleet.datagrams_sent >= server.datagrams_received
    assert server.datagrams_received == (
        server.frames_decoded
        + server.frames_corrupt
        + server.frames_unknown
        + server.frames_oversize
        + server.inbox_dropped
        + runtime.server.inbox_depth
    )
    # Queries were served and timed.
    assert report["queries"] > 0
    assert report["query_p99_ms"] is not None
    # The ms clock reached telemetry: history is ms-denominated and the
    # final tick is of wall-clock magnitude, not a loop counter.
    assert telemetry.history.unit == "ms"
    assert telemetry.tick >= int(
        config.ticks * config.tick_seconds * 1000 * 0.5
    )


def test_async_runtime_stepper_fleet_end_to_end():
    config = _small_config(sources=12, ticks=10, update_prob=0.05)
    runtime = AsyncRuntime(config, fleet=StepperFleet(config))
    runtime.run()
    assert runtime.primed == config.sources
    # Real endpoints acked: the sources' pending buffers settled.
    fleet = runtime.fleet
    assert fleet.acks_received > 0
    pending = sum(
        s.source.pending_acks for s in fleet._steppers
    )
    assert pending == 0


def test_backpressure_widens_delta_on_fleet():
    # Drain budget of 1 frame per tick against 50 eager sources: the
    # inbox must climb past the watermark and the overload controller
    # must widen δ on the (co-located) fleet via on_scales.
    config = _small_config(
        update_prob=1.0,
        drain_per_tick=1,
        inbox_capacity=8,
        query_rate=0.0,
        corrupt_rate=0.0,
    )
    fleet = LiteFleet(config)
    runtime = AsyncRuntime(config, fleet=fleet)
    runtime.run()
    assert np.any(fleet.delta_scale > 1.0), "no δ-widening applied"
    assert runtime.server.counters.inbox_dropped > 0
    # Tail-dropped datagrams are still conserved in the books.
    server = runtime.server.counters
    assert server.datagrams_received == (
        server.frames_decoded
        + server.frames_corrupt
        + server.frames_unknown
        + server.frames_oversize
        + server.inbox_dropped
        + runtime.server.inbox_depth
    )


def test_tick_scheduler_delegates_to_engine_unchanged():
    engine = StreamEngine()
    rng = np.random.default_rng(5)
    engine.add_source(
        "s0",
        constant_model(dims=1),
        stream_from_values(rng.normal(0, 1, 40)),
    )
    engine.submit_query(ContinuousQuery("s0", delta=1.0, query_id="q"))
    scheduler = TickScheduler(engine, max_ticks=40)
    assert isinstance(scheduler, Scheduler)
    assert scheduler.backend == "tick"
    assert scheduler.run() == 40
    report = scheduler.report()
    assert report["backend"] == "tick"
    assert report["ticks"] == 40
    assert report["readings"] == 40


def test_scheduler_is_abstract():
    with pytest.raises(TypeError):
        Scheduler()
