"""Retransmission over a real ack timeout: loss heals through resync.

The transport state machine is tick-denominated; under the wire runtime
those ticks ride the wall clock.  This test drops a real source's first
update on the floor (never transmitted), then drives the sans-IO
stepper against a live :class:`~repro.wire.server.WireServer` over real
UDP with short real sleeps standing in for tick intervals.  The ack
deadline must expire in *wall time*, the resulting resync snapshot must
prime the server, and the returning ack must settle the pending buffer.
"""

import asyncio

import numpy as np

from repro.dkf.config import DKFConfig, TransportPolicy
from repro.dkf.protocol import (
    AckMessage,
    UpdateMessage,
    build_source_index,
    decode_message,
    encode_message,
)
from repro.dkf.source import DKFSource
from repro.dkf.stepper import SourceStepper
from repro.filters.models import constant_model
from repro.wire.config import WireConfig
from repro.wire.datagram import open_udp_socket
from repro.wire.server import WireServer

SOURCE = "s0"
TICK_SLEEP = 0.02


def test_resync_after_real_ack_timeout():
    asyncio.run(_drive())


async def _drive():
    loop = asyncio.get_running_loop()
    wire_config = WireConfig(sources=1, ticks=12, ramp_ticks=1)
    server = WireServer(wire_config)
    transport = TransportPolicy(ack_timeout_ticks=2)
    dkf_config = DKFConfig(model=constant_model(dims=1), delta=0.5)
    stepper = SourceStepper(
        DKFSource(SOURCE, dkf_config, transport)
    )
    client = open_udp_socket("127.0.0.1", 0)
    index = build_source_index([SOURCE])
    acks_seen = []

    def on_ack_datagram():
        while True:
            try:
                data, _ = client.recvfrom(4096)
            except BlockingIOError:
                return
            message = decode_message(data, index, state_dim=1)
            assert isinstance(message, AckMessage)
            acks_seen.append(message)

    try:
        server_addr = server.open(loop)
        server.register(SOURCE, dkf_config, transport)
        loop.add_reader(client.fileno(), on_ack_datagram)

        # Tick 1: the source cuts its priming update -- and the "wire"
        # loses it (we simply never transmit the frame).
        messages = stepper.step(1, np.array([10.0]))
        assert len(messages) == 1
        assert isinstance(messages[0], UpdateMessage)
        assert stepper.source.pending_acks == 1
        await server.process_tick(1)
        assert not server.dkf.is_primed(SOURCE)

        # Ticks 2..: transport maintenance against the wall clock.  The
        # ack deadline (2 ticks) must lapse in real time and surface a
        # resync snapshot, which we do deliver.
        resync_tick = None
        for tick in range(2, wire_config.ticks):
            await asyncio.sleep(TICK_SLEEP)
            for message in stepper.poll(tick):
                client.sendto(encode_message(message), server_addr)
                if resync_tick is None:
                    resync_tick = tick
            await server.process_tick(tick)
            for ack in acks_seen:
                stepper.on_ack(ack, tick)
            acks_seen.clear()
            if stepper.source.pending_acks == 0 and server.dkf.is_primed(
                SOURCE
            ):
                break

        assert resync_tick is not None, "ack timeout never fired"
        # First retransmission obeys the configured deadline: not
        # before send tick + ack_timeout_ticks.
        assert resync_tick >= 1 + transport.ack_timeout_ticks
        assert stepper.source.retransmits >= 1
        assert server.dkf.is_primed(SOURCE)
        assert stepper.source.pending_acks == 0
        answer = server.dkf.value(SOURCE)
        assert np.allclose(answer, [10.0])
        assert server.counters.frames_decoded >= 1
    finally:
        loop.remove_reader(client.fileno())
        client.close()
        server.close()
