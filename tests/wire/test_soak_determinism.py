"""The soak harness determinism contract, mirroring ``repro chaos``.

Wall-clock latency is inherently non-reproducible, so the summary is
split: the ``workload`` section (who sends what, when, with which
corrupt flips) must be byte-identical across same-seed runs, while the
``measured`` section may vary.  Two runs with the same config must
agree on every workload field and on the digest; a different seed must
produce a different digest.  Gates and conservation are also checked
here on a small run so CI exercises the full summary path.
"""

import json
import math

from repro.wire.config import WireConfig
from repro.wire.soak import SOAK_SCHEMA, run_soak


def _config(seed=7, **overrides) -> WireConfig:
    defaults = dict(
        sources=120,
        ticks=16,
        tick_seconds=0.02,
        seed=seed,
        update_prob=0.25,
        corrupt_rate=0.01,
        ramp_ticks=4,
        heartbeat_interval_ticks=6,
        query_rate=50.0,
    )
    defaults.update(overrides)
    return WireConfig(**defaults)


def test_same_seed_same_workload(tmp_path):
    out_a = tmp_path / "a.json"
    out_b = tmp_path / "b.json"
    summary_a = run_soak(_config(), out=out_a)
    summary_b = run_soak(_config(), out=out_b)

    assert summary_a["schema"] == SOAK_SCHEMA
    # The deterministic half is identical, byte for byte.
    assert summary_a["workload"] == summary_b["workload"]
    assert (
        summary_a["workload"]["digest"] == summary_b["workload"]["digest"]
    )
    # And round trips through the JSON artifact unchanged.
    on_disk = json.loads(out_a.read_text())
    assert on_disk["workload"] == summary_a["workload"]


def test_different_seed_different_workload():
    digest_a = run_soak(_config(seed=7))["workload"]["digest"]
    digest_b = run_soak(_config(seed=8))["workload"]["digest"]
    assert digest_a != digest_b


def test_small_soak_passes_all_gates(tmp_path):
    bench_out = tmp_path / "BENCH_wire.json"
    summary = run_soak(_config(), bench_out=bench_out)

    gates = summary["gates"]
    assert gates["conservation_ok"], summary["wire"]
    assert gates["primed_ok"], summary["measured"]
    assert gates["query_p99_ok"]
    assert gates["ok"]

    measured = summary["measured"]
    assert measured["primed"] == 120
    floor = math.ceil(0.99 * 120)
    assert measured["primed"] >= floor

    # The bench snapshot exports the gated latency metrics.
    snapshot = json.loads(bench_out.read_text())
    assert snapshot["meta"]["bench"] == "wire"
    assert snapshot["meta"]["sources"] == 120
    names = {m["name"] for m in snapshot["gauges"]}
    assert "wire_query_p99_ms" in names
    assert "wire_query_p50_ms" in names
    assert "wire_tick_overruns" in names


def test_workload_fields_cover_every_knob_that_shapes_traffic():
    # If a new config knob changes the offered traffic but is left out
    # of workload_fields(), same-"workload" claims silently weaken.
    fields = _config().workload_fields()
    for knob in (
        "sources",
        "ticks",
        "seed",
        "update_prob",
        "corrupt_rate",
        "ramp_ticks",
        "heartbeat_interval_ticks",
        "ack_timeout_ticks",
        "state_dim",
        "delta",
    ):
        assert knob in fields, knob
