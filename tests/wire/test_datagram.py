"""Wire-vs-fabric equivalence: real UDP must keep the fabric's books.

The wire layer claims PROTOCOL.md §9 adds *nothing* to the codec: a
datagram is one §5 frame, and corruption/discard accounting over real
sockets matches the in-process :class:`~repro.dsms.network.
NetworkFabric` exactly.  The property test here runs the same message
sequence with the same deterministic corrupt schedule through both
paths and requires the deliver/corrupt ledgers to agree bucket for
bucket -- both sides derive the flipped bit from the same
``crc32("corrupt:<index>")`` rule, so even the astronomically rare
corrupted-frame-that-still-decodes case would land identically.
"""

import socket

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dkf.protocol import (
    HeartbeatMessage,
    UpdateMessage,
    build_source_index,
    decode_message,
    encode_message,
)
from repro.dsms.network import LinkConfig, NetworkFabric
from repro.errors import ConfigurationError, CorruptMessageError
from repro.wire.datagram import (
    MAX_DATAGRAM_BYTES,
    WireCounters,
    corrupt_datagram,
    open_udp_socket,
)
from repro.wire.fleet import collision_free_ids

SOURCE = "s0"


def _messages(values):
    return [
        UpdateMessage(
            source_id=SOURCE, seq=i, k=i, value=np.array([v])
        )
        for i, v in enumerate(values)
    ]


def _fabric_books(messages, corrupt_set):
    """Offer the sequence through the in-process fabric; return books."""
    delivered = []
    fabric = NetworkFabric(deliver=delivered.append)
    fabric.add_link(
        SOURCE,
        LinkConfig(corrupt_fn=lambda index: index in corrupt_set),
    )
    for message in messages:
        fabric.send(message)
    fabric.drain(force=True)
    stats = fabric.stats_for(SOURCE)
    return delivered, stats.corrupted


def _wire_books(messages, corrupt_set):
    """Send the same frames over real localhost UDP; return books."""
    receiver = open_udp_socket("127.0.0.1", 0)
    sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    receiver.settimeout(2.0)
    try:
        addr = receiver.getsockname()
        for index, message in enumerate(messages):
            payload = encode_message(message)
            if index in corrupt_set:
                payload = corrupt_datagram(payload, index)
            sender.sendto(payload, addr)
        delivered = []
        corrupt = 0
        index = build_source_index([SOURCE])
        for _ in messages:
            data, _ = receiver.recvfrom(MAX_DATAGRAM_BYTES + 1)
            try:
                delivered.append(
                    decode_message(data, index, state_dim=1)
                )
            except CorruptMessageError:
                corrupt += 1
        return delivered, corrupt
    finally:
        sender.close()
        receiver.close()


@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
    corrupt_data=st.data(),
)
def test_udp_roundtrip_matches_fabric_accounting(values, corrupt_data):
    """Same frames, same corrupt schedule: fabric and wire books agree."""
    messages = _messages(values)
    corrupt_set = corrupt_data.draw(
        st.sets(
            st.integers(min_value=0, max_value=len(messages) - 1),
            max_size=len(messages),
        )
    )
    fabric_delivered, fabric_corrupt = _fabric_books(
        messages, corrupt_set
    )
    wire_delivered, wire_corrupt = _wire_books(messages, corrupt_set)
    assert wire_corrupt == fabric_corrupt
    assert len(wire_delivered) == len(fabric_delivered)
    for ours, theirs in zip(wire_delivered, fabric_delivered):
        assert ours.source_id == theirs.source_id
        assert ours.seq == theirs.seq
        assert np.array_equal(ours.value, theirs.value)


def test_corrupt_datagram_always_trips_crc():
    """A single flipped bit can never survive the CRC-32 trailer."""
    message = HeartbeatMessage(source_id=SOURCE, seq=3, k=9)
    payload = encode_message(message)
    for index in range(64):
        flipped = corrupt_datagram(payload, index)
        with pytest.raises(CorruptMessageError):
            decode_message(flipped, [SOURCE], state_dim=1)


def test_counters_conservation_accounting():
    counters = WireCounters(
        datagrams_received=10,
        frames_decoded=6,
        frames_corrupt=2,
        frames_unknown=1,
        inbox_dropped=1,
    )
    assert counters.conservation_holds()
    counters.frames_decoded += 5  # more accounted than received
    assert not counters.conservation_holds()


def test_collision_free_ids_are_unique_and_stable():
    import zlib

    ids_a = collision_free_ids(5000)
    ids_b = collision_free_ids(5000)
    assert ids_a == ids_b
    hashes = {zlib.crc32(s.encode()) for s in ids_a}
    assert len(hashes) == len(ids_a)


def test_oversize_datagrams_are_counted_not_decoded():
    received = []
    counters = WireCounters()
    receiver = open_udp_socket("127.0.0.1", 0)
    sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    receiver.settimeout(2.0)
    try:
        addr = receiver.getsockname()
        sender.sendto(b"x" * (MAX_DATAGRAM_BYTES + 1), addr)
        data, _ = receiver.recvfrom(MAX_DATAGRAM_BYTES + 1)
        counters.datagrams_received += 1
        counters.bytes_received += len(data)
        if len(data) > MAX_DATAGRAM_BYTES:
            counters.frames_oversize += 1
        else:
            received.append(data)
    finally:
        sender.close()
        receiver.close()
    assert counters.frames_oversize == 1
    assert not received


def test_open_udp_socket_rejects_bad_host():
    with pytest.raises(OSError):
        open_udp_socket("256.256.256.256", 0)


def test_lite_fleet_rejects_multidim_state():
    from repro.wire import LiteFleet, WireConfig

    config = WireConfig(sources=4, ticks=4, ramp_ticks=2, state_dim=2)
    with pytest.raises(ConfigurationError):
        LiteFleet(config)
