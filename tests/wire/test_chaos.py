"""Chaos machinery: seeded decisions replay, reports are byte-identical.

The unit half drives :class:`~repro.wire.chaos.ChannelShaper` with a
fake send seam and proves the decision schedule is a pure function of
``(seed, channel)`` -- same seed, same faults, regardless of traffic
interleaving -- and that partitions sever exactly the scheduled subset.
The end-to-end half runs :func:`~repro.wire.chaos.run_chaos` twice at
miniature scale over real sockets and ``cmp``-asserts the two
``chaos-report.json`` artifacts byte for byte, the same gate CI arms.
"""

import json
import struct
import zlib

import pytest

from repro.dsms.faults import FaultSchedule
from repro.errors import ConfigurationError
from repro.wire.chaos import (
    CHAOS_SCHEMA,
    ChannelShaper,
    ChaosProfile,
    run_chaos,
)
from repro.wire.config import WireConfig

#: A §5-shaped payload: tag byte, source hash, then opaque bytes.
def _payload(source_id: str = "s0", filler: bytes = b"x" * 20) -> bytes:
    return b"\x01" + struct.pack(
        "!I", zlib.crc32(source_id.encode())
    ) + filler


def _busy_profile(**overrides) -> ChaosProfile:
    defaults = dict(
        corrupt_prob=0.2,
        duplicate_prob=0.2,
        reorder_prob=0.3,
        reorder_window=3,
        delay_prob=0.0,  # delays need a loop; unit tests stay sync
    )
    defaults.update(overrides)
    return ChaosProfile(**defaults)


def _drive(shaper: ChannelShaper, count: int = 500) -> list[bytes]:
    sent: list[bytes] = []
    for i in range(count):
        shaper(_payload(filler=bytes([i % 256]) * 20), ("h", 1),
               lambda p, a: sent.append(p))
    shaper.pump()
    return sent


def test_shaper_decisions_replay_per_seed():
    profile = _busy_profile()
    first = _drive(ChannelShaper("data", profile, seed=7))
    second = _drive(ChannelShaper("data", profile, seed=7))
    assert first == second
    # Every fault class actually fired under the busy profile.
    shaper = ChannelShaper("data", profile, seed=7)
    _drive(shaper)
    summary = shaper.summary()
    for key in ("dropped", "corrupted", "duplicated", "reordered"):
        assert summary[key] > 0, f"no {key} decisions in 500 sends"
    assert summary["offered"] == 500
    # A different seed disagrees somewhere in 500 decisions.
    assert _drive(ChannelShaper("data", profile, seed=8)) != first


def test_shaper_channels_are_independent():
    profile = _busy_profile()
    data = ChannelShaper("data", profile, seed=7)
    ack = ChannelShaper("ack", profile, seed=7)
    assert data.schedule_digest() != ack.schedule_digest()
    # The digest is a pure function of (seed, channel): two fresh
    # instances agree before any traffic flows.
    assert (
        ChannelShaper("data", profile, seed=7).schedule_digest()
        == data.schedule_digest()
    )


def test_shaper_partition_severs_scheduled_subset_only():
    profile = _busy_profile(
        corrupt_prob=0.0, duplicate_prob=0.0, reorder_prob=0.0,
        ge_loss_good=0.0, ge_loss_bad=0.0, ge_p_enter=0.0,
    )
    schedule = FaultSchedule(seed=7)
    schedule.partition(["s0"], ["server"], at=2, heal_at=5)
    lookup = {zlib.crc32(b"s0"): "s0", zlib.crc32(b"s1"): "s1"}
    shaper = ChannelShaper(
        "data", profile, seed=7, schedule=schedule, index_lookup=lookup
    )
    sent: list[bytes] = []
    send = lambda p, a: sent.append(p)  # noqa: E731

    schedule.observe_tick(3)  # partition open
    shaper(_payload("s0"), ("h", 1), send)
    shaper(_payload("s1"), ("h", 1), send)
    assert shaper.partition_dropped == 1
    assert len(sent) == 1

    schedule.observe_tick(6)  # healed
    shaper(_payload("s0"), ("h", 1), send)
    assert shaper.partition_dropped == 1
    assert len(sent) == 2


def test_reorder_window_holds_then_releases_on_pump():
    profile = _busy_profile(
        corrupt_prob=0.0, duplicate_prob=0.0, reorder_prob=1.0,
        reorder_window=4,
        ge_loss_good=0.0, ge_loss_bad=0.0, ge_p_enter=0.0,
    )
    shaper = ChannelShaper("data", profile, seed=7)
    sent: list[bytes] = []
    for i in range(6):
        shaper(_payload(filler=bytes([i]) * 8), ("h", 1),
               lambda p, a: sent.append(p))
    # Window 4: the first two overflowed out in arrival order.
    assert [p[-1] for p in sent] == [0, 1]
    shaper.pump()
    assert [p[-1] for p in sent] == [0, 1, 2, 3, 4, 5]
    assert shaper.pump() is None  # idempotent on empty


def test_profile_reference_schedules_inside_horizon():
    profile = ChaosProfile.reference(30)
    assert 0 < profile.partition_at < profile.partition_heal_at
    assert profile.partition_heal_at < profile.drain_tick < 30
    assert profile.rebind_tick < 30
    assert profile.stall_ticks and all(
        0 < t < 30 for t in profile.stall_ticks
    )
    assert profile.as_dict()["stall_ticks"] == list(profile.stall_ticks)


def test_run_chaos_rejects_drain_past_horizon():
    config = WireConfig(sources=4, ticks=10, ramp_ticks=2)
    with pytest.raises(ConfigurationError):
        run_chaos(
            config, profile=ChaosProfile(drain_tick=10)
        )


def _mini_config(seed: int = 7) -> WireConfig:
    return WireConfig(
        sources=24,
        ticks=14,
        tick_seconds=0.06,
        seed=seed,
        update_prob=0.3,
        ramp_ticks=4,
        heartbeat_interval_ticks=6,
        query_rate=100.0,
        query_idle_timeout_s=0.4,
    )


def test_run_chaos_end_to_end_report_byte_identical(tmp_path):
    first = tmp_path / "report-a.json"
    second = tmp_path / "report-b.json"
    summary_a = run_chaos(_mini_config(), report_out=first)
    summary_b = run_chaos(_mini_config(), report_out=second)
    assert first.read_bytes() == second.read_bytes()

    report = json.loads(first.read_text())
    assert report["schema"] == CHAOS_SCHEMA
    assert report["seed"] == 7
    assert report["schedule"]["data_decisions_digest"] != 0
    assert report["schedule"]["fuzz_plan_digest"] != 0

    for summary in (summary_a, summary_b):
        gates = summary["gates"]
        failed = [k for k, v in gates.items() if not v]
        assert gates["ok"], f"chaos gates failed: {failed}"
        # Every chaos layer demonstrably fired.  (Individual fault
        # classes are probabilistic at miniature traffic volume, so the
        # shaping assert is on the union, not per class.)
        chaos = summary["chaos"]
        assert chaos["data_shaper"]["offered"] > 0
        faults = sum(
            chaos[shaper][key]
            for shaper in ("data_shaper", "ack_shaper")
            for key in ("dropped", "corrupted", "duplicated",
                        "reordered", "delayed", "partition_dropped")
        )
        assert faults > 0
        assert chaos["rebinds"] == 1
        assert chaos["stalls_injected"] == 1
        assert chaos["fuzz_datagrams"] > 0
        assert chaos["drill"]["acked_updates_lost"] == 0
        assert chaos["drill"]["bit_identical"] is True
        assert summary["measured"]["drains"] == 1
        assert summary["measured"]["restarts"] == 1
        # The fuzz barrage's refusals are all typed.
        rejections = summary["wire"]["rejections"]
        assert rejections.get("corrupt", 0) > 0
        assert rejections.get("oversize", 0) > 0
        assert summary["wire"]["conservation"]["holds"] is True
