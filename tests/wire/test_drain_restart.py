"""Zero-loss drain and hot restart: the two recovery gates, directly.

The server-level half proves the checkpoint/restore cycle without
sockets: a :meth:`WireServer.checkpoint_snapshot` validates against the
PR-3 schema and :meth:`WireServer.restore` rebuilds the DKF state
bit-identically (canonical-JSON CRC equality of the re-export).  The
runtime-level half runs a real mid-soak drill through a minimal test
coordinator -- drain on one tick, restart on the next -- and asserts
the headline invariant: **no update the fleet ever saw acknowledged is
missing from the restored server**, and the fleet re-primes to full
coverage on the same endpoints.
"""

import json
import zlib

import numpy as np
import pytest

from repro.dkf.config import DKFConfig
from repro.dkf.protocol import UpdateMessage
from repro.errors import ConfigurationError
from repro.filters.models import constant_model
from repro.resilience.checkpoint import validate_checkpoint
from repro.wire.config import WireConfig
from repro.wire.runtime import AsyncRuntime
from repro.wire.server import WireServer

SOURCES = ("a", "b", "c")


def _digest(sources: dict) -> int:
    return zlib.crc32(
        json.dumps(sources, sort_keys=True,
                   separators=(",", ":")).encode()
    )


def _loaded_server() -> WireServer:
    config = WireConfig(
        sources=len(SOURCES), ticks=8, ramp_ticks=1, tick_seconds=0.5
    )
    server = WireServer(config)
    server.register_fleet(
        SOURCES, DKFConfig(model=constant_model(dims=1), delta=1.0)
    )
    rng = np.random.default_rng(3)
    for k in range(1, 6):
        server.dkf.advance_clock(k)
        for i, source_id in enumerate(SOURCES):
            server.dkf.receive(
                UpdateMessage(
                    source_id=source_id,
                    seq=k - 1,
                    k=k,
                    value=np.array([rng.normal()]),
                )
            )
    server.dkf.take_outbox()
    return server


def test_checkpoint_restore_is_bit_identical():
    server = _loaded_server()
    snapshot = server.checkpoint_snapshot(5)
    validate_checkpoint(snapshot)  # PR-3 schema, as-is
    before = _digest(snapshot["sources"])

    server.restore(snapshot)
    reexported = {
        source_id: server.dkf.export_source_state(source_id)
        for source_id in server.dkf.source_ids
    }
    assert _digest(reexported) == before
    assert server.dkf.clock == snapshot["server_clock"]
    for source_id in SOURCES:
        assert server.dkf.is_primed(source_id)
        assert (
            reexported[source_id]["expected_seq"]
            == snapshot["sources"][source_id]["expected_seq"]
        )


def test_restore_requires_registered_fleet():
    config = WireConfig(sources=1, ticks=4, ramp_ticks=1)
    bare = WireServer(config)
    snapshot = _loaded_server().checkpoint_snapshot(5)
    with pytest.raises(ConfigurationError):
        bare.restore(snapshot)


def test_restore_forgets_peer_addresses():
    # A restarted process would not remember where sources live; acks
    # must wait for each source's next frame to re-learn its address.
    server = _loaded_server()
    server._addrs["a"] = ("127.0.0.1", 50000)
    server.restore(server.checkpoint_snapshot(5))
    assert server._addrs == {}


class _DrillCoordinator:
    """Minimal chaos stand-in: drain at one tick, restart the next."""

    def __init__(self, drain_tick: int) -> None:
        self.drain_tick = drain_tick
        self.acked_before: dict[str, int] = {}
        self.snapshot: dict | None = None
        self.snapshot_digest: int | None = None
        self.bit_identical: bool | None = None

    def install(self, runtime, loop) -> None:
        """No shapers to arm; the drill is tick-driven."""

    async def on_tick(self, tick: int, runtime) -> None:
        """Drain exactly once, restart exactly one tick later."""
        if tick == self.drain_tick:
            self.acked_before = runtime.fleet.acked_high()
            self.snapshot = await runtime.drain()
            self.snapshot_digest = _digest(self.snapshot["sources"])
        elif self.snapshot is not None and self.bit_identical is None:
            await runtime.restart(self.snapshot)
            reexported = {
                source_id: runtime.server.dkf.export_source_state(
                    source_id
                )
                for source_id in runtime.server.dkf.source_ids
            }
            self.bit_identical = (
                _digest(reexported) == self.snapshot_digest
            )

    async def teardown(self, runtime) -> None:
        """Nothing to reap; both phases completed inside the horizon."""


def test_mid_soak_drain_restart_loses_no_acked_update():
    config = WireConfig(
        sources=40,
        ticks=16,
        tick_seconds=0.04,
        seed=21,
        update_prob=0.4,
        ramp_ticks=4,
        heartbeat_interval_ticks=6,
        query_rate=50.0,
    )
    drill = _DrillCoordinator(drain_tick=10)
    runtime = AsyncRuntime(config, chaos=drill)
    assert runtime.run() == config.ticks

    assert runtime.drains == 1
    assert runtime.restarts == 1
    assert drill.bit_identical is True
    # The zero-loss invariant: every cumulative ack the fleet received
    # before the drain is covered by the checkpointed expected_seq.
    assert drill.acked_before, "fleet never saw an ack before drain"
    snapshot = drill.snapshot
    lost = {
        source_id: acked
        for source_id, acked in drill.acked_before.items()
        if snapshot["sources"][source_id]["expected_seq"] < acked
    }
    assert lost == {}
    # Back on the same endpoints, the fleet re-primed fully.
    assert runtime.primed == config.sources
    report = runtime.report()
    assert report["drains"] == 1
    assert report["restarts"] == 1
