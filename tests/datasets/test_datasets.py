"""Unit tests for the paper's three experimental datasets."""

import numpy as np

from repro.datasets.http_traffic import (
    coefficient_of_variation,
    http_traffic_dataset,
)
from repro.datasets.moving_object import (
    MAX_SPEED,
    SAMPLING_DT,
    moving_object_dataset,
    segment_change_points,
)
from repro.datasets.power_load import dominant_period, power_load_dataset


class TestMovingObject:
    def test_paper_dimensions(self):
        stream = moving_object_dataset()
        assert len(stream) == 4000  # paper: 4000 points
        assert stream.dim == 2
        assert stream.sampling_interval == 0.1  # paper: 100 ms

    def test_speed_cap(self):
        stream = moving_object_dataset(n=2000)
        speeds = (
            np.linalg.norm(np.diff(stream.values(), axis=0), axis=1) / SAMPLING_DT
        )
        assert speeds.max() <= MAX_SPEED + 1e-6

    def test_deterministic_default_seed(self):
        a = moving_object_dataset(n=300)
        b = moving_object_dataset(n=300)
        assert np.array_equal(a.values(), b.values())

    def test_optional_noise(self):
        clean = moving_object_dataset(n=300)
        noisy = moving_object_dataset(n=300, noise_std=1.0)
        assert not np.array_equal(clean.values(), noisy.values())

    def test_segment_change_points_sparse(self):
        stream = moving_object_dataset(n=2000)
        changes = segment_change_points(stream)
        # Segments are 25-250 samples, so manoeuvres are rare events.
        assert 5 <= len(changes) <= 100

    def test_change_points_are_real_velocity_changes(self):
        stream = moving_object_dataset(n=1000)
        velocity = np.diff(stream.values(), axis=0)
        for k in segment_change_points(stream)[:10]:
            assert not np.allclose(velocity[k - 1], velocity[k])


class TestPowerLoad:
    def test_paper_point_count(self):
        assert len(power_load_dataset()) == 5831  # paper: 5831 points

    def test_diurnal_period(self):
        stream = power_load_dataset(n=2000)
        assert np.isclose(dominant_period(stream), 24.0, rtol=0.05)

    def test_positive_load(self):
        assert power_load_dataset(n=2000).component(0).min() > 0

    def test_peak_in_working_hours(self):
        """Per the paper, load peaks during working hours and dips at
        night/early morning."""
        stream = power_load_dataset(n=24 * 60)
        values = stream.component(0)
        hours = np.arange(len(values)) % 24
        afternoon = values[(hours >= 12) & (hours <= 16)].mean()
        early_morning = values[(hours >= 1) & (hours <= 5)].mean()
        assert afternoon > early_morning + 100

    def test_weekend_dip(self):
        stream = power_load_dataset(n=24 * 70, noise_std=0.0)
        values = stream.component(0)
        day = (np.arange(len(values)) // 24) % 7
        weekday = values[day < 5].mean()
        weekend = values[day >= 5].mean()
        assert weekday > weekend

    def test_deterministic(self):
        a = power_load_dataset(n=500)
        b = power_load_dataset(n=500)
        assert np.array_equal(a.values(), b.values())


class TestRegimeSwitch:
    def test_labels_align_with_data(self):
        from repro.datasets.regime_switch import (
            regime_labels,
            regime_switch_dataset,
        )

        n, segment = 900, 300
        stream = regime_switch_dataset(n=n, segment=segment, noise_std=0.0)
        labels = regime_labels(n=n, segment=segment)
        assert len(labels) == n
        values = stream.component(0)
        # Flat regime: zero first difference.
        flat = values[:segment]
        assert np.allclose(np.diff(flat), 0.0)
        # Ramp regime: constant non-zero first difference.
        ramp = values[segment : 2 * segment]
        diffs = np.diff(ramp)
        assert np.allclose(diffs, diffs[0])
        assert abs(diffs[0]) > 0
        # Sine regime: oscillation around its start.
        sine = values[2 * segment : 3 * segment]
        assert sine.std() > 1.0

    def test_continuity_across_switches(self):
        from repro.datasets.regime_switch import regime_switch_dataset

        stream = regime_switch_dataset(n=1000, segment=200, noise_std=0.0)
        values = stream.component(0)
        jumps = np.abs(np.diff(values))
        # Regimes hand over at the previous regime's last value, so no
        # discontinuity larger than one regime step occurs.
        assert jumps.max() < 10.0

    def test_deterministic(self):
        from repro.datasets.regime_switch import regime_switch_dataset

        a = regime_switch_dataset(n=300)
        b = regime_switch_dataset(n=300)
        assert np.array_equal(a.values(), b.values())

    def test_validation(self):
        import pytest

        from repro.datasets.regime_switch import regime_switch_dataset
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            regime_switch_dataset(n=0)
        with pytest.raises(ConfigurationError):
            regime_switch_dataset(n=10, segment=1)


class TestHttpTraffic:
    def test_dimensions(self):
        stream = http_traffic_dataset(n=1000)
        assert len(stream) == 1000
        assert stream.dim == 1
        assert stream.sampling_interval == 10.0  # 10 time-stamp units

    def test_non_negative_counts(self):
        assert http_traffic_dataset(n=1000).component(0).min() >= 0

    def test_noisier_than_power_load(self):
        """The paper's regime assignment: HTTP traffic has no clean trend,
        power load does."""
        http_cv = coefficient_of_variation(http_traffic_dataset(n=1500))
        load_cv = coefficient_of_variation(power_load_dataset(n=1500))
        assert http_cv > 2 * load_cv

    def test_no_dominant_low_frequency_trend(self):
        """Spectral mass should not concentrate in one periodic component
        the way the power load's does."""
        values = http_traffic_dataset(n=2000).component(0)
        centred = values - values.mean()
        spectrum = np.abs(np.fft.rfft(centred)) ** 2
        spectrum[0] = 0.0
        top_share = spectrum.max() / spectrum.sum()
        assert top_share < 0.2

    def test_deterministic(self):
        a = http_traffic_dataset(n=400)
        b = http_traffic_dataset(n=400)
        assert np.array_equal(a.values(), b.values())
