"""Ablation: online model selection vs fixed models on regime-switching
data (paper Section 6, item 2 -- "updating the state transition matrices
online as the streaming data trend changes").

On a stream that cycles flat -> ramp -> sine regimes, every fixed model is
wrong two-thirds of the time.  The model-bank DKF re-weights its
candidates from the innovation likelihood and should land near the best
fixed model without knowing the regime schedule -- at ``len(models)``
times the filter compute.
"""

import math

from benchmarks.conftest import run_once, show
from repro.baselines.caching import CachedValueScheme
from repro.datasets.regime_switch import regime_switch_dataset
from repro.dkf.bank_session import ModelBankSession
from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.filters.models import constant_model, linear_model, sinusoidal_model
from repro.metrics.evaluation import evaluate_scheme

DELTA = 2.0
SINE_OMEGA = 2 * math.pi / 50


def _candidates():
    return [
        ("constant", constant_model(dims=1)),
        ("linear", linear_model(dims=1, dt=1.0)),
        ("sinusoidal", sinusoidal_model(omega=SINE_OMEGA, theta=0.0)),
    ]


def _comparison():
    stream = regime_switch_dataset(n=3000, segment=250)
    results = {}
    results["caching"] = evaluate_scheme(
        CachedValueScheme.from_precision(DELTA, dims=1), stream
    ).update_percentage
    for name, model in _candidates():
        results[f"fixed-{name}"] = evaluate_scheme(
            DKFSession(DKFConfig(model=model, delta=DELTA)), stream
        ).update_percentage
    results["bank"] = evaluate_scheme(
        ModelBankSession(
            [m for _, m in _candidates()], delta=DELTA, verify_mirror=False
        ),
        stream,
    ).update_percentage
    return results


def test_ablation_model_bank(benchmark):
    results = run_once(benchmark, _comparison)
    show(
        "Ablation: model bank vs fixed models (regime-switching stream, "
        f"delta = {DELTA:g})",
        "\n".join(f"  {k:16s} {v:6.2f}% updates" for k, v in results.items()),
    )
    fixed = {k: v for k, v in results.items() if k.startswith("fixed-")}
    best_fixed = min(fixed.values())
    worst_fixed = max(fixed.values())

    # The bank adapts: close to the best fixed model...
    assert results["bank"] < 1.5 * best_fixed
    # ...and clearly better than the worst fixed choice and caching.
    assert results["bank"] < worst_fixed
    assert results["bank"] < results["caching"]
