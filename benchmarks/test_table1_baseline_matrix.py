"""Table 1 quantitative proxy: every scheme on every dataset.

The paper's Table 1 compares the DKF qualitatively against the
STREAM/AURORA/COUGAR approaches.  This bench substantiates the central
quantitative claim behind it -- the prediction-based scheme transmits the
least on every workload class -- by running the full scheme x dataset
matrix at each dataset's reference precision.
"""

from benchmarks.conftest import run_once, show
from repro.experiments import table1
from repro.metrics.compare import format_results


def test_table1_scheme_dataset_matrix(benchmark):
    results = run_once(benchmark, table1.matrix)
    show("Table 1 proxy: scheme x dataset matrix", format_results(results))

    by_stream = {}
    for r in results:
        by_stream.setdefault(r.stream, {})[r.scheme] = r

    # On every dataset, the best DKF variant transmits no more than the
    # STREAM-style caching baseline.
    for stream, rows in by_stream.items():
        best_dkf = min(
            v.update_fraction for k, v in rows.items() if k.startswith("dkf")
        )
        assert best_dkf <= rows["caching"].update_fraction + 0.02, stream

    # Trend-exploiting models win decisively on the trending datasets.
    moving = by_stream["moving-object"]
    assert (
        moving["dkf-linear"].update_fraction
        < 0.5 * moving["caching"].update_fraction
    )
    load = by_stream["power-load"]
    assert (
        load["dkf-sinusoidal"].update_fraction
        < load["caching"].update_fraction
    )

    # Graceful degradation on the noisy dataset: smoothing turns a
    # hopeless prediction problem into a near-silent stream.
    http = by_stream["http-traffic"]
    assert (
        http["dkf-linear+smoothing"].update_fraction
        < 0.2 * http["caching"].update_fraction
    )
