"""Figure 9: the Example 3 network-monitoring dataset (synthetic stand-in;
see the substitution note in repro/datasets/http_traffic.py).

Regenerates the HTTP packet-count series and verifies the documented
characteristics: noisy, bursty, and with no dominant periodic trend --
the regime where smoothing is required before prediction helps.
"""

import numpy as np

from benchmarks.conftest import run_once, show
from repro.datasets.http_traffic import (
    coefficient_of_variation,
    http_traffic_dataset,
)
from repro.datasets.power_load import power_load_dataset


def test_fig09_http_traffic_dataset(benchmark):
    stream = run_once(benchmark, http_traffic_dataset)

    assert stream.dim == 1
    values = stream.component(0)
    assert values.min() >= 0

    # Noisy with no visible trend: high CV, no dominant spectral line.
    cv = coefficient_of_variation(stream)
    load_cv = coefficient_of_variation(power_load_dataset(n=2000))
    assert cv > 2 * load_cv

    centred = values - values.mean()
    spectrum = np.abs(np.fft.rfft(centred)) ** 2
    spectrum[0] = 0.0
    top_share = spectrum.max() / spectrum.sum()
    assert top_share < 0.2

    summary = stream.summary()
    show(
        "Figure 9: network-monitoring dataset",
        "\n".join(
            [
                f"points            : {summary['length']} "
                "(counts per 10 time-stamp units)",
                f"count range       : [{summary['min']:.0f}, {summary['max']:.0f}]",
                f"coefficient of var: {cv:.2f} "
                f"(power-load reference: {load_cv:.2f})",
                f"top spectral share: {top_share:.3f} (no dominant trend)",
            ]
        ),
    )
