"""Figure 12: performance of DKF for precision width delta = 10 as the
smoothing factor F varies (Example 3).

Paper shape: "Lowering F improves the performance as the variation in the
data value decreases" -- update percentage is monotone increasing in F for
every scheme.
"""

from benchmarks.conftest import run_once, show
from repro.experiments import example3
from repro.metrics.compare import format_table


def test_fig12_update_percentage_vs_smoothing_factor(benchmark):
    table = run_once(benchmark, example3.figure12_smoothing_sweep)
    show(
        "Figure 12: % updates vs smoothing factor (delta = 10, Example 3)",
        format_table(table),
    )

    # Monotone: smaller F -> fewer updates, for every scheme.
    for scheme in table.columns:
        series = table.column(scheme)
        assert series == sorted(series)

    # The dynamic range is large: heavy smoothing suppresses almost all
    # traffic; raw-tracking smoothing transmits most readings.
    for scheme in table.columns:
        series = table.column(scheme)
        assert series[0] < 5.0
        assert series[-1] > 50.0
