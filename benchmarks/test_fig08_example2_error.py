"""Figure 8: average error values (Example 2).

Paper shape: comparable errors at low precision widths; at higher
precisions the caching model's error is slightly lower (the DKF trades
in-bound accuracy for fewer transmissions), and every error respects the
precision bound.
"""

from benchmarks.conftest import run_once, show
from repro.experiments import example2
from repro.metrics.compare import format_table


def test_fig08_average_error_sweep(benchmark):
    table = run_once(benchmark, example2.figure8_error)
    show("Figure 8: average error vs precision width (Example 2)", format_table(table))

    # Scalar stream: error <= delta everywhere.
    for delta, cells in zip(table.values, table.cells):
        for value in cells:
            assert value <= delta + 1e-9

    # Errors grow with delta for every scheme.
    for scheme in table.columns:
        series = table.column(scheme)
        assert series[-1] > series[0]

    # In the mid-range (the paper's "higher precisions" regime) caching's
    # average error is lower: it updates more, so it stays closer inside
    # the bound.  (At the extreme widths the near-silent sinusoidal model
    # tracks well enough to re-take the lead.)
    for delta in (50.0, 100.0):
        row = table.row(delta)
        assert row["caching"] <= row["dkf-sinusoidal"]

    # At the tightest width all three are comparable (within delta/2).
    tight_delta = table.values[0]
    tight = table.row(tight_delta)
    spread = max(tight.values()) - min(tight.values())
    assert spread <= 0.5 * tight_delta
