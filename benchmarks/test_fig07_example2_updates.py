"""Figure 7: number of updates received at the central server (Example 2).

Full-size sweep over caching, 1-D linear DKF and sinusoidal DKF on the
power-load series.  Paper shape: the correct (sinusoidal) model beats the
generic linear model by roughly 10 points, and both beat caching.
"""

from benchmarks.conftest import run_once, show
from repro.experiments import example2
from repro.metrics.compare import format_table


def test_fig07_update_percentage_sweep(benchmark):
    table = run_once(benchmark, example2.figure7_updates)
    show("Figure 7: % updates vs precision width (Example 2)", format_table(table))

    for delta in table.values:
        row = table.row(delta)
        # Ordering: sinusoidal < linear < caching.  At the widest deltas
        # the linear model and caching converge (both near-silent), so the
        # strict ordering only binds through the figure's core regime.
        assert row["dkf-sinusoidal"] < row["dkf-linear"]
        if delta <= 100.0:
            assert row["dkf-linear"] < row["caching"]
        else:
            assert row["dkf-linear"] < row["caching"] + 2.0

    # The "correct model" bonus is material (paper: ~10 points) at the
    # moderate precision widths.
    mid = table.row(50.0)
    assert mid["dkf-linear"] - mid["dkf-sinusoidal"] > 5.0

    # Updates decrease with delta for every scheme.
    for scheme in table.columns:
        series = table.column(scheme)
        assert all(a >= b for a, b in zip(series, series[1:]))
