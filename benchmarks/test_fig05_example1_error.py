"""Figure 5: average error produced by different KF models (Example 1).

Paper shape: constant-DKF and caching have similar error curves; the
linear DKF is slightly worse at low precision widths; everything is
bounded by the summed two-coordinate tolerance 2*delta.
"""

from benchmarks.conftest import run_once, show
from repro.experiments import example1
from repro.metrics.compare import format_table


def test_fig05_average_error_sweep(benchmark):
    table = run_once(benchmark, example1.figure5_error)
    show("Figure 5: average error vs precision width (Example 1)", format_table(table))

    # Hard bound: per-component error <= delta, so |dx|+|dy| <= 2 delta.
    for delta, cells in zip(table.values, table.cells):
        for value in cells:
            assert value <= 2 * delta + 1e-9

    # Errors grow with the allowed tolerance for every scheme.
    for scheme in table.columns:
        series = table.column(scheme)
        assert series[-1] > series[0]

    # Caching and constant-KF error curves travel together.
    for delta in table.values:
        row = table.row(delta)
        assert abs(row["dkf-constant"] - row["caching"]) <= 0.5 * delta

    # The linear model trades accuracy inside the bound for silence: its
    # average error exceeds caching's at tight precisions.
    tight = table.row(table.values[0])
    assert tight["dkf-linear"] >= tight["caching"]
