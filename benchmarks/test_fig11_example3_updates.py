"""Figure 11: performance of DKF on smoothed data with F = 1e-7
(Example 3).

All schemes operate on the same smoothed value stream (caching replays a
pre-smoothed trace; the DKF sessions smooth at the source with KF_c).
Paper shape: once smoothing exposes the slow trend, the linear model
yields the best communication reduction -- visible at tight precisions,
where the smoothed drift dominates the update budget.
"""

from benchmarks.conftest import run_once, show
from repro.experiments import example3
from repro.metrics.compare import format_table


def test_fig11_updates_on_smoothed_data(benchmark):
    table = run_once(benchmark, example3.figure11_updates)
    show(
        "Figure 11: % updates vs precision width on smoothed data "
        "(F = 1e-7, Example 3)",
        format_table(table),
    )

    # Tightest precision: the linear model's trend-following wins.
    tight = table.row(table.values[0])
    assert tight["dkf-linear"] < tight["caching"]
    assert tight["dkf-linear"] < tight["dkf-constant"]

    # Updates decrease with delta for every scheme.
    for scheme in table.columns:
        series = table.column(scheme)
        assert all(a >= b - 0.2 for a, b in zip(series, series[1:]))

    # Smoothing makes the whole problem cheap: at delta = 10 every scheme
    # transmits a tiny fraction of readings.
    loose = table.row(10.0)
    assert all(v < 5.0 for v in loose.values())
