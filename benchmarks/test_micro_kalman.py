"""Micro-benchmarks of the filter cores.

Substantiates the paper's feasibility premise: "the computational cost
incurred by KF is insignificant in many practical sensing scenarios".
These are true pytest-benchmark microbenches (many rounds), timing one
predict+correct cycle of each filter variant.
"""

import numpy as np

from repro.filters.kalman import KalmanFilter
from repro.filters.models import linear_model, sinusoidal_model
from repro.filters.riccati import SteadyStateKalmanFilter


def _full_filter():
    model = linear_model(dims=2, dt=0.1)
    return model.build_filter(np.zeros(2))


def test_bench_full_kf_cycle(benchmark):
    """One predict+correct cycle of the 4-state moving-object filter."""
    kf = _full_filter()
    z = np.array([1.0, 1.0])

    def cycle():
        kf.predict()
        kf.update(z)

    benchmark(cycle)


def test_bench_coast_only_cycle(benchmark):
    """A suppressed instant costs only the prediction half."""
    kf = _full_filter()
    benchmark(kf.predict)


def test_bench_steady_state_cycle(benchmark):
    """The precomputed-gain filter (Riccati mode) is the cheap variant."""
    model = linear_model(dims=2, dt=0.1)
    ss = SteadyStateKalmanFilter(
        phi=model.phi, h=model.h, q=model.q, r=model.r, x0=np.zeros(4)
    )
    z = np.array([1.0, 1.0])

    def cycle():
        ss.predict()
        ss.update(z)

    benchmark(cycle)


def test_bench_time_varying_sinusoidal_cycle(benchmark):
    """Time-varying phi_k (Example 2's model) re-evaluates each step."""
    model = sinusoidal_model(omega=0.26, theta=0.0)
    kf = model.build_filter(np.array([1000.0]))
    z = np.array([1000.0])

    def cycle():
        kf.predict()
        kf.update(z)

    benchmark(cycle)


def test_bench_scalar_smoother_cycle(benchmark):
    """KF_c's scalar cycle -- the extra cost Example 3 pays per reading."""
    from repro.filters.smoothing import StreamSmoother

    smoother = StreamSmoother(f=1e-7)
    smoother.smooth(100.0)
    benchmark(smoother.smooth, 101.0)


def test_steady_state_cheaper_than_full():
    """Sanity: constant-gain filtering does strictly less arithmetic.

    (Asserted via a quick wall-clock comparison rather than the benchmark
    fixture, which cannot compare two targets in one test.)"""
    import timeit

    model = linear_model(dims=2, dt=0.1)
    full = model.build_filter(np.zeros(2))
    ss = SteadyStateKalmanFilter(
        phi=model.phi, h=model.h, q=model.q, r=model.r, x0=np.zeros(4)
    )
    z = np.array([1.0, 1.0])

    def full_cycle():
        full.predict()
        full.update(z)

    def ss_cycle():
        ss.predict()
        ss.update(z)

    t_full = timeit.timeit(full_cycle, number=2000)
    t_ss = timeit.timeit(ss_cycle, number=2000)
    assert t_ss < t_full
