"""Autoscale bench: surge-drill shed economics at 1x/2x/3x offered load.

Runs the seeded surge drill (the same trajectory ``repro chaos --surge``
audits) with the predictive autoscaler armed, at load factors 1, 2 and
3, and records the three numbers the robustness story hangs on:

* ``surge_shed_error`` -- the audited δ-shed account (planned widening
  charged exactly, unplanned drops billed at the worst planned case);
* ``surge_inbox_drops`` -- tail-drops the forecast failed to pre-empt;
* ``surge_settle_ticks`` -- ticks past surge end until the widen ledger
  unwinds to balanced (every planned step restored LIFO).

All three are lower-is-better and gated by ``repro benchdiff`` against
the committed ``BENCH_autoscale.json`` at the repo root; the artifact is
a ``repro.obs/v1`` snapshot whose instrumented pass (the 3x point)
carries the live autoscale.* event stream and SLO alert history.
"""

from pathlib import Path

from benchmarks.conftest import run_once, show
from repro.autoscale import AutoscalePolicy
from repro.autoscale.drill import run_surge_drill
from repro.obs import Telemetry, build_snapshot, write_snapshot

SEED = 7
TICKS = 280
LOAD_SWEEP = (1.0, 2.0, 3.0)

#: Perf trajectory artifact (``repro.obs/v1`` snapshot) at the repo root.
SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / "BENCH_autoscale.json"


def _violations(result) -> int:
    """Count pending->firing flips of the inbox-pressure SLO."""
    for rule in result.slo["rules"]:
        if rule["name"] == "inbox-pressure":
            return sum(
                1 for t in rule["transitions"] if t["to"] == "firing"
            )
    return 0


def _drill_point(load_factor: float, telemetry=None):
    return run_surge_drill(
        SEED,
        ticks=TICKS,
        load_factor=load_factor,
        autoscale=AutoscalePolicy(),
        telemetry=telemetry,
    )


def test_autoscale_surge_economics(benchmark):
    def sweep():
        return {load: _drill_point(load) for load in LOAD_SWEEP}

    results = run_once(benchmark, sweep)
    rows = []
    for load, point in results.items():
        rows.append(
            f"  {load:.0f}x load: shed error {point.shed_error_total:7.1f}, "
            f"drops {point.inbox_dropped:3d}, "
            f"SLO firings {_violations(point)}, "
            f"settle {point.settle_ticks} ticks"
        )
    show("Autoscale: surge shed economics vs load factor", "\n".join(rows))

    # A fresh instrumented 3x pass so the artifact carries the live
    # autoscale.* events and alert history, not just sweep gauges.
    telemetry = Telemetry()
    _drill_point(LOAD_SWEEP[-1], telemetry=telemetry)
    registry = telemetry.metrics
    for load, point in results.items():
        labels = {"load": f"{load:.0f}x"}
        registry.gauge("surge_shed_error", labels).set(
            point.shed_error_total
        )
        registry.gauge("surge_inbox_drops", labels).set(
            float(point.inbox_dropped)
        )
        registry.gauge("surge_slo_violations", labels).set(
            float(_violations(point))
        )
        registry.gauge("surge_settle_ticks", labels).set(
            float(point.settle_ticks)
        )
    snapshot = build_snapshot(
        telemetry,
        meta={
            "bench": "autoscale",
            "seed": SEED,
            "ticks": TICKS,
            "load_factors": list(LOAD_SWEEP),
        },
    )
    assert snapshot["gauges"], "sweep gauges missing from snapshot"
    assert snapshot["events"]["total"] > 0, "event bus captured nothing"
    # The drill samples gauges every tick, so the raw history section
    # alone is ~100x the rest of the artifact; benchdiff gates gauges,
    # and the live counters/events already prove the pipe, so the
    # committed baseline ships without the per-tick series.
    snapshot["history"] = {
        **snapshot["history"], "samples": 0, "series": [],
    }
    write_snapshot(SNAPSHOT_PATH, snapshot)

    # Shape gates.  Every point must settle (ledger back to balanced)
    # and the calm point must be nearly free: no surge means no drops
    # and at most incidental widening.
    for load, point in results.items():
        assert point.settle_ticks is not None, (load, "never settled")
        assert point.ledger["balanced"]
    calm = results[LOAD_SWEEP[0]]
    # Every source transmits at tick 0, so the priming burst alone
    # overruns the inbox; nothing beyond it may drop at calm load.
    assert calm.inbox_dropped <= 24 - 16
    assert calm.slo_clean
    # Economics must be monotone in offered load -- if 2x costs as much
    # as 3x the planner is overreacting at the low end.
    assert calm.shed_error_total <= results[2.0].shed_error_total
    assert results[2.0].shed_error_total <= results[3.0].shed_error_total
