"""Seed stability: the headline result must not be a seed artefact.

Example 1's dataset is synthetic, so the committed seed could in principle
be cherry-picked.  This bench regenerates the trajectory under several
seeds and re-measures the Figure 4 headline (update percentages at
delta = 3): the ~75% linear-KF cut must hold for *every* seed, with modest
variance.
"""

import numpy as np

from benchmarks.conftest import run_once, show
from repro.baselines.caching import CachedValueScheme
from repro.datasets.moving_object import SAMPLING_DT, moving_object_dataset
from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.filters.models import linear_model
from repro.metrics.evaluation import evaluate_scheme

SEEDS = [1, 7, 42, 1234, 20040613]
DELTA = 3.0


def _seed_sweep():
    rows = {}
    for seed in SEEDS:
        stream = moving_object_dataset(n=2000, seed=seed)
        caching = evaluate_scheme(
            CachedValueScheme.from_precision(DELTA, dims=2), stream
        ).update_percentage
        linear = evaluate_scheme(
            DKFSession(
                DKFConfig(model=linear_model(dims=2, dt=SAMPLING_DT), delta=DELTA)
            ),
            stream,
        ).update_percentage
        rows[seed] = {"caching": caching, "dkf-linear": linear}
    return rows


def test_headline_stable_across_seeds(benchmark):
    rows = run_once(benchmark, _seed_sweep)
    reductions = []
    lines = []
    for seed, row in rows.items():
        reduction = 100.0 * (1.0 - row["dkf-linear"] / row["caching"])
        reductions.append(reduction)
        lines.append(
            f"  seed {seed:>8d}: caching {row['caching']:6.2f}%  "
            f"dkf-linear {row['dkf-linear']:6.2f}%  "
            f"traffic cut {reduction:5.1f}%"
        )
    mean_reduction = float(np.mean(reductions))
    std_reduction = float(np.std(reductions))
    lines.append(
        f"  mean cut {mean_reduction:5.1f}% +- {std_reduction:.1f} "
        f"across {len(SEEDS)} seeds"
    )
    show("Seed stability: Figure 4 headline (delta = 3)", "\n".join(lines))

    # The paper's ~75% cut holds for every seed, not just the committed one.
    for seed, reduction in zip(rows, reductions):
        assert reduction > 55.0, f"seed {seed}: only {reduction:.1f}% cut"
    assert mean_reduction > 65.0
    assert std_reduction < 15.0
