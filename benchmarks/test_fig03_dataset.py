"""Figure 3: the Example 1 moving-object dataset.

Regenerates the full 4000-point trajectory at the paper's parameters
(100 ms sampling, speed cap 500) and prints its summary statistics.
"""

import numpy as np

from benchmarks.conftest import run_once, show
from repro.datasets.moving_object import (
    MAX_SPEED,
    SAMPLING_DT,
    moving_object_dataset,
    segment_change_points,
)


def test_fig03_moving_object_dataset(benchmark):
    stream = run_once(benchmark, moving_object_dataset)

    assert len(stream) == 4000
    assert stream.dim == 2
    speeds = np.linalg.norm(np.diff(stream.values(), axis=0), axis=1) / SAMPLING_DT
    assert speeds.max() <= MAX_SPEED + 1e-6

    manoeuvres = segment_change_points(stream)
    summary = stream.summary()
    show(
        "Figure 3: moving-object dataset",
        "\n".join(
            [
                f"points             : {summary['length']}",
                f"sampling interval  : {summary['sampling_interval']} s",
                f"x/y range          : [{summary['min']:.0f}, {summary['max']:.0f}]",
                f"mean speed         : {speeds.mean():.1f} units/s "
                f"(cap {MAX_SPEED:.0f})",
                f"manoeuvre points   : {len(manoeuvres)}",
            ]
        ),
    )
