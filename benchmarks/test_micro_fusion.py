"""Micro-benchmarks for multi-sensor fusion.

Information-form fusion of ``s`` sensors is ``s`` cheap additions; the
covariance-form equivalent is ``s`` sequential gain computations.  These
benches time both paths and check the cross-over claim qualitatively.
"""

import numpy as np

from repro.filters.information import InformationFilter
from repro.filters.kalman import KalmanFilter

PHI = np.array([[1.0, 1.0], [0.0, 1.0]])
Q = np.eye(2) * 0.05
H = np.array([[1.0, 0.0]])
R = np.eye(1) * 0.1
SENSORS = 8


def test_bench_information_fusion_cycle(benchmark):
    """One predict + 8-sensor fuse in information form."""
    filt = InformationFilter(PHI, Q, x0=np.zeros(2))
    readings = [(H, R, np.array([float(i)])) for i in range(SENSORS)]

    def cycle():
        filt.predict()
        filt.fuse(readings)

    benchmark(cycle)


def test_bench_sequential_kf_fusion_cycle(benchmark):
    """One predict + 8 sequential covariance-form updates."""
    filt = KalmanFilter(PHI, H, Q, R, x0=np.zeros(2))
    readings = [np.array([float(i)]) for i in range(SENSORS)]

    def cycle():
        filt.predict()
        for z in readings:
            filt.update(z)

    benchmark(cycle)


def test_fusion_equivalence():
    """Both fusion paths produce the same posterior (identical-sensor
    case), pinning that the benchmark compares equal work."""
    info = InformationFilter(PHI, Q, x0=np.zeros(2), p0=np.eye(2))
    cov = KalmanFilter(PHI, H, Q, R, x0=np.zeros(2), p0=np.eye(2))
    rng = np.random.default_rng(0)
    for _ in range(20):
        readings = [rng.normal(size=1) for _ in range(3)]
        info.predict()
        cov.predict()
        info.fuse([(H, R, z) for z in readings])
        for z in readings:
            cov.update(z)
        assert np.allclose(info.x, cov.x, atol=1e-8)
        assert np.allclose(info.p, cov.p, atol=1e-8)
