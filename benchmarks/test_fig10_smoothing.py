"""Figure 10: KF smoothing against the moving-average approach (Example 3).

Paper claim: "using sufficiently low value of F (i.e., F = 1e-9) the
smoothed data values match those produced using a moving average
approach" -- while remaining truly online (no window buffer).
"""

from benchmarks.conftest import run_once, show
from repro.experiments import example3


def test_fig10_kf_smoothing_matches_moving_average(benchmark):
    result = run_once(benchmark, example3.figure10_smoothing)

    rel = result["rms_distance_relative"]
    assert rel < 0.1  # matches the MA within 10% of the data's std

    # Larger smoothing factors progressively abandon the MA behaviour.
    distances = {}
    for f in (1e-9, 1e-5, 1e-1):
        distances[f] = example3.figure10_smoothing(f=f)["rms_distance_relative"]
    assert distances[1e-1] > 3 * distances[1e-9]

    show(
        "Figure 10: KF smoothing vs moving average",
        "\n".join(
            [
                f"MA window                  : {example3.MA_WINDOW}",
                f"rel. RMS distance (F=1e-9) : {distances[1e-9]:.4f}",
                f"rel. RMS distance (F=1e-5) : {distances[1e-5]:.4f}",
                f"rel. RMS distance (F=1e-1) : {distances[1e-1]:.4f}",
                "low F reproduces the moving average; high F tracks raw data",
            ]
        ),
    )
