"""Micro-benchmark: memoised multi-step prediction (`predict_k`).

The server consults ``H phi^steps x`` whenever it evaluates whether a δ
bound will still hold ``steps`` ticks out (staleness scoring, forecast
answers, DRS planning).  ``predict_k`` jumps there through the
``phi_power`` cache in one multiply; the naive alternatives re-walk the
horizon (``forecast``) or re-exponentiate the transition matrix every
call.  This bench times all three at a typical planning horizon and
asserts the memoised form wins by at least 2x.
"""

import time

import numpy as np

from benchmarks.conftest import run_once, show
from repro.filters.kalman import phi_power
from repro.filters.models import linear_model

HORIZON = 32
CALLS = 2000


def _primed_filter():
    model = linear_model(dims=2, dt=0.1)
    kf = model.build_filter(np.zeros(2))
    rng = np.random.default_rng(0)
    for _ in range(10):
        kf.predict()
        kf.update(rng.normal(size=2))
    return kf


def test_bench_predict_k_memoized(benchmark):
    """One cached endpoint prediction at the planning horizon."""
    kf = _primed_filter()
    kf.predict_k(HORIZON)  # warm the phi_power cache
    benchmark(kf.predict_k, HORIZON)


def test_bench_predict_k_vs_naive(benchmark):
    """Memoised endpoint vs looped horizon vs per-call matrix_power."""
    kf = _primed_filter()
    phi = np.asarray(kf.phi_at(0), dtype=float)
    h = kf.h_at(0)
    kf.predict_k(HORIZON)  # warm the cache

    def timed(fn):
        t0 = time.perf_counter()
        for _ in range(CALLS):
            fn()
        return (time.perf_counter() - t0) / CALLS * 1e6

    def naive_power():
        return h @ np.linalg.matrix_power(phi, HORIZON) @ kf.x

    def looped():
        return kf.forecast(HORIZON)[-1]

    def measure():
        return {
            "memoized_us": timed(lambda: kf.predict_k(HORIZON)),
            "looped_us": timed(looped),
            "matrix_power_us": timed(naive_power),
        }

    out = run_once(benchmark, measure)
    np.testing.assert_allclose(
        kf.predict_k(HORIZON), naive_power(), atol=1e-9, rtol=0
    )
    np.testing.assert_allclose(
        kf.predict_k(HORIZON), looped(), atol=1e-9, rtol=0
    )
    speedup_loop = out["looped_us"] / out["memoized_us"]
    speedup_power = out["matrix_power_us"] / out["memoized_us"]
    show(
        f"predict_k horizon={HORIZON} ({CALLS} calls each)",
        "\n".join(
            [
                f"memoized     {out['memoized_us']:8.2f} us/call",
                f"loop horizon {out['looped_us']:8.2f} us/call"
                f"  ({speedup_loop:.1f}x slower)",
                f"matrix_power {out['matrix_power_us']:8.2f} us/call"
                f"  ({speedup_power:.1f}x slower)",
            ]
        ),
    )
    assert speedup_loop >= 2.0, out
    assert speedup_power >= 2.0, out


def test_bench_phi_power_sweep(benchmark):
    """A 1..K horizon sweep costs K multiplies total, not O(K^2)."""
    phi = linear_model(dims=2, dt=0.05).phi

    def sweep():
        for k in range(1, HORIZON + 1):
            phi_power(phi, k)

    sweep()  # warm: later rounds hit the cache at every k
    benchmark(sweep)
