"""Ablation benches for the design choices DESIGN.md calls out.

1. Model order on Example 1 -- does tracking acceleration/jerk beat the
   paper's constant-velocity choice on piecewise-linear motion?
2. Sinusoidal-parameter robustness on Example 2 -- the paper's claim that
   mis-specified parameters still outperform caching.
3. The mirror-verification digest -- what the integrity check costs in
   bytes.
"""

import math

from benchmarks.conftest import run_once, show
from repro.baselines.caching import CachedValueScheme
from repro.datasets.moving_object import SAMPLING_DT, moving_object_dataset
from repro.datasets.power_load import power_load_dataset
from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.experiments.example2 import OMEGA, THETA
from repro.filters.models import (
    acceleration_model,
    constant_model,
    jerk_model,
    linear_model,
    sinusoidal_model,
)
from repro.metrics.evaluation import evaluate_scheme


def _ablate_model_order():
    stream = moving_object_dataset()
    delta = 3.0
    results = {}
    for name, model in [
        ("constant", constant_model(dims=2)),
        ("linear", linear_model(dims=2, dt=SAMPLING_DT)),
        ("acceleration", acceleration_model(dims=2, dt=SAMPLING_DT)),
        ("jerk", jerk_model(dims=2, dt=SAMPLING_DT)),
    ]:
        session = DKFSession(DKFConfig(model=model, delta=delta))
        results[name] = evaluate_scheme(session, stream).update_percentage
    return results


def test_ablation_model_order(benchmark):
    results = run_once(benchmark, _ablate_model_order)
    show(
        "Ablation: kinematic model order (Example 1, delta = 3)",
        "\n".join(f"  {k:12s} {v:6.2f}% updates" for k, v in results.items()),
    )
    # The linear model captures piecewise-linear motion; higher orders
    # cannot do much better and the constant model is far worse.
    assert results["linear"] < 0.5 * results["constant"]
    assert results["acceleration"] < 0.8 * results["constant"]


def _ablate_sinusoidal_params():
    stream = power_load_dataset()
    delta = 50.0
    caching = evaluate_scheme(
        CachedValueScheme.from_precision(delta, dims=1), stream
    ).update_percentage
    results = {"caching": caching}
    for label, omega in [
        ("exact", OMEGA),
        ("+10%", OMEGA * 1.1),
        ("-10%", OMEGA * 0.9),
        ("+50%", OMEGA * 1.5),
        ("half-period", OMEGA * 2.0),
    ]:
        session = DKFSession(
            DKFConfig(
                model=sinusoidal_model(omega=omega, theta=THETA), delta=delta
            )
        )
        results[label] = evaluate_scheme(session, stream).update_percentage
    return results


def test_ablation_sinusoidal_robustness(benchmark):
    results = run_once(benchmark, _ablate_sinusoidal_params)
    show(
        "Ablation: sinusoidal parameter robustness (Example 2, delta = 50)",
        "\n".join(f"  {k:12s} {v:6.2f}% updates" for k, v in results.items()),
    )
    caching = results.pop("caching")
    # Paper: "in almost all cases the sinusoidal KF model outperformed the
    # caching model" even with perturbed parameters.
    beating = sum(1 for v in results.values() if v < caching)
    assert beating >= len(results) - 1


def _digest_cost():
    stream = moving_object_dataset(n=2000)
    delta = 3.0
    out = {}
    for label, check in [("plain", False), ("verified", True)]:
        session = DKFSession(
            DKFConfig(
                model=linear_model(dims=2, dt=SAMPLING_DT),
                delta=delta,
                check_mirror=check,
            )
        )
        session.run(stream)
        out[label] = session.channel.stats.bytes_delivered
    return out


def test_ablation_mirror_digest_cost(benchmark):
    results = run_once(benchmark, _digest_cost)
    overhead = results["verified"] / results["plain"] - 1.0
    show(
        "Ablation: mirror-verification digest cost (Example 1)",
        f"  plain    {results['plain']} bytes\n"
        f"  verified {results['verified']} bytes "
        f"(+{100 * overhead:.1f}%)",
    )
    # Integrity costs bytes but must stay a modest constant factor.
    assert results["verified"] > results["plain"]
    assert overhead < 0.5
