"""Energy bench: the Section 1 motivation, quantified.

The paper justifies source-side filtering with the bit/instruction energy
ratio (220-2,900).  This bench runs the Example 1 workload through the
DKF and converts the traffic into sensor energy at both ends of the
paper's ratio range, against the transmit-everything strawman.
"""

from benchmarks.conftest import run_once, show
from repro.datasets.moving_object import SAMPLING_DT, moving_object_dataset
from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.dsms.energy import EnergyModel
from repro.filters.models import linear_model
from repro.metrics.evaluation import evaluate_scheme


def _energy_comparison():
    stream = moving_object_dataset()
    delta = 3.0
    session = DKFSession(
        DKFConfig(model=linear_model(dims=2, dt=SAMPLING_DT), delta=delta)
    )
    result = evaluate_scheme(session, stream)
    bytes_sent = session.channel.stats.bytes_delivered

    out = {}
    for ratio in (220.0, 2900.0):
        model = EnergyModel(joules_per_bit=1e-6, bit_to_instruction_ratio=ratio)
        dkf = model.report(
            bytes_sent=bytes_sent,
            filter_steps=result.readings,
            state_dim=4,
            measurement_dim=2,
        )
        naive = model.naive_report(result.readings, floats_per_reading=2)
        out[ratio] = {
            "dkf_mj": dkf.total_joules * 1e3,
            "naive_mj": naive.total_joules * 1e3,
            "saving": naive.total_joules / dkf.total_joules,
            "radio_share": dkf.radio_share,
        }
    return out


def test_energy_savings_across_paper_ratio_range(benchmark):
    results = run_once(benchmark, _energy_comparison)
    lines = []
    for ratio, row in results.items():
        lines.append(
            f"  ratio {ratio:6.0f}: DKF {row['dkf_mj']:8.2f} mJ vs naive "
            f"{row['naive_mj']:8.2f} mJ -> {row['saving']:.1f}x saving "
            f"(radio {row['radio_share']:.0%} of DKF budget)"
        )
    show("Energy: DKF vs transmit-everything (Example 1, delta = 3)", "\n".join(lines))

    for ratio, row in results.items():
        # Filtering must pay for itself across the paper's entire
        # bit/instruction ratio range.
        assert row["saving"] > 2.0, f"no energy win at ratio {ratio}"
    # At the conservative end of the range the radio still dominates the
    # DKF's own budget -- computation stays a minor cost.
    assert results[2900.0]["radio_share"] > 0.5
