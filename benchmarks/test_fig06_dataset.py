"""Figure 6: the Example 2 electric power-load dataset (synthetic
stand-in; see the substitution note in repro/datasets/power_load.py).

Regenerates the 5831-point hourly series and verifies the documented
characteristics: diurnal periodicity with an afternoon peak and a
night-time trough.
"""

import numpy as np

from benchmarks.conftest import run_once, show
from repro.datasets.power_load import dominant_period, power_load_dataset


def test_fig06_power_load_dataset(benchmark):
    stream = run_once(benchmark, power_load_dataset)

    assert len(stream) == 5831  # paper's point count
    period = dominant_period(stream)
    assert np.isclose(period, 24.0, rtol=0.05)

    values = stream.component(0)
    hours = np.arange(len(values)) % 24
    afternoon = values[(hours >= 12) & (hours <= 16)].mean()
    night = values[(hours >= 1) & (hours <= 5)].mean()
    assert afternoon > night

    summary = stream.summary()
    show(
        "Figure 6: power-load dataset",
        "\n".join(
            [
                f"points           : {summary['length']} (hourly)",
                f"load range       : [{summary['min']:.0f}, {summary['max']:.0f}]",
                f"dominant period  : {period:.1f} h (diurnal)",
                f"afternoon mean   : {afternoon:.0f}",
                f"night mean       : {night:.0f}",
            ]
        ),
    )
