"""Ablation: measurement-noise robustness (Table 1's "graceful
degradation" claim, quantified).

The paper's Table 1 argues caching schemes "do not seem to gracefully
degrade when the input data is noisy" while the KF smooths.  This bench
corrupts Example 1 with growing Gaussian measurement noise and tracks
update traffic for caching vs the linear DKF (same δ): the DKF's
advantage should persist under noise it can average over, shrinking only
as the noise floor approaches δ itself.
"""

from benchmarks.conftest import run_once, show
from repro.baselines.caching import CachedValueScheme
from repro.datasets.moving_object import SAMPLING_DT, moving_object_dataset
from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.filters.models import linear_model
from repro.metrics.evaluation import evaluate_scheme
from repro.streams.noise import add_gaussian_noise

DELTA = 3.0
NOISE_LEVELS = [0.0, 0.25, 0.5, 1.0, 2.0]


def _noise_sweep():
    clean = moving_object_dataset()
    out = {}
    for std in NOISE_LEVELS:
        stream = (
            clean if std == 0 else add_gaussian_noise(clean, std=std, seed=17)
        )
        caching = evaluate_scheme(
            CachedValueScheme.from_precision(DELTA, dims=2), stream
        )
        # Give the DKF a measurement-noise estimate matching the injected
        # noise (what a deployment would calibrate; see filters.tuning).
        r = max(0.05, std**2)
        dkf = evaluate_scheme(
            DKFSession(
                DKFConfig(
                    model=linear_model(dims=2, dt=SAMPLING_DT, r=r),
                    delta=DELTA,
                )
            ),
            stream,
        )
        out[std] = {
            "caching": caching.update_percentage,
            "dkf": dkf.update_percentage,
        }
    return out


def test_ablation_noise_robustness(benchmark):
    results = run_once(benchmark, _noise_sweep)
    show(
        "Ablation: noise robustness (Example 1, delta = 3)",
        "\n".join(
            f"  noise std {std:4.2f}: caching {row['caching']:6.2f}%  "
            f"dkf-linear {row['dkf']:6.2f}%  "
            f"(advantage {row['caching'] - row['dkf']:5.1f} pts)"
            for std, row in results.items()
        ),
    )
    for std, row in results.items():
        # The DKF never loses its lead at any tested noise level.
        assert row["dkf"] < row["caching"], f"noise {std}"
    # And the lead remains substantial even at the highest level
    # (noise std 2 against delta 3).
    worst = results[max(NOISE_LEVELS)]
    assert worst["dkf"] < 0.8 * worst["caching"]
