"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark regenerates one of the paper's tables or figures at full
size, prints the series it produces (run with ``-s`` to see them), and
asserts the figure's qualitative shape.  Macro benchmarks run exactly once
(``benchmark.pedantic(rounds=1)``) -- the interesting output is the data,
the timing is a bonus.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def show(title: str, body: str) -> None:
    """Print a figure's regenerated series under a banner."""
    print(f"\n=== {title} ===")
    print(body)
