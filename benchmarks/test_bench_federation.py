"""Federation bench: query latency and consensus error vs peer count.

Sweeps a :class:`~repro.federation.FederatedCluster` over 1/3/5 peers on
one seeded workload and records (a) the wall-clock cost of an
``answers()`` sweep -- the paper's query path, now with per-answer
consensus bookkeeping -- and (b) the consensus error bound replica banks
advertise, which should stay a small multiple of the per-tick drift
rather than growing with the fleet.

Exports through the ``repro.obs/v1`` snapshot schema into
``BENCH_federation.json`` at the repo root, same as the engine-scale
bench.  The exporting run is instrumented with a live telemetry handle
so the artifact carries real federation counters and events alongside
the sweep gauges.
"""

import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once, show
from repro.dsms.query import ContinuousQuery
from repro.federation import FederatedCluster, FederationConfig
from repro.filters.models import constant_model
from repro.obs import Telemetry, build_snapshot, write_snapshot
from repro.streams.base import stream_from_values

TICKS = 200
STREAMS = 8
PEER_SWEEP = (1, 3, 5)
ANSWER_CALLS = 200

#: Perf trajectory artifact (``repro.obs/v1`` snapshot) at the repo root.
SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / "BENCH_federation.json"


def _build_cluster(peers: int, telemetry=None) -> FederatedCluster:
    rng = np.random.default_rng(42)
    cluster = FederatedCluster(
        FederationConfig(
            peers=peers,
            replication=min(1, peers - 1),
            consensus_every=8,
        ),
        telemetry=telemetry,
    )
    for i in range(STREAMS):
        values = np.cumsum(rng.normal(0.0, 0.4, size=TICKS))
        cluster.add_source(
            f"s{i}",
            constant_model(q=0.2, r=1.0),
            stream_from_values(values, name=f"s{i}"),
        )
        cluster.submit_query(
            ContinuousQuery(f"s{i}", delta=1.0, query_id=f"q{i}")
        )
    return cluster


def _sweep_point(peers: int) -> dict[str, float]:
    cluster = _build_cluster(peers)
    start = time.perf_counter()
    cluster.run()
    run_seconds = time.perf_counter() - start
    cluster.settle()
    start = time.perf_counter()
    for _ in range(ANSWER_CALLS):
        answers = cluster.answers()
    answer_seconds = (time.perf_counter() - start) / ANSWER_CALLS
    assert len(answers) == STREAMS
    # The replica-side consensus bound: query every non-home holder.
    replica_bounds = [
        a.consensus_error
        for pid in cluster.peers
        for a in cluster.answers(pid)
        if a.consensus_error > 0.0
    ]
    return {
        "run_seconds": run_seconds,
        "answer_us": answer_seconds * 1e6,
        "max_consensus_error": max(replica_bounds, default=0.0),
        "mean_consensus_error": (
            float(np.mean(replica_bounds)) if replica_bounds else 0.0
        ),
    }


def test_federation_scale(benchmark):
    def sweep():
        return {peers: _sweep_point(peers) for peers in PEER_SWEEP}

    results = run_once(benchmark, sweep)
    rows = []
    for peers, point in results.items():
        rows.append(
            f"  {peers} peers: run {point['run_seconds'] * 1e3:8.1f} ms, "
            f"answers() {point['answer_us']:7.1f} us/call, "
            f"consensus err mean {point['mean_consensus_error']:.3f} "
            f"max {point['max_consensus_error']:.3f}"
        )
    show("Federation: query latency and consensus error vs peers", "\n".join(rows))

    # A fresh instrumented pass (3 peers) so the artifact carries live
    # federation counters and events, not just sweep gauges.
    telemetry = Telemetry()
    cluster = _build_cluster(3, telemetry=telemetry)
    cluster.run()
    cluster.settle()
    registry = telemetry.metrics
    for peers, point in results.items():
        labels = {"peers": str(peers)}
        registry.gauge("fed_run_seconds", labels).set(point["run_seconds"])
        registry.gauge("fed_answer_us", labels).set(point["answer_us"])
        registry.gauge("fed_consensus_error_mean", labels).set(
            point["mean_consensus_error"]
        )
        registry.gauge("fed_consensus_error_max", labels).set(
            point["max_consensus_error"]
        )
    snapshot = build_snapshot(
        telemetry,
        meta={
            "bench": "federation",
            "ticks": TICKS,
            "streams": STREAMS,
            "peer_counts": list(PEER_SWEEP),
            "answer_calls": ANSWER_CALLS,
        },
    )
    assert snapshot["gauges"], "sweep gauges missing from snapshot"
    assert snapshot["events"]["total"] > 0, "event bus captured nothing"
    write_snapshot(SNAPSHOT_PATH, snapshot)

    # Shape gates: single-peer degenerates to the engine (no consensus
    # error at all), and the replica bound stays a small multiple of the
    # per-tick drift at every fleet size rather than growing with it.
    assert results[1]["max_consensus_error"] == 0.0
    for peers in PEER_SWEEP[1:]:
        assert results[peers]["max_consensus_error"] < 25.0
    # The query path must stay cheap: an answers() sweep over every
    # stream is microseconds-per-stream work, not milliseconds.
    for peers, point in results.items():
        assert point["answer_us"] < 50_000.0, (peers, point)
