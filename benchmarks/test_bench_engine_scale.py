"""Scalability bench: scalar per-source cost, and the batch-engine advantage.

The paper assumes "having multiple Kalman Filters at the main server does
not affect the performance significantly" (Section 3.1).  The first bench
runs the scalar engine with growing source counts and pins that the cost
grows linearly (not worse), with a second sweep recording the overhead of
durability (``checkpoint_every=100`` plus the WAL; target under 10%).

The second bench races the scalar engine against the vectorized
:class:`~repro.scale.engine.BatchStreamEngine` at 64/256/1024 sources and
asserts the batch engine is at least 5x cheaper per reading at 1024 --
the scale layer's acceptance gate.

Both benches export through the ``repro.obs/v1`` snapshot schema into
``BENCH_engine_scale.json`` at the repo root.  The exporting run is
instrumented with a real :class:`~repro.obs.Telemetry` handle so the
artifact carries live counters, spans and events alongside the sweep
gauges (an earlier revision exported a bare registry and shipped dead
``counters``/``events`` keys).
"""

import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once, show
from repro.dsms.engine import StreamEngine
from repro.dsms.query import ContinuousQuery
from repro.filters.models import linear_model
from repro.obs import Telemetry, build_snapshot, write_snapshot
from repro.resilience.config import ResilienceConfig
from repro.scale.engine import BatchStreamEngine
from repro.streams.base import stream_from_values

TICKS = 300
SCALAR_SWEEP = (1, 4, 16, 64)
BATCH_SWEEP = (64, 256, 1024)
MIN_BATCH_SPEEDUP = 5.0

#: Perf trajectory artifact (``repro.obs/v1`` snapshot) at the repo root.
SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine_scale.json"

#: Sweep results accumulated across the tests in this module so one
#: artifact write can carry everything (tests still pass standalone --
#: the exporter includes whatever ran).
_RESULTS: dict[str, dict[int, float]] = {}


def _build_engine(cls, num_sources: int, **engine_kw):
    rng = np.random.default_rng(42)
    engine = cls(**engine_kw)
    for i in range(num_sources):
        values = np.cumsum(rng.normal(0, 1.0, size=TICKS))
        engine.add_source(
            f"s{i}",
            linear_model(dims=1, dt=1.0),
            stream_from_values(values, name=f"s{i}"),
        )
        engine.submit_query(
            ContinuousQuery(f"s{i}", delta=2.0, query_id=f"q{i}")
        )
    return engine


def _run_engine(num_sources: int, cls=StreamEngine, **engine_kw) -> float:
    engine = _build_engine(cls, num_sources, **engine_kw)
    start = time.perf_counter()
    engine.run()
    return time.perf_counter() - start


def test_engine_scales_linearly_with_sources(benchmark, tmp_path):
    def sweep():
        plain = {n: _run_engine(n) for n in SCALAR_SWEEP}
        checkpointed = {}
        for n in SCALAR_SWEEP:
            config = ResilienceConfig(
                checkpoint_dir=tmp_path / f"ckpt-{n}", checkpoint_every=100
            )
            checkpointed[n] = _run_engine(n, resilience=config)
        return {"plain": plain, "checkpointed": checkpointed}

    sweeps = run_once(benchmark, sweep)
    timings = sweeps["plain"]
    checkpointed = sweeps["checkpointed"]
    _RESULTS.update(sweeps)
    rows = []
    for n, seconds in timings.items():
        per_reading = seconds / (n * TICKS) * 1e6
        overhead = (checkpointed[n] / seconds - 1.0) * 100.0
        rows.append(
            f"  {n:3d} sources: {seconds * 1e3:8.1f} ms total, "
            f"{per_reading:6.1f} us/reading, "
            f"checkpointing {overhead:+5.1f}%"
        )
    show("Scalability: engine wall-clock vs source count", "\n".join(rows))

    # Per-reading cost must stay roughly flat as sources multiply --
    # linear total scaling (allow 4x headroom for cache effects and the
    # tiny-N fixed costs).
    per_reading_1 = timings[1] / TICKS
    per_reading_64 = timings[64] / (64 * TICKS)
    assert per_reading_64 < 4.0 * per_reading_1

    # Durability overhead target: checkpoint_every=100 plus the WAL
    # should cost well under 10% at the largest sweep point (generous
    # 50% ceiling on the tiny-N cells, where fixed costs and timer
    # noise dominate a ~20 ms measurement).
    assert checkpointed[64] < 1.10 * timings[64]
    for n in timings:
        assert checkpointed[n] < 1.50 * timings[n]


def _instrumented_pass(tmp_path) -> Telemetry:
    """A small engine run carrying live telemetry for the artifact.

    Checkpoints fire counters, the server fires protocol events, and the
    span timers trace the tick loop -- so the exported snapshot proves
    the whole observability pipe, not just the gauges.
    """
    telemetry = Telemetry()
    engine = _build_engine(
        StreamEngine,
        8,
        telemetry=telemetry,
        resilience=ResilienceConfig(
            checkpoint_dir=tmp_path / "obs-ckpt", checkpoint_every=50
        ),
    )
    engine.run()
    return telemetry


def test_batch_engine_scale_advantage(benchmark, tmp_path):
    def sweep():
        scalar = {n: _run_engine(n) for n in BATCH_SWEEP}
        batch = {n: _run_engine(n, cls=BatchStreamEngine) for n in BATCH_SWEEP}
        return {"scalar": scalar, "batch": batch}

    sweeps = run_once(benchmark, sweep)
    scalar, batch = sweeps["scalar"], sweeps["batch"]
    _RESULTS["scalar_vs_batch"] = scalar
    _RESULTS["batch"] = batch
    rows = []
    speedups = {}
    for n in BATCH_SWEEP:
        speedups[n] = scalar[n] / batch[n]
        rows.append(
            f"  {n:5d} sources: scalar {scalar[n] * 1e3:9.1f} ms, "
            f"batch {batch[n] * 1e3:7.1f} ms "
            f"({batch[n] / (n * TICKS) * 1e6:5.2f} us/reading), "
            f"speedup {speedups[n]:5.1f}x"
        )
    show("Batch engine vs scalar engine", "\n".join(rows))

    telemetry = _instrumented_pass(tmp_path)
    registry = telemetry.metrics
    for variant, timings in _RESULTS.items():
        for n, seconds in timings.items():
            labels = {"sources": str(n), "variant": variant}
            registry.gauge("engine_run_seconds", labels).set(seconds)
            registry.gauge("engine_us_per_reading", labels).set(
                seconds / (n * TICKS) * 1e6
            )
    plain = _RESULTS.get("plain", {})
    checkpointed = _RESULTS.get("checkpointed", {})
    for n in plain:
        registry.gauge(
            "checkpoint_overhead_pct", {"sources": str(n)}
        ).set((checkpointed[n] / plain[n] - 1.0) * 100.0)
    for n, speedup in speedups.items():
        registry.gauge(
            "batch_speedup_x", {"sources": str(n)}
        ).set(speedup)
    snapshot = build_snapshot(
        telemetry,
        meta={
            "bench": "engine_scale",
            "ticks_per_source": TICKS,
            "source_counts": sorted(set(SCALAR_SWEEP) | set(BATCH_SWEEP)),
            "variants": sorted(_RESULTS),
            "checkpoint_every": 100,
            "min_batch_speedup": MIN_BATCH_SPEEDUP,
        },
    )
    # The artifact must carry a live pipeline end to end: sweep gauges,
    # run counters and protocol events (dead keys were a bug).
    assert snapshot["gauges"], "sweep gauges missing from snapshot"
    assert snapshot["counters"], "instrumented run produced no counters"
    assert snapshot["events"]["total"] > 0, "event bus captured nothing"
    write_snapshot(SNAPSHOT_PATH, snapshot)

    # Acceptance gate: at 1024 sources the batch engine is >=5x cheaper
    # per reading than running 1024 scalar filter pairs.
    assert speedups[1024] >= MIN_BATCH_SPEEDUP, speedups
