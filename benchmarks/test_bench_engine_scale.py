"""Scalability bench: the server's per-source filter cost.

The paper assumes "having multiple Kalman Filters at the main server does
not affect the performance significantly" (Section 3.1).  This bench runs
the engine with growing source counts and reports throughput, pinning
that the cost grows linearly (not worse) with the number of sources.

A second sweep re-runs the engine with durability enabled
(``checkpoint_every=100`` plus the WAL) and records the overhead of the
crash-recovery machinery; the target is under 10% at that cadence.
"""

import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once, show
from repro.dsms.engine import StreamEngine
from repro.dsms.query import ContinuousQuery
from repro.filters.models import linear_model
from repro.obs import MetricsRegistry, build_snapshot, write_snapshot
from repro.resilience.config import ResilienceConfig
from repro.streams.base import stream_from_values

TICKS = 300

#: Perf trajectory artifact (``repro.obs/v1`` snapshot) at the repo root.
SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine_scale.json"


def _run_engine(num_sources: int, resilience=None) -> float:
    rng = np.random.default_rng(42)
    engine = StreamEngine(resilience=resilience)
    for i in range(num_sources):
        values = np.cumsum(rng.normal(0, 1.0, size=TICKS))
        engine.add_source(
            f"s{i}",
            linear_model(dims=1, dt=1.0),
            stream_from_values(values, name=f"s{i}"),
        )
        engine.submit_query(
            ContinuousQuery(f"s{i}", delta=2.0, query_id=f"q{i}")
        )
    start = time.perf_counter()
    engine.run()
    return time.perf_counter() - start


def _scaling_sweep():
    return {n: _run_engine(n) for n in (1, 4, 16, 64)}


def _checkpointed_sweep(tmp_root):
    timings = {}
    for n in (1, 4, 16, 64):
        config = ResilienceConfig(
            checkpoint_dir=tmp_root / f"ckpt-{n}", checkpoint_every=100
        )
        timings[n] = _run_engine(n, resilience=config)
    return timings


def test_engine_scales_linearly_with_sources(benchmark, tmp_path):
    def sweep():
        return {
            "plain": _scaling_sweep(),
            "checkpointed": _checkpointed_sweep(tmp_path),
        }

    sweeps = run_once(benchmark, sweep)
    timings = sweeps["plain"]
    checkpointed = sweeps["checkpointed"]
    rows = []
    for n, seconds in timings.items():
        per_reading = seconds / (n * TICKS) * 1e6
        overhead = (checkpointed[n] / seconds - 1.0) * 100.0
        rows.append(
            f"  {n:3d} sources: {seconds * 1e3:8.1f} ms total, "
            f"{per_reading:6.1f} us/reading, "
            f"checkpointing {overhead:+5.1f}%"
        )
    show("Scalability: engine wall-clock vs source count", "\n".join(rows))

    # Export the sweep through the telemetry snapshot schema so the perf
    # trajectory accumulates in a tool-readable artifact.
    registry = MetricsRegistry()
    for variant, sweep_timings in sweeps.items():
        for n, seconds in sweep_timings.items():
            labels = {"sources": str(n), "variant": variant}
            registry.gauge("engine_run_seconds", labels).set(seconds)
            registry.gauge("engine_us_per_reading", labels).set(
                seconds / (n * TICKS) * 1e6
            )
    for n in timings:
        registry.gauge(
            "checkpoint_overhead_pct", {"sources": str(n)}
        ).set((checkpointed[n] / timings[n] - 1.0) * 100.0)
    snapshot = build_snapshot(
        registry,
        meta={
            "bench": "engine_scale",
            "ticks_per_source": TICKS,
            "source_counts": sorted(timings),
            "variants": sorted(sweeps),
            "checkpoint_every": 100,
        },
    )
    write_snapshot(SNAPSHOT_PATH, snapshot)

    # Per-reading cost must stay roughly flat as sources multiply --
    # linear total scaling (allow 4x headroom for cache effects and the
    # tiny-N fixed costs).
    per_reading_1 = timings[1] / TICKS
    per_reading_64 = timings[64] / (64 * TICKS)
    assert per_reading_64 < 4.0 * per_reading_1

    # Durability overhead target: checkpoint_every=100 plus the WAL
    # should cost well under 10% at the largest sweep point (generous
    # 50% ceiling on the tiny-N cells, where fixed costs and timer
    # noise dominate a ~20 ms measurement).
    assert checkpointed[64] < 1.10 * timings[64]
    for n in timings:
        assert checkpointed[n] < 1.50 * timings[n]
