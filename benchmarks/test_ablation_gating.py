"""Ablation: innovation-gate glitch suppression (paper Section 3.1,
advantage 5, quantified).

A clean trajectory and a spike-corrupted copy are run with and without the
innovation gate.  The gate is a *trade*: every reading it gates is an
instant where the δ guarantee is deliberately waived, in exchange for not
spending messages on (what it believes are) glitches.  The bench reports
both sides of the trade -- update percentage and the fraction of instants
where the server's value was out of bound -- so the cost is never hidden.
"""

import numpy as np

from benchmarks.conftest import run_once, show
from repro.datasets.moving_object import SAMPLING_DT, moving_object_dataset
from repro.dkf.config import DKFConfig
from repro.dkf.session import DKFSession
from repro.filters.models import linear_model
from repro.streams.noise import add_spikes

DELTA = 3.0


def _run(stream, gate):
    config = DKFConfig(
        model=linear_model(dims=2, dt=SAMPLING_DT),
        delta=DELTA,
        outlier_gate_factor=gate,
        outlier_gate_limit=2,
    )
    session = DKFSession(config)
    decisions = session.run(stream)
    sent = sum(d.sent for d in decisions)
    over_bound = sum(
        1
        for d in decisions
        if np.max(np.abs(d.server_value - d.source_value)) > DELTA + 1e-9
    )
    return {
        "updates_pct": 100.0 * sent / len(decisions),
        "violations_pct": 100.0 * over_bound / len(decisions),
    }


def _gating_comparison():
    clean = moving_object_dataset()
    spiky = add_spikes(clean, rate=0.03, magnitude=100.0, seed=11)
    out = {}
    for stream_label, stream in [("clean", clean), ("spiky", spiky)]:
        for gate_label, gate in [("plain", None), ("gated", 8.0)]:
            out[(stream_label, gate_label)] = _run(stream, gate)
    return out


def test_ablation_innovation_gate(benchmark):
    results = run_once(benchmark, _gating_comparison)
    show(
        "Ablation: innovation gate (Example 1, delta = 3, limit = 2)",
        "\n".join(
            f"  {s:6s} {g:6s} {v['updates_pct']:6.2f}% updates, "
            f"{v['violations_pct']:5.2f}% instants out of bound"
            for (s, g), v in results.items()
        ),
    )
    # Ungated runs never violate the bound -- the core guarantee.
    assert results[("clean", "plain")]["violations_pct"] == 0.0
    assert results[("spiky", "plain")]["violations_pct"] == 0.0

    # Spikes inflate ungated traffic; the gate recovers most of it.
    assert (
        results[("spiky", "plain")]["updates_pct"]
        > results[("clean", "plain")]["updates_pct"]
    )
    assert (
        results[("spiky", "gated")]["updates_pct"]
        < 0.5 * results[("spiky", "plain")]["updates_pct"]
    )

    # The price is explicit and bounded: gated instants (where the bound
    # is waived) stay a small fraction of the run.
    for label in ("clean", "spiky"):
        assert results[(label, "gated")]["violations_pct"] < 10.0
