"""Figure 4: number of updates received at the central server (Example 1).

Full-size sweep of the precision width over caching, constant-model DKF
and linear-model DKF on the 4000-point trajectory.  Paper shape: caching
and constant-KF coincide; the linear KF cuts updates by roughly 75% at a
moderate precision width (delta = 3); all schemes converge as delta grows.
"""

from benchmarks.conftest import run_once, show
from repro.experiments import example1
from repro.metrics.compare import format_table


def test_fig04_update_percentage_sweep(benchmark):
    table = run_once(benchmark, example1.figure4_updates)
    show("Figure 4: % updates vs precision width (Example 1)", format_table(table))

    # Headline: ~75% cut at delta = 3.
    row = table.row(3.0)
    assert row["dkf-linear"] < 0.40 * row["caching"]

    # Constant-KF travels with caching through the figure's core regime
    # (delta <= 10).  At very wide deltas the constant model's sub-unity
    # gain (paper's Q = R = 0.05) costs it extra updates; bound that too.
    for delta in table.values:
        r = table.row(delta)
        if delta <= 10.0:
            assert abs(r["dkf-constant"] - r["caching"]) < max(
                8.0, 0.35 * r["caching"]
            )
        else:
            assert abs(r["dkf-constant"] - r["caching"]) < 25.0

    # Updates fall monotonically (modulo small wiggles) with delta.
    for scheme in table.columns:
        series = table.column(scheme)
        assert series[0] > series[-1]

    # Convergence: the relative gap between linear KF and caching narrows
    # in absolute update terms at the widest precision.
    first_gap = table.row(table.values[0])["caching"] - table.row(
        table.values[0]
    )["dkf-linear"]
    last_gap = table.row(table.values[-1])["caching"] - table.row(
        table.values[-1]
    )["dkf-linear"]
    assert last_gap < first_gap
